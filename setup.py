"""Shim for legacy editable installs in environments without `wheel`."""

from setuptools import setup

setup()
