"""Capacity planning from recorded request traces (the paper's future work).

Scenario: an operator records production request timelines, then asks
(1) what internal stages do requests transparently decompose into, and
(2) how would the workload perform on a platform with faster memory?
Both analyses run offline on exported traces — no re-run of the server.

Run:  python examples/capacity_planning.py
"""

import os
import tempfile
from dataclasses import replace

import numpy as np

from repro import SamplingPolicy, run_workload
from repro.analysis.projection import project_population
from repro.core.stagedetect import identify_stages
from repro.hardware.platform import WOODCREST
from repro.kernel.trace_io import load_traces, save_traces


def main():
    # --- record production traffic ---------------------------------------
    live = run_workload(
        "tpch", num_requests=20, concurrency=8, seed=11,
        sampling=SamplingPolicy.interrupt(1000.0),
    )
    path = os.path.join(tempfile.gettempdir(), "tpch_traces.json")
    save_traces(live.traces, path)
    print(f"recorded {len(live.traces)} request timelines -> {path} "
          f"({os.path.getsize(path) / 1024:.0f} KiB)\n")

    # --- offline: transparent stage identification ------------------------
    traces = load_traces(path)
    trace = max(traces, key=lambda t: t.total_instructions)
    stages = identify_stages(trace, window_instructions=1_000_000, threshold=1.0)
    print(f"request {trace.spec.request_id} ({trace.spec.kind}, "
          f"{trace.total_instructions / 1e6:.0f} M instructions) decomposes "
          f"into {len(stages)} stages:")
    for k, stage in enumerate(stages):
        print(f"  stage {k}: windows {stage.start_window:3d}-{stage.end_window:3d}  "
              f"cpi {stage.mean_cpi:5.2f}  refs/ins {stage.mean_l2_refs_per_ins:.4f}  "
              f"miss ratio {stage.mean_l2_miss_ratio:.2f}")

    # --- offline: what-if projection onto new hardware --------------------
    faster_memory = replace(WOODCREST, l2_miss_penalty_cycles=120.0)
    faster_clock = replace(WOODCREST, frequency_ghz=4.5)
    observed = np.array([t.overall_cpi() for t in traces])
    times = np.array([t.cpu_time_us() for t in traces])

    print("\nwhat-if projection (population means):")
    print(f"  {'platform':34s} {'CPI':>7s} {'CPU ms/request':>15s}")
    print(f"  {'observed (Woodcrest, 220-cyc miss)':34s} "
          f"{observed.mean():7.2f} {times.mean() / 1000:15.2f}")
    for label, target in (
        ("faster memory (120-cyc miss)", faster_memory),
        ("faster clock (4.5 GHz)", faster_clock),
    ):
        cpis, cpu_times = project_population(traces, WOODCREST, target)
        print(f"  {label:34s} {cpis.mean():7.2f} {cpu_times.mean() / 1000:15.2f}")

    print("\n(a whole-request average could not make this projection: the "
          "variation pattern localizes exactly which execution regions are "
          "memory-bound and re-prices only those)")


if __name__ == "__main__":
    main()
