"""Distributed request tracking and component placement (paper Section 7).

Scenario: RUBiS's tiers (web front end, EJB container, database) can be
placed across a two-machine cluster.  Request-context tracking follows
each request across machines, exposing local and inter-machine behavior
variations; simulating candidate placements then tells the operator which
assignment performs best.

Run:  python examples/distributed_tiers.py
"""

from repro.analysis.placement import compare_placements, per_machine_variation
from repro.hardware.platform import cluster_machine
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload

PLACEMENTS = {
    "all-on-one-machine": {
        "tomcat": 0, "jboss": 0, "mysql": 0, "jboss_render": 0, "tomcat_out": 0,
    },
    "db-isolated": {
        "tomcat": 0, "jboss": 0, "mysql": 1, "jboss_render": 0, "tomcat_out": 0,
    },
    "logic-isolated": {
        "tomcat": 0, "jboss": 1, "mysql": 0, "jboss_render": 1, "tomcat_out": 0,
    },
}


def main():
    machine = cluster_machine(num_machines=2, cores_per_machine=4)

    # --- track requests across machines -----------------------------------
    config = SimConfig(
        machine=machine,
        sampling=SamplingPolicy.interrupt(100.0),
        num_requests=40,
        concurrency=12,
        seed=5,
        tier_placement=PLACEMENTS["db-isolated"],
        network_delay_us=80.0,
    )
    result = ServerSimulator(make_workload("rubis"), config).run()
    print(f"tracked {len(result.traces)} RUBiS requests across "
          f"{machine.num_machines} machines (db-isolated placement)\n")

    report = per_machine_variation(result.traces, machine)
    print("local behavior per machine:")
    for domain, stats in sorted(report.items()):
        print(f"  machine {domain}: instruction share "
              f"{stats['instruction_share']:.0%}, mean CPI "
              f"{stats['mean_cpi']:.2f}, inter-request CPI CoV "
              f"{stats['cpi_cov']:.3f}")

    # --- compare candidate placements --------------------------------------
    print("\ncomparing candidate tier placements (simulated):")
    rows = compare_placements(
        "rubis", PLACEMENTS, machine, num_requests=40, concurrency=12, seed=5,
        network_delay_us=80.0,
    )
    print(f"  {'placement':22s} {'mean CPI':>9s} {'mean lat us':>12s} "
          f"{'p95 lat us':>11s} {'req/s':>8s}")
    for row in rows:
        print(f"  {row['placement']:22s} {row['mean_cpi']:9.2f} "
              f"{row['mean_latency_us']:12.0f} {row['p95_latency_us']:11.0f} "
              f"{row['throughput_req_per_s']:8.0f}")
    print(f"\nbest by mean latency: {rows[0]['placement']}")


if __name__ == "__main__":
    main()
