"""Online request identification and resource-usage prediction (Section 4.4).

Scenario: a hosting platform wants to predict, shortly after a request
arrives, whether it will be expensive (above-median CPU) — without any
application instrumentation.  A bank of representative request signatures
(L2 references-per-instruction variation patterns, a metric that reflects
inherent behavior rather than dynamic contention) is matched against each
new request's partial execution.

Run:  python examples/online_prediction.py
"""

import numpy as np

from repro import RecentPastPredictor, SamplingPolicy, SignatureBank, run_workload
from repro.core.distances import unequal_length_penalty

WINDOW = 10_000  # instructions per signature element (web-server scale)
PREFIXES = (2, 5, 10)


def main():
    result = run_workload(
        "webserver",
        num_requests=240,
        concurrency=8,
        seed=17,
        sampling=SamplingPolicy.interrupt(10.0),
    )
    traces = result.traces
    half = len(traces) // 2
    bank_traces, test_traces = traces[:half], traces[half:]

    patterns = [t.series("l2_refs_per_ins", WINDOW).values for t in traces]
    cpu_times = np.array([t.cpu_time_us() for t in traces])
    threshold = float(np.median(cpu_times))
    print(f"bank: {half} signatures, test: {len(test_traces)} requests, "
          f"median CPU {threshold:.0f} us\n")

    rng = np.random.default_rng(17)
    penalty = unequal_length_penalty(np.concatenate(patterns[:half]), rng)
    bank = SignatureBank(penalty=penalty, method="variation")
    for i in range(half):
        bank.add(patterns[i], cpu_times[i])

    recent = RecentPastPredictor(window=10)
    header = "".join(f"  after {p:2d} windows" for p in PREFIXES)
    print(f"{'approach':32s}{header}")

    errors = {p: 0 for p in PREFIXES}
    baseline_errors = 0
    for i, trace in enumerate(test_traces, start=half):
        actual = cpu_times[i] > threshold
        for p in PREFIXES:
            predicted = bank.predict_cpu_above(patterns[i][:p], threshold)
            errors[p] += predicted != actual
        baseline = recent.predict_cpu_above(threshold)
        baseline_errors += (baseline if baseline is not None else False) != actual
        recent.observe_completion(cpu_times[i])

    n = len(test_traces)
    row = "".join(f"  {errors[p] / n:15.1%}" for p in PREFIXES)
    print(f"{'variation-pattern signatures':32s}{row}")
    flat = f"  {baseline_errors / n:15.1%}" * len(PREFIXES)
    print(f"{'recent-past average (baseline)':32s}{flat}")

    print("\nexample identification:")
    trace = test_traces[0]
    idx = half
    match = bank.identify(patterns[idx][:5])
    print(f"  incoming request: file {trace.spec.metadata['file_id']}, "
          f"actual CPU {cpu_times[idx]:.0f} us")
    print(f"  matched bank signature: CPU {match.cpu_time_us:.0f} us -> "
          f"predicted {'expensive' if match.cpu_time_us > threshold else 'cheap'}")


if __name__ == "__main__":
    main()
