"""Quickstart: simulate a server workload and inspect request behavior.

Runs the TPC-C workload on the simulated 4-core machine with 100-us
interrupt-driven counter sampling, then prints per-request hardware
metrics and the captured behavior variation — the paper's core
measurement (Sections 2-3).

Run:  python examples/quickstart.py
"""

from repro import SamplingPolicy, captured_variation, inter_request_variation, run_workload


def main():
    result = run_workload(
        "tpcc",
        num_requests=60,
        concurrency=8,
        seed=42,
        sampling=SamplingPolicy.interrupt(100.0),
    )

    print(f"completed {len(result.traces)} requests "
          f"in {result.wall_cycles / 3e9 * 1000:.1f} simulated ms of wall time")
    print(f"counter samples taken: {result.sampler_stats.total_samples}\n")

    print("first five requests:")
    print(f"{'kind':14s} {'instructions':>13s} {'CPU us':>9s} {'CPI':>6s} "
          f"{'L2 refs/ins':>12s} {'miss ratio':>11s}")
    for trace in result.traces[:5]:
        print(
            f"{trace.spec.kind:14s} {trace.total_instructions:13.0f} "
            f"{trace.cpu_time_us():9.1f} {trace.overall_cpi():6.2f} "
            f"{trace.overall('l2_refs_per_ins'):12.4f} "
            f"{trace.overall('l2_miss_ratio'):11.3f}"
        )

    print("\ncaptured behavior variation (coefficient of variation, Eq. 1):")
    for metric in ("cpi", "l2_refs_per_ins", "l2_miss_ratio"):
        inter = inter_request_variation(result.traces, metric)
        intra = captured_variation(result.traces, metric)
        print(f"  {metric:16s} inter-request {inter:.3f}   "
              f"with intra-request {intra:.3f}")

    # Intra-request view of one transaction (Figure 2 style).
    trace = next(t for t in result.traces if t.spec.kind == "new_order")
    series = trace.series("cpi", 50_000)
    print(f"\nCPI over one new-order transaction "
          f"({trace.total_instructions / 1e6:.1f} M instructions, "
          f"{len(series)} windows of 50k):")
    values = series.values
    lo, hi = values.min(), values.max()
    for k, v in enumerate(values):
        bar = "#" * int(1 + 30 * (v - lo) / max(hi - lo, 1e-9))
        print(f"  window {k:2d}  cpi {v:5.2f}  {bar}")


if __name__ == "__main__":
    main()
