"""Contention-easing CPU scheduling on a multicore (Section 5).

Scenario: a decision-support database (TPC-H) co-runs many queries on a
4-core machine with shared L2 caches.  Requests in high-resource-usage
periods should avoid co-execution.  This example:

1. profiles the workload to find the 80-percentile L2 misses-per-
   instruction threshold,
2. runs the baseline round-robin scheduler and the contention-easing
   scheduler (vaEWMA alpha=0.6 online prediction, 5 ms rescheduling),
3. compares high-usage co-execution time and request CPI statistics.

Run:  python examples/adaptive_scheduling.py
"""

import numpy as np

from repro import ContentionEasingScheduler, RoundRobinScheduler, SamplingPolicy, run_workload
from repro.analysis.stats import weighted_percentile


def run(scheduler, threshold, seed=3):
    return run_workload(
        "tpch",
        num_requests=60,
        concurrency=8,
        seed=seed,
        sampling=SamplingPolicy.interrupt(1000.0),
        scheduler=scheduler,
        high_usage_mpi_threshold=threshold,
    )


def main():
    # 1. Profile: where is the 80-percentile of L2 misses per instruction?
    profile = run_workload(
        "tpch", num_requests=30, concurrency=8, seed=1,
        sampling=SamplingPolicy.interrupt(1000.0),
    )
    values = np.concatenate(
        [t.period_values("l2_miss_per_ins")[0] for t in profile.traces]
    )
    weights = np.concatenate(
        [t.period_values("l2_miss_per_ins")[1] for t in profile.traces]
    )
    threshold = weighted_percentile(values, 80, weights)
    print(f"high-usage threshold (80-pct L2 miss/ins): {threshold:.5f}\n")

    # 2. Baseline vs contention easing.
    baseline = run(RoundRobinScheduler(), threshold)
    eased_policy = ContentionEasingScheduler(high_usage_threshold=threshold)
    eased = run(eased_policy, threshold)

    # 3. Compare.
    print(f"{'':28s} {'baseline':>10s} {'easing':>10s}")
    for level, label in ((">=2", ">= 2 cores high"), (">=3", ">= 3 cores high"),
                         ("all", "all 4 cores high")):
        b = baseline.high_usage_fractions()[level]
        e = eased.high_usage_fractions()[level]
        print(f"{label:28s} {b:10.3%} {e:10.3%}")

    b_cpi = baseline.request_cpis()
    e_cpi = eased.request_cpis()
    print(f"\n{'request CPI':28s} {'baseline':>10s} {'easing':>10s}")
    for stat, fn in (("average", np.mean), ("95-percentile", lambda x: np.percentile(x, 95)),
                     ("worst", np.max)):
        print(f"{stat:28s} {fn(b_cpi):10.3f} {fn(e_cpi):10.3f}")

    print(f"\nscheduler activity: {eased_policy.stats}")
    print("\n(the paper reports the same mixed outcome: co-execution of "
          "high-usage periods drops noticeably, the average request is "
          "unchanged, and only the worst case benefits)")


if __name__ == "__main__":
    main()
