"""Classify requests by their behavior variation patterns (Section 4.2),
then hunt for anomalies (Section 4.3).

Scenario: an operator of a TPC-C database wants to understand the resource
consumption mix without instrumenting the application.  The OS-level
tracker captures per-request CPI variation patterns; k-medoids over
DTW-with-asynchrony-penalty distances recovers the transaction types, and
the members farthest from their cluster centroid are suspected anomalies.

Run:  python examples/request_classification.py
"""

import numpy as np

from repro import SamplingPolicy, dtw_distance, k_medoids, run_workload
from repro.core.clustering import distance_matrix
from repro.core.distances import unequal_length_penalty

WINDOW_INSTRUCTIONS = 50_000


def main():
    result = run_workload(
        "tpcc",
        num_requests=80,
        concurrency=8,
        seed=7,
        sampling=SamplingPolicy.interrupt(100.0),
    )
    traces = result.traces
    patterns = [t.series("cpi", WINDOW_INSTRUCTIONS).values for t in traces]

    rng = np.random.default_rng(7)
    penalty = unequal_length_penalty(np.concatenate(patterns), rng)
    print(f"unequal-length / asynchrony penalty p = {penalty:.2f} "
          "(99-pct of arbitrary-point CPI differences)\n")

    matrix = distance_matrix(
        patterns, lambda a, b: dtw_distance(a, b, asynchrony_penalty=penalty)
    )
    clusters = k_medoids(matrix, k=5, rng=rng)

    print("clusters (k-medoids over DTW+penalty distances):")
    for cluster in range(5):
        members = clusters.members(cluster)
        if members.size == 0:
            continue
        kinds = {}
        for m in members:
            kinds[traces[m].spec.kind] = kinds.get(traces[m].spec.kind, 0) + 1
        dominant = max(kinds, key=kinds.get)
        purity = kinds[dominant] / members.size
        cpu = np.mean([traces[m].cpu_time_us() for m in members])
        print(f"  cluster {cluster}: {members.size:3d} requests, "
              f"dominant type {dominant:13s} (purity {purity:.0%}), "
              f"mean CPU {cpu:8.1f} us")

    # Anomalies: members far from their centroid.
    print("\nsuspected anomalies (largest distance to cluster centroid):")
    scored = []
    for i in range(len(traces)):
        centroid = clusters.medoids[clusters.labels[i]]
        if i != centroid:
            scored.append((matrix[i, centroid], i, centroid))
    scored.sort(reverse=True)
    for score, i, centroid in scored[:3]:
        t, c = traces[i], traces[centroid]
        print(f"  request {i:3d} ({t.spec.kind:13s}) distance {score:8.1f}: "
              f"CPI {t.overall_cpi():.2f} vs centroid {c.overall_cpi():.2f}, "
              f"CPU {t.cpu_time_us():.0f} us vs {c.cpu_time_us():.0f} us")


if __name__ == "__main__":
    main()
