"""A live sharded analysis fleet with kill/failover (docs/serve.md).

Scenario: three simulated application instances (TPC-C with injected
lock-stall faults) stream their observation events to a two-worker
analysis pool, sharded by consistent hashing on request id.  Mid-run,
one worker is SIGKILLed after its first durable checkpoint; the
supervisor restarts it, the instance clients replay their retained
tails, and the run completes.  The punchline is the determinism
contract: the killed run's fleet report is byte-identical to an
uninterrupted run at the same seeds.

Run:  python examples/serve_fleet.py
"""

import asyncio
import tempfile

from repro.serve.service import (
    KillSpec,
    LoadTestOptions,
    run_load_test,
    shard_name,
)

OPTIONS = dict(
    workload="tpcc",
    instances=3,
    workers=2,
    requests=8,
    seed=42,
    faults="lock_stall:0.25",
    train=6,              # calibrate a shared signature bank first
    checkpoint_every=32,  # small interval so the kill lands mid-stream
)


def run(**overrides):
    options = LoadTestOptions(**{**OPTIONS, **overrides})
    with tempfile.TemporaryDirectory(prefix="serve-fleet-") as run_dir:
        return asyncio.run(run_load_test(options, run_dir))


def main():
    print("launching 3 TPC-C instances against a 2-worker analysis pool\n")
    clean = run()
    print(clean.fleet.render())

    stats = clean.stats
    print(
        f"\nservice: {stats['events_sent']} events in "
        f"{stats['frames_sent']} frames, sustained "
        f"{stats['events_per_second']:.0f} events/s"
    )

    print("\nnow the same run, but SIGKILL worker w0 after its first "
          "checkpoint...")
    killed = run(kill=KillSpec(shard=shard_name(0)))
    restarts = sum(killed.stats["worker_restarts"].values())
    print(
        f"failover: {restarts} worker restart(s), "
        f"{killed.stats['reconnects']} client reconnect(s), "
        f"tail replay from the last durable checkpoint"
    )

    identical = killed.fleet.to_json() == clean.fleet.to_json()
    print(
        "fleet report vs uninterrupted run: "
        + ("byte-identical" if identical else "DIVERGED (bug!)")
    )
    assert identical, "failover changed decisions"


if __name__ == "__main__":
    main()
