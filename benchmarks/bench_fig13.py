"""Figure 13 benchmark: request CPI under contention-easing scheduling.

Paper shape: contention easing does little for the *average* request CPI
(a mixed result the paper discusses at length); the benefit concentrates
in the worst case.  Our simulated contention model saturates where real
bus contention explodes, so the worst-case improvement is smaller than the
paper's ~10% (see the experiment's deviation note) — the benchmark asserts
the average-unchanged property and bounds the worst-case regression.
"""


def test_fig13_cpi_under_scheduling(run_experiment):
    result = run_experiment("fig13", scale=0.6)
    by_key = {(r["app"], r["statistic"]): r for r in result.rows}

    for app in ("tpch", "webwork"):
        avg = by_key[(app, "average")]
        # Average essentially unchanged (the paper's central observation).
        assert abs(avg["change_pct"]) < 3.0, (app, avg)
        # Worst-case: no material regression from the adaptive policy.
        worst = by_key[(app, "p99.9")]
        assert worst["change_pct"] < 4.0, (app, worst)
    print()
    print(result.render())
