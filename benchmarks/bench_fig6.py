"""Figure 6 benchmark: similar TPCC requests drifting apart.

Paper shape: for two inherently similar requests whose executions drift
apart after ~0.8 M instructions, L1 over-estimates the difference while
dynamic time warping absorbs the shift; a genuinely different request
stays clearly separated under DTW with the asynchrony penalty.
"""


def test_fig6_drift_pair(run_experiment):
    result = run_experiment("fig6", scale=1.0)
    rows = {r["pair"]: r for r in result.rows}
    drift = rows["base vs drifted"]
    control = rows["base vs control(payment)"]

    assert drift["dtw"] < 0.6 * drift["l1"]
    assert drift["dtw+penalty"] <= drift["l1"]
    assert control["dtw+penalty"] > 4 * drift["dtw+penalty"]
    print()
    print(result.render())
