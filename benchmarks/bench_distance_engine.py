"""Benchmark: the parallel + cached pairwise-distance engine.

A fig7-style workload — DTW with asynchrony penalty over 150 request CPI
variation sequences (11,175 pairs) — computed three ways:

* serial double loop (the pre-engine baseline),
* `DistanceEngine(jobs=4)` fanning pair chunks to worker processes,
* a 100%-hit rerun against the engine's on-disk cache.

All three matrices must be bit-identical.  The >= 2x speedup assertion is
hardware-gated: it needs at least 4 usable CPUs, so on smaller machines it
reports the measured ratio and skips.  Run directly for a readable report:

    PYTHONPATH=src python benchmarks/bench_distance_engine.py
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.distengine import DistanceCache, DistanceEngine
from repro.core.dtw import dtw_distance

N_REQUESTS = 150
PENALTY = 0.4
JOBS = 4


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def fig7_style_series(n: int = N_REQUESTS, seed: int = 7):
    """Synthetic CPI variation patterns: length-varying noisy random walks
    around a few per-kind baselines, like fig7's per-request series."""
    rng = np.random.default_rng(seed)
    baselines = (1.6, 2.4, 3.1)
    series = []
    for i in range(n):
        length = int(rng.integers(40, 90))
        base = baselines[i % len(baselines)]
        walk = np.cumsum(rng.normal(0.0, 0.08, size=length))
        series.append(base + walk + rng.normal(0.0, 0.15, size=length))
    return series


def serial_matrix(items, fn):
    n = len(items)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = float(fn(items[i], items[j]))
            matrix[i, j] = matrix[j, i] = d
    return matrix


def distance(a, b):
    return dtw_distance(a, b, asynchrony_penalty=PENALTY)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_benchmark(cache_path: str):
    items = fig7_style_series()
    key = f"dtw:p={PENALTY!r}"

    reference, t_serial = timed(lambda: serial_matrix(items, distance))

    parallel_engine = DistanceEngine(jobs=JOBS)
    par, t_parallel = timed(lambda: parallel_engine.matrix(items, distance))

    warm_engine = DistanceEngine(jobs=JOBS, cache=DistanceCache(path=cache_path))
    warm, t_warm = timed(
        lambda: warm_engine.matrix(items, distance, distance_key=key)
    )
    # Fresh engine + fresh cache object: every hit comes from disk state.
    cold_engine = DistanceEngine(jobs=JOBS, cache=DistanceCache(path=cache_path))
    hit, t_cached = timed(
        lambda: cold_engine.matrix(items, distance, distance_key=key)
    )

    return {
        "reference": reference,
        "parallel": par,
        "cache_fill": warm,
        "cache_hit": hit,
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "t_cache_fill": t_warm,
        "t_cached": t_cached,
        "cache_hits": cold_engine.cache.hits,
        "cache_misses": cold_engine.cache.misses,
        "n_pairs": N_REQUESTS * (N_REQUESTS - 1) // 2,
    }


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("distcache") / "distances.json"
    return run_benchmark(str(path))


class TestDistanceEngineBench:
    def test_parallel_bit_identical(self, report):
        assert np.array_equal(report["parallel"], report["reference"])

    def test_cached_bit_identical(self, report):
        assert np.array_equal(report["cache_fill"], report["reference"])
        assert np.array_equal(report["cache_hit"], report["reference"])

    def test_cache_rerun_is_all_hits(self, report):
        assert report["cache_misses"] == 0
        assert report["cache_hits"] == report["n_pairs"]

    def test_cache_rerun_near_constant_time(self, report):
        # A 100%-hit rerun does no distance arithmetic; it should beat the
        # serial computation by a wide margin even on one core.
        assert report["t_cached"] < report["t_serial"] / 2

    def test_parallel_speedup(self, report):
        speedup = report["t_serial"] / report["t_parallel"]
        if usable_cpus() < JOBS:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured speedup "
                f"{speedup:.2f}x (needs >= {JOBS} CPUs for the 2x claim)"
            )
        assert speedup >= 2.0


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        r = run_benchmark(os.path.join(tmp, "distances.json"))
    identical = np.array_equal(r["parallel"], r["reference"]) and np.array_equal(
        r["cache_hit"], r["reference"]
    )
    print(
        f"fig7-style DTW matrix: {N_REQUESTS} requests, {r['n_pairs']} pairs "
        f"({usable_cpus()} usable CPU(s))"
    )
    print(f"  serial loop          {r['t_serial']:8.2f} s")
    print(
        f"  engine jobs={JOBS}        {r['t_parallel']:8.2f} s "
        f"({r['t_serial'] / r['t_parallel']:.2f}x vs serial)"
    )
    print(f"  cache fill           {r['t_cache_fill']:8.2f} s")
    print(
        f"  cache-hit rerun      {r['t_cached']:8.2f} s "
        f"({r['cache_hits']}/{r['n_pairs']} hits, "
        f"{r['t_serial'] / r['t_cached']:.0f}x vs serial)"
    )
    print(f"  matrices bit-identical: {identical}")


if __name__ == "__main__":
    main()
