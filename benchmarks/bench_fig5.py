"""Figure 5 benchmark: syscall-triggered vs interrupt sampling overhead.

Paper shape: at matched sampling frequency the syscall-triggered approach
saves 18-38% of sampling overhead (our syscall-saturated applications
reach the 44% in-kernel/interrupt cost-ratio ceiling; see the experiment's
deviation note).  Base interrupt-sampling costs range from ~0.02% to ~5.8%
of CPU consumption across the applications' sampling frequencies.
"""


def test_fig5_sampling_overhead(run_experiment):
    result = run_experiment("fig5", scale=0.4)
    rows = {r["app"]: r for r in result.rows}

    for app, row in rows.items():
        assert 0.50 <= row["normalized_overhead"] < 1.0, (app, row)
        # Sample counts were matched within tolerance for fairness.
        assert row["syscall_samples"] > 0.5 * row["interrupt_samples"]

    # The web server (finest sampling, 10us) has the highest base cost.
    base_costs = {app: rows[app]["base_cost_pct"] for app in rows}
    assert max(base_costs, key=base_costs.get) == "webserver"
    assert base_costs["webserver"] > 3.0
    assert base_costs["tpch"] < 0.5

    # Apps with long syscall-free stretches need backup interrupts.
    assert rows["tpcc"]["backup_interrupts"] > 0
    assert rows["webwork"]["backup_interrupts"] > 0
    print()
    print(result.render())
