"""Ablation: sweep the DTW asynchrony penalty (Section 4.1/4.2 design choice).

The paper sets the asynchrony penalty equal to the L1 unequal-length
penalty ``p`` (the 99-percentile arbitrary-point metric difference).  This
ablation sweeps multiples of ``p`` on the TPCC classification task:
zero penalty (plain DTW) should degrade classification sharply, while
quality should be fairly flat in a broad band around 1.0x — showing the
paper's choice is reasonable rather than finely tuned.
"""

import numpy as np

from repro.core.clustering import distance_matrix, divergence_from_centroid, k_medoids
from repro.core.distances import unequal_length_penalty
from repro.core.dtw import dtw_distance
from repro.experiments.common import simulate

MULTIPLIERS = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)


def sweep():
    sim = simulate("tpcc", num_requests=70, seed=202)
    traces = sim.traces
    patterns = [t.series("cpi", 50_000).values for t in traces]
    cpu_times = np.array([t.cpu_time_us() for t in traces])
    rng = np.random.default_rng(202)
    base_penalty = unequal_length_penalty(np.concatenate(patterns), rng)

    quality = {}
    for multiplier in MULTIPLIERS:
        matrix = distance_matrix(
            patterns,
            lambda a, b: dtw_distance(
                a, b, asynchrony_penalty=multiplier * base_penalty
            ),
        )
        clusters = k_medoids(matrix, k=8, rng=np.random.default_rng(1))
        quality[multiplier] = divergence_from_centroid(cpu_times, clusters)
    return quality


def test_ablation_dtw_penalty(benchmark):
    quality = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Plain DTW (multiplier 0) is much worse than the paper's choice.
    assert quality[0.0] > 2.0 * quality[1.0]
    # Quality is not knife-edge sensitive around the paper's setting.
    assert quality[0.5] < 1.8 * quality[1.0] + 0.02
    assert quality[2.0] < 1.8 * quality[1.0] + 0.02

    print()
    print("divergence from centroid (CPU time) vs asynchrony penalty:")
    for multiplier, value in quality.items():
        print(f"  {multiplier:4.2f} x p : {100 * value:6.2f}%")
