"""Figure 2 benchmark: intra-request behavior variation examples.

Paper shape: one representative request per application shows significant
CPI / L2-refs / miss-ratio variation over its course; request lengths span
~0.1 M (web) to several hundred million (WeBWorK) instructions.
"""


def test_fig2_intra_request_variation(run_experiment):
    result = run_experiment("fig2", scale=0.6)
    by_app = {}
    for row in result.rows:
        by_app.setdefault(row["app"], {})[row["metric"]] = row

    # Length ordering spans orders of magnitude.
    assert by_app["webserver"]["cpi"]["length_Mins"] < 1.0
    assert by_app["webwork"]["cpi"]["length_Mins"] > 150.0
    assert by_app["tpch"]["cpi"]["length_Mins"] > 20.0

    # Metrics genuinely vary within single requests.
    for app, metrics in by_app.items():
        assert metrics["cpi"]["max/mean"] > 1.15, app
    print()
    print(result.render())
