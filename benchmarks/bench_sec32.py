"""Section 3.2 benchmark: transition-signal sampling captures more variation.

Paper numbers: at matched sampling frequency, restricting triggers to the
behavior-transition syscalls raises the captured CPI coefficient of
variation from 0.60 to 0.65 (~+8%).
"""


def test_sec32_transition_signal_gain(run_experiment):
    result = run_experiment("sec32", scale=0.5)
    rows = {r["approach"].split(" ")[0]: r for r in result.rows}
    plain = rows["syscall-triggered"]
    enhanced = rows["transition-signal"]

    # Matched sampling frequency within tolerance.
    assert abs(enhanced["samples"] - plain["samples"]) < 0.3 * plain["samples"]

    # The enhanced approach captures more variation.
    assert enhanced["cpi_cov"] > plain["cpi_cov"] * 1.02
    print()
    print(result.render())
