"""Table 2 benchmark: syscall-name -> CPI-change mappings (Apache).

Paper shape: writev signals the largest CPI increase (+3.66 +- 2.27, HTTP
header writing); stat and lseek signal decreases; directions for most
names reproduce.
"""


def test_table2_transition_signals(run_experiment):
    result = run_experiment("table2", scale=0.6)
    rows = {r["syscall"]: r for r in result.rows}

    assert result.rows[0]["syscall"] == "writev"
    assert rows["writev"]["direction"] == "increase"
    assert rows["writev"]["mean_change"] > 1.5

    assert rows["stat"]["direction"] == "decrease"
    assert rows["lseek"]["direction"] == "decrease"
    assert rows["poll"]["direction"] == "increase"

    agree = [r for r in result.rows if r["agrees"] == "yes"]
    judged = [r for r in result.rows if r["agrees"]]
    assert len(agree) >= 0.7 * len(judged)
    print()
    print(result.render())
