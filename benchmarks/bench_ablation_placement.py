"""Ablation: distributed tier placement (the paper's Section 7 future work).

Request tracking across a two-machine cluster exposes local and
inter-machine variations; comparing candidate RUBiS tier placements by
simulation shows that isolating the contention-heavy database tier
relieves shared-cache/bus pressure for the rest of the service.
"""

from repro.analysis.placement import compare_placements, per_machine_variation
from repro.hardware.platform import cluster_machine
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload

TIERS = ("tomcat", "jboss", "mysql", "jboss_render", "tomcat_out")

PLACEMENTS = {
    "all-on-one": {t: 0 for t in TIERS},
    "db-isolated": {**{t: 0 for t in TIERS}, "mysql": 1},
    "logic-isolated": {**{t: 0 for t in TIERS}, "jboss": 1, "jboss_render": 1},
}


def sweep():
    machine = cluster_machine(2, 4)
    rows = compare_placements(
        "rubis", PLACEMENTS, machine, num_requests=40, concurrency=12,
        seed=209, network_delay_us=80.0,
    )
    config = SimConfig(
        machine=machine,
        sampling=SamplingPolicy.interrupt(100.0),
        num_requests=40,
        concurrency=12,
        seed=209,
        tier_placement=PLACEMENTS["db-isolated"],
        network_delay_us=80.0,
    )
    tracked = ServerSimulator(make_workload("rubis"), config).run()
    variation = per_machine_variation(tracked.traces, machine)
    return rows, variation


def test_ablation_tier_placement(benchmark):
    rows, variation = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_label = {r["placement"]: r for r in rows}

    # Spreading tiers relieves contention: both split placements beat
    # consolidation on mean CPI.
    assert by_label["db-isolated"]["mean_cpi"] < by_label["all-on-one"]["mean_cpi"]
    assert (
        by_label["logic-isolated"]["mean_cpi"] < by_label["all-on-one"]["mean_cpi"]
    )

    # Cross-machine tracking exposes per-machine behavior: both machines
    # saw every request, with sensible shares.
    assert set(variation) == {0, 1}
    assert abs(sum(v["instruction_share"] for v in variation.values()) - 1.0) < 1e-6

    print()
    print(f"{'placement':16s} {'mean CPI':>9s} {'mean lat us':>12s}")
    for row in rows:
        print(f"{row['placement']:16s} {row['mean_cpi']:9.2f} "
              f"{row['mean_latency_us']:12.0f}")
