"""Ablation: online-learned vs profiled high-usage threshold.

The paper derives the contention scheduler's 80-percentile threshold from
workload profiling.  The extension learns it online with a P-square
quantile estimator.  This ablation verifies the online threshold converges
to the profiled one and eases contention comparably — removing the
profiling run from the deployment story.
"""

import numpy as np
import pytest

from repro.analysis.stats import weighted_percentile
from repro.experiments.common import simulate
from repro.kernel.contention import ContentionEasingScheduler


def sweep():
    profile = simulate("tpch", num_requests=40, seed=207)
    values = np.concatenate(
        [t.period_values("l2_miss_per_ins")[0] for t in profile.traces]
    )
    weights = np.concatenate(
        [t.period_values("l2_miss_per_ins")[1] for t in profile.traces]
    )
    profiled = weighted_percentile(values, 80, weights)

    runs = {}
    for label, scheduler in (
        (
            "profiled",
            ContentionEasingScheduler(high_usage_threshold=profiled),
        ),
        (
            "adaptive",
            ContentionEasingScheduler(
                high_usage_threshold=profiled * 3,  # deliberately bad warm-up
                adaptive_threshold=True,
                adaptive_warmup=150,
            ),
        ),
    ):
        runs[label] = simulate(
            "tpch",
            num_requests=60,
            seed=208,
            scheduler=scheduler,
            high_usage_mpi_threshold=profiled,
        )
    return profiled, runs


def test_ablation_adaptive_threshold(benchmark):
    profiled, runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    adaptive_sched = runs["adaptive"].scheduler
    learned = adaptive_sched.current_threshold()
    # The online estimate converged toward the profiled percentile and
    # away from the bad warm-up value.
    assert abs(learned - profiled) < abs(profiled * 3 - profiled)
    assert learned == pytest.approx(profiled, rel=0.6)

    # Contention easing works about as well either way.
    frac_profiled = runs["profiled"].high_usage_fractions()[">=3"]
    frac_adaptive = runs["adaptive"].high_usage_fractions()[">=3"]
    assert frac_adaptive <= frac_profiled * 1.5 + 0.01

    print()
    print(f"profiled 80-pct threshold: {profiled:.5f}")
    print(f"online-learned threshold:  {learned:.5f}")
    print(f">=3-cores-high time: profiled {frac_profiled:.3%}, "
          f"adaptive {frac_adaptive:.3%}")
