"""Figure 11 benchmark: online L2-miss-per-instruction prediction accuracy.

Paper shape: the variable-aging EWMA filter with an appropriate gain
achieves lower RMS error than both the request-average and last-value
predictors on TPCH and WeBWorK; mid-range gains do best (the paper adopts
alpha = 0.6 for its scheduling case study).
"""


def test_fig11_prediction_accuracy(run_experiment):
    result = run_experiment("fig11", scale=0.8)
    by_app = {}
    for row in result.rows:
        by_app.setdefault(row["app"], {})[row["predictor"]] = row["rmse"]

    for app, errors in by_app.items():
        va_errors = {k: v for k, v in errors.items() if k.startswith("vaEWMA")}
        best = min(va_errors.values())
        assert best < errors["request_average"], app
        assert best <= errors["last_value"] * 1.02, app
        # Extreme gains should not be the unique sweet spot family-wide:
        # the best alpha lies strictly inside the sweep.
        best_name = min(va_errors, key=va_errors.get)
        alpha = float(best_name.split("=")[1])
        assert 0.1 <= alpha <= 0.9
    print()
    print(result.render())
