"""Shared machinery for the per-figure benchmark harness."""

from __future__ import annotations

import os

import pytest


def pytest_configure(config):
    os.makedirs(results_dir(), exist_ok=True)


def results_dir() -> str:
    return os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture
def run_experiment(benchmark):
    """Run one experiment under pytest-benchmark (a single timed round —
    these are multi-second simulations, not microbenchmarks), persist the
    rendered output under results/, and return the ExperimentResult."""

    def _run(exp_id: str, scale: float):
        from repro.experiments.base import get_experiment

        module = get_experiment(exp_id)
        result = benchmark.pedantic(
            module.run, kwargs={"scale": scale}, rounds=1, iterations=1
        )
        path = os.path.join(results_dir(), f"{exp_id}.txt")
        with open(path, "w") as fh:
            fh.write(result.render() + "\n")
        return result

    return _run
