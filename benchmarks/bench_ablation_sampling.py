"""Ablation: sampling frequency vs captured variation and overhead.

Section 3.1 picks per-application sampling frequencies (10 us for the web
server).  This ablation sweeps the interrupt period on the web server:
finer sampling captures more intra-request variation (CoV rises toward an
asymptote) but costs proportionally more, motivating both the paper's
frequency choices and the cheaper syscall-triggered technique.
"""

from repro.core.variation import captured_variation
from repro.experiments.common import simulate
from repro.kernel.sampling import SamplingPolicy

PERIODS_US = (5.0, 10.0, 20.0, 50.0, 100.0, 200.0)


def sweep():
    out = {}
    for period in PERIODS_US:
        run = simulate(
            "webserver",
            num_requests=150,
            seed=203,
            sampling=SamplingPolicy.interrupt(period),
        )
        cov = captured_variation(run.traces, "cpi")
        overhead = run.sampler_stats.overhead_cycles(run.config.cost_model)
        busy = float(run.busy_cycles_per_core.sum())
        out[period] = (cov, overhead / busy)
    return out


def test_ablation_sampling_frequency(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    covs = {p: cov for p, (cov, _) in results.items()}
    costs = {p: cost for p, (_, cost) in results.items()}

    # Finer sampling captures at least as much variation...
    assert covs[10.0] > covs[100.0]
    assert covs[5.0] > covs[200.0]
    # ...at proportionally higher cost (costs scale ~1/period).
    assert costs[5.0] > 5 * costs[100.0]
    # Diminishing returns: halving 10us -> 5us gains less than 100 -> 50.
    gain_fine = covs[5.0] - covs[10.0]
    gain_coarse = covs[50.0] - covs[100.0]
    assert gain_fine < gain_coarse + 0.05

    print()
    print("period_us   captured CPI CoV   overhead (% of CPU)")
    for period in PERIODS_US:
        cov, cost = results[period]
        print(f"  {period:6.0f}       {cov:8.3f}        {100 * cost:8.3f}%")
