"""Figure 1 benchmark: per-request CPI distributions, 1-core vs 4-core.

Paper shape: serial distributions tightly clustered; 4-core concurrency
spreads them and degrades the 90-percentile CPI application-dependently —
TPCH roughly doubles, WeBWorK is unaffected.
"""


def test_fig1_cpi_distributions(run_experiment):
    result = run_experiment("fig1", scale=0.6)
    rows = {r["app"]: r for r in result.rows}
    assert rows["tpch"]["p90_ratio"] > 1.6
    assert rows["webwork"]["p90_ratio"] < 1.1
    assert rows["tpcc"]["p90_ratio"] > 1.15
    # Serial executions are tightly clustered relative to their mean.
    for app in rows:
        assert rows[app]["std_1core"] / rows[app]["mean_1core"] < 0.25
    print()
    print(result.render())
