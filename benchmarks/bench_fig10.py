"""Figure 10 benchmark: online signature identification accuracy.

Paper shape: variation-pattern signatures beat average-metric-value
signatures (error reduced by ~10 points or more) for web, TPCC, TPCH, and
RUBiS; for WeBWorK both signature forms stay near coin-flip because every
request follows identical semantics for its first ~10M instructions.
"""

import numpy as np


def test_fig10_online_identification(run_experiment):
    result = run_experiment("fig10", scale=0.6)
    curves = {}
    for row in result.rows:
        prefix_cols = [k for k in row if k.startswith("p")]
        curves[(row["app"], row["approach"])] = np.array(
            [row[k] for k in sorted(prefix_cols, key=lambda c: int(c[1:]))]
        )

    # Variation signatures beat average-value signatures on most apps.
    gains = {
        app: curves[(app, "average")].mean() - curves[(app, "variation")].mean()
        for app in ("webserver", "tpcc", "tpch", "rubis")
    }
    assert sum(g > 0 for g in gains.values()) >= 3, gains
    assert np.mean(list(gains.values())) > 4.0, gains

    # WeBWorK: both signature forms poor (identical prelude).
    webwork_var = curves[("webwork", "variation")]
    assert webwork_var.mean() > 35.0

    # Identification improves with observed progress for the variation
    # signatures on at least the web server and TPCC.
    for app in ("webserver", "tpcc"):
        curve = curves[(app, "variation")]
        assert curve[-3:].mean() < curve[:3].mean() + 1e-9, app
    print()
    print(result.render())
