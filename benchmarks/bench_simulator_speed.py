"""Engine microbenchmarks: the simulator fast path and the core DPs.

Two families, both *comparative* — every assertion is a measured ratio
between two implementations run on the same machine in the same
process, never an absolute wall-clock bound (absolute bounds made this
bench flaky on slow or throttled CI runners):

* **simulator fast path** — the calendar/SoA engine
  (:class:`~repro.kernel.fastpath.FastpathSimulator`) against the
  reference event loop on identical configurations.  The
  loop-dominated microbenchmark workloads must show the headline
  >= 3x speedup.  With the generation fast path
  (:mod:`repro.workloads.genfast`) stacked on top, the *end-to-end*
  server-workload runs (generation + simulation) must show >= 2.5x
  against the all-reference configuration — generation used to bound
  the server ratios (Amdahl), so the gate proves the bound is gone.
  Output byte-identity is asserted in-bench, including open-loop
  latency records: the fast paths are only a win if they are also
  *exact*.
* **dynamic programs** — the row-vectorized DTW and Levenshtein
  kernels against straightforward pure-Python cell-loop baselines
  computing the same recurrences.

Speedup assertions are hardware-gated (>= 2 usable CPUs); on smaller
machines the measured ratio is reported and the assertion skips.  Run
directly for a readable report:

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.distances import levenshtein_distance
from repro.core.dtw import dtw_distance
from repro.kernel.fastpath import FastpathSimulator, ReferenceSimulator
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import SimConfig
from repro.obs.trace import TraceCollector, events_to_jsonl
from repro.traffic import PoissonArrivals, TrafficConfig
from repro.workloads.genfast import FAST_FACTORIES
from repro.workloads.registry import make_workload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.webserver import WebServerWorkload

#: Headline requirement on the loop-dominated microbenchmark workloads.
MIN_FASTPATH_SPEEDUP = 3.0
#: End-to-end requirement (generation + simulation, both fast paths on)
#: on the server workloads, against the all-reference configuration.
MIN_SERVER_SPEEDUP = 2.5
#: Vectorized DPs vs. their pure-Python cell loops (conservative: the
#: measured gap is an order of magnitude).
MIN_DP_SPEEDUP = 2.0
ROUNDS = 3

#: (workload, num_requests, asserted).  The mbench pair spends its time
#: in the event loop proper — that is what the engine fast path
#: accelerates — while the server workloads also pay per-request
#: generation costs, covered separately by the end-to-end gate below
#: (SERVER_CASES), which stacks the generation fast path on top.
SIM_CASES = (
    ("mbench_spin", 60, True),
    ("mbench_data", 15, True),
    ("tpcc", 40, False),
    ("webserver", 40, False),
)

#: (workload, num_requests) for the end-to-end gate: FastpathSimulator +
#: genfast workload vs ReferenceSimulator + reference workload.
SERVER_CASES = (
    ("webserver", 40),
    ("tpcc", 40),
)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def best_of(fn, rounds=ROUNDS):
    """Best wall time over ``rounds`` runs (robust against CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


# ----------------------------------------------------- simulator fast path


def _sim_config(num_requests, collector=None):
    return SimConfig(
        sampling=SamplingPolicy.interrupt(10.0),
        num_requests=num_requests,
        concurrency=8,
        seed=1,
        collector=collector,
    )


def _run_sim(sim_cls, workload, num_requests, collector=None):
    config = _sim_config(num_requests, collector=collector)
    return sim_cls(make_workload(workload), config).run()


def _identity_fingerprint(workload, num_requests, sim_cls):
    collector = TraceCollector(capacity=500_000)
    result = _run_sim(sim_cls, workload, num_requests, collector=collector)
    traces = tuple(
        trace.cycles.tobytes()
        + trace.instructions.tobytes()
        + trace.start.tobytes()
        + trace.core.tobytes()
        for trace in result.traces
    )
    return (
        events_to_jsonl(collector.events, dropped=collector.dropped),
        result.wall_cycles,
        result.sampler_stats.as_dict(),
        traces,
    )


def run_simulator_benchmark():
    rows = []
    for workload, num_requests, asserted in SIM_CASES:
        ref_result, t_ref = best_of(
            lambda w=workload, n=num_requests: _run_sim(ReferenceSimulator, w, n)
        )
        fast_result, t_fast = best_of(
            lambda w=workload, n=num_requests: _run_sim(FastpathSimulator, w, n)
        )
        rows.append(
            {
                "workload": workload,
                "num_requests": num_requests,
                "asserted": asserted,
                "t_ref": t_ref,
                "t_fast": t_fast,
                "speedup": t_ref / t_fast,
                "traces_ok": (
                    len(ref_result.traces)
                    == len(fast_result.traces)
                    == num_requests
                ),
            }
        )
    return rows


@pytest.fixture(scope="module")
def sim_report():
    return run_simulator_benchmark()


class TestFastpathBench:
    def test_runs_are_real(self, sim_report):
        assert all(row["traces_ok"] for row in sim_report)

    @pytest.mark.parametrize("workload", ["mbench_spin", "webserver"])
    def test_byte_identical_output(self, workload):
        fast = _identity_fingerprint(workload, 15, FastpathSimulator)
        ref = _identity_fingerprint(workload, 15, ReferenceSimulator)
        assert fast == ref

    def test_fastpath_speedup(self, sim_report):
        asserted = [row for row in sim_report if row["asserted"]]
        worst = min(asserted, key=lambda row: row["speedup"])
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); worst asserted speedup "
                f"{worst['speedup']:.2f}x on {worst['workload']} "
                f"(assertion needs >= 2 CPUs)"
            )
        assert worst["speedup"] >= MIN_FASTPATH_SPEEDUP, (
            f"{worst['workload']}: fastpath speedup {worst['speedup']:.2f}x "
            f"below the required {MIN_FASTPATH_SPEEDUP:.0f}x "
            f"(ref {worst['t_ref']:.3f}s, fast {worst['t_fast']:.3f}s)"
        )


# --------------------------------------- end-to-end server workload gate
#
# The generation fast path is routed by workload *class*, not by env
# toggles: the fast configuration is FastpathSimulator driving the
# genfast workload, the reference configuration is ReferenceSimulator
# driving the reference generator.  Both time the whole run — catalog
# construction, request synthesis, and simulation — so the measured
# ratio is the end-to-end one a user sees.

_REFERENCE_FACTORIES = {
    "webserver": WebServerWorkload,
    "tpcc": TpccWorkload,
}

#: Offered load high enough that the 8-way closed concurrency stays
#: saturated — the run measures work, not idle inter-arrival gaps —
#: while exercising the open-loop admission path and latency store.
_SERVER_RATE_RPS = 50_000.0


def _server_config(num_requests, collector=None):
    return SimConfig(
        sampling=SamplingPolicy.interrupt(10.0),
        num_requests=num_requests,
        concurrency=8,
        seed=1,
        collector=collector,
        traffic=TrafficConfig(arrivals=PoissonArrivals(rate_per_s=_SERVER_RATE_RPS)),
    )


def _server_run(sim_cls, factory, num_requests, collector=None):
    config = _server_config(num_requests, collector=collector)
    return sim_cls(factory(), config).run()


def _server_fingerprint(workload, num_requests, sim_cls, factory):
    collector = TraceCollector(capacity=500_000)
    result = _server_run(sim_cls, factory, num_requests, collector=collector)
    traces = tuple(
        trace.cycles.tobytes()
        + trace.instructions.tobytes()
        + trace.start.tobytes()
        + trace.core.tobytes()
        for trace in result.traces
    )
    latency = tuple(
        (r.request_id, r.kind, r.tenant, r.arrival_cycle,
         r.start_cycle, r.completion_cycle)
        for r in result.latency.records
    )
    return (
        events_to_jsonl(collector.events, dropped=collector.dropped),
        result.wall_cycles,
        result.requests_shed,
        result.sampler_stats.as_dict(),
        traces,
        latency,
    )


def run_server_benchmark():
    rows = []
    for workload, num_requests in SERVER_CASES:
        reference = _REFERENCE_FACTORIES[workload]
        fast = FAST_FACTORIES[workload]
        # Five interleaved rounds, not ROUNDS sequential blocks: these
        # runs are ~20-200 ms, so a noisy scheduler quantum shifts a
        # 3-round minimum by ~10%, and alternating ref/fast inside each
        # round makes a load burst inflate both sides rather than bias
        # the ratio.
        t_ref = t_fast = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            _server_run(ReferenceSimulator, reference, num_requests)
            t_ref = min(t_ref, time.perf_counter() - start)
            start = time.perf_counter()
            _server_run(FastpathSimulator, fast, num_requests)
            t_fast = min(t_fast, time.perf_counter() - start)
        rows.append(
            {
                "workload": workload,
                "num_requests": num_requests,
                "t_ref": t_ref,
                "t_fast": t_fast,
                "speedup": t_ref / t_fast,
            }
        )
    return rows


@pytest.fixture(scope="module")
def server_report():
    return run_server_benchmark()


class TestServerEndToEndBench:
    @pytest.mark.parametrize("workload", [w for w, _ in SERVER_CASES])
    def test_byte_identical_output(self, workload):
        fast = _server_fingerprint(
            workload, 20, FastpathSimulator, FAST_FACTORIES[workload]
        )
        ref = _server_fingerprint(
            workload, 20, ReferenceSimulator, _REFERENCE_FACTORIES[workload]
        )
        assert fast == ref

    def test_server_end_to_end_speedup(self, server_report):
        worst = min(server_report, key=lambda row: row["speedup"])
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); worst end-to-end "
                f"speedup {worst['speedup']:.2f}x on {worst['workload']} "
                f"(assertion needs >= 2 CPUs)"
            )
        assert worst["speedup"] >= MIN_SERVER_SPEEDUP, (
            f"{worst['workload']}: end-to-end speedup {worst['speedup']:.2f}x "
            f"below the required {MIN_SERVER_SPEEDUP}x "
            f"(ref {worst['t_ref']:.3f}s, fast {worst['t_fast']:.3f}s)"
        )


# ------------------------------------------------------- dynamic programs


def dtw_cell_loop(x, y, p):
    """Pure-Python cell-by-cell version of the penalized-DTW recurrence."""
    n = len(y)
    row = [0.0] * n
    row[0] = abs(x[0] - y[0])
    for j in range(1, n):
        row[j] = row[j - 1] + abs(x[0] - y[j]) + p
    for i in range(1, len(x)):
        new = [0.0] * n
        new[0] = row[0] + abs(x[i] - y[0]) + p
        for j in range(1, n):
            cost = abs(x[i] - y[j])
            new[j] = min(
                row[j - 1] + cost,        # synchronous (diagonal)
                row[j] + cost + p,        # asynchronous along x
                new[j - 1] + cost + p,    # asynchronous along y
            )
        row = new
    return row[-1]


def levenshtein_cell_loop(a, b):
    """Pure-Python two-row edit-distance DP."""
    previous = list(range(len(b) + 1))
    for i, token_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, token_b in enumerate(b, start=1):
            current[j] = min(
                previous[j - 1] + (token_a != token_b),
                previous[j] + 1,
                current[j - 1] + 1,
            )
        previous = current
    return previous[-1]


def run_dp_benchmark():
    rng = np.random.default_rng(0)
    x = rng.random(400)
    y = rng.random(400)
    x_list, y_list = x.tolist(), y.tolist()
    a = [str(t) for t in rng.integers(0, 12, size=300)]
    b = [str(t) for t in rng.integers(0, 12, size=300)]

    dtw_fast, t_dtw_fast = best_of(
        lambda: dtw_distance(x, y, asynchrony_penalty=0.5)
    )
    dtw_slow, t_dtw_slow = best_of(
        lambda: dtw_cell_loop(x_list, y_list, 0.5), rounds=1
    )
    lev_fast, t_lev_fast = best_of(lambda: levenshtein_distance(a, b))
    lev_slow, t_lev_slow = best_of(lambda: levenshtein_cell_loop(a, b), rounds=1)

    return {
        "dtw_fast": dtw_fast,
        "dtw_slow": dtw_slow,
        "dtw_speedup": t_dtw_slow / t_dtw_fast,
        "t_dtw_fast": t_dtw_fast,
        "t_dtw_slow": t_dtw_slow,
        "lev_fast": lev_fast,
        "lev_slow": lev_slow,
        "lev_speedup": t_lev_slow / t_lev_fast,
        "t_lev_fast": t_lev_fast,
        "t_lev_slow": t_lev_slow,
    }


@pytest.fixture(scope="module")
def dp_report():
    return run_dp_benchmark()


class TestDynamicProgramBench:
    def test_dtw_matches_cell_loop(self, dp_report):
        assert dp_report["dtw_fast"] == pytest.approx(
            dp_report["dtw_slow"], rel=1e-9
        )

    def test_levenshtein_matches_cell_loop(self, dp_report):
        assert dp_report["lev_fast"] == dp_report["lev_slow"]

    @pytest.mark.parametrize("key", ["dtw", "lev"])
    def test_vectorized_dp_speedup(self, dp_report, key):
        speedup = dp_report[f"{key}_speedup"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured {key} "
                f"speedup {speedup:.2f}x (assertion needs >= 2 CPUs)"
            )
        assert speedup >= MIN_DP_SPEEDUP, (
            f"vectorized {key} only {speedup:.2f}x over the cell loop"
        )


def main() -> None:
    print(f"simulator fast path ({usable_cpus()} usable CPU(s)):")
    for row in run_simulator_benchmark():
        tag = "assert >= 3x" if row["asserted"] else "informational"
        print(
            f"  {row['workload']:<12s} {row['num_requests']:>3d} requests  "
            f"ref {row['t_ref']:7.3f}s  fast {row['t_fast']:7.3f}s  "
            f"{row['speedup']:5.2f}x  [{tag}]"
        )
    print("end-to-end server workloads (gen+sim fast paths vs all-reference):")
    for row in run_server_benchmark():
        print(
            f"  {row['workload']:<12s} {row['num_requests']:>3d} requests  "
            f"ref {row['t_ref']:7.3f}s  fast {row['t_fast']:7.3f}s  "
            f"{row['speedup']:5.2f}x  [assert >= {MIN_SERVER_SPEEDUP}x]"
        )
    dp = run_dp_benchmark()
    print("dynamic programs (vectorized vs pure-Python cell loop):")
    print(
        f"  dtw 400x400          loop {dp['t_dtw_slow']:7.3f}s  "
        f"vec {dp['t_dtw_fast']:7.3f}s  {dp['dtw_speedup']:5.1f}x"
    )
    print(
        f"  levenshtein 300x300  loop {dp['t_lev_slow']:7.3f}s  "
        f"vec {dp['t_lev_fast']:7.3f}s  {dp['lev_speedup']:5.1f}x"
    )


if __name__ == "__main__":
    main()
