"""Engine microbenchmarks: the simulator fast path and the core DPs.

Two families, both *comparative* — every assertion is a measured ratio
between two implementations run on the same machine in the same
process, never an absolute wall-clock bound (absolute bounds made this
bench flaky on slow or throttled CI runners):

* **simulator fast path** — the calendar/SoA engine
  (:class:`~repro.kernel.fastpath.FastpathSimulator`) against the
  reference event loop on identical configurations.  The
  loop-dominated microbenchmark workloads must show the headline
  >= 3x speedup; the server workloads are reported informationally
  (per-request workload *generation* bounds their end-to-end ratio,
  see docs/perf.md).  Output byte-identity is asserted in-bench: the
  fast path is only a win if it is also *exact*.
* **dynamic programs** — the row-vectorized DTW and Levenshtein
  kernels against straightforward pure-Python cell-loop baselines
  computing the same recurrences.

Speedup assertions are hardware-gated (>= 2 usable CPUs); on smaller
machines the measured ratio is reported and the assertion skips.  Run
directly for a readable report:

    PYTHONPATH=src python benchmarks/bench_simulator_speed.py
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.distances import levenshtein_distance
from repro.core.dtw import dtw_distance
from repro.kernel.fastpath import FastpathSimulator, ReferenceSimulator
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import SimConfig
from repro.obs.trace import TraceCollector, events_to_jsonl
from repro.workloads.registry import make_workload

#: Headline requirement on the loop-dominated microbenchmark workloads.
MIN_FASTPATH_SPEEDUP = 3.0
#: Vectorized DPs vs. their pure-Python cell loops (conservative: the
#: measured gap is an order of magnitude).
MIN_DP_SPEEDUP = 2.0
ROUNDS = 3

#: (workload, num_requests, asserted).  The mbench pair spends its time
#: in the event loop proper — that is what the fast path accelerates —
#: while the server workloads also pay per-request generation costs the
#: engine cannot touch.
SIM_CASES = (
    ("mbench_spin", 60, True),
    ("mbench_data", 15, True),
    ("tpcc", 40, False),
    ("webserver", 40, False),
)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def best_of(fn, rounds=ROUNDS):
    """Best wall time over ``rounds`` runs (robust against CI jitter)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


# ----------------------------------------------------- simulator fast path


def _sim_config(num_requests, collector=None):
    return SimConfig(
        sampling=SamplingPolicy.interrupt(10.0),
        num_requests=num_requests,
        concurrency=8,
        seed=1,
        collector=collector,
    )


def _run_sim(sim_cls, workload, num_requests, collector=None):
    config = _sim_config(num_requests, collector=collector)
    return sim_cls(make_workload(workload), config).run()


def _identity_fingerprint(workload, num_requests, sim_cls):
    collector = TraceCollector(capacity=500_000)
    result = _run_sim(sim_cls, workload, num_requests, collector=collector)
    traces = tuple(
        trace.cycles.tobytes()
        + trace.instructions.tobytes()
        + trace.start.tobytes()
        + trace.core.tobytes()
        for trace in result.traces
    )
    return (
        events_to_jsonl(collector.events, dropped=collector.dropped),
        result.wall_cycles,
        result.sampler_stats.as_dict(),
        traces,
    )


def run_simulator_benchmark():
    rows = []
    for workload, num_requests, asserted in SIM_CASES:
        ref_result, t_ref = best_of(
            lambda w=workload, n=num_requests: _run_sim(ReferenceSimulator, w, n)
        )
        fast_result, t_fast = best_of(
            lambda w=workload, n=num_requests: _run_sim(FastpathSimulator, w, n)
        )
        rows.append(
            {
                "workload": workload,
                "num_requests": num_requests,
                "asserted": asserted,
                "t_ref": t_ref,
                "t_fast": t_fast,
                "speedup": t_ref / t_fast,
                "traces_ok": (
                    len(ref_result.traces)
                    == len(fast_result.traces)
                    == num_requests
                ),
            }
        )
    return rows


@pytest.fixture(scope="module")
def sim_report():
    return run_simulator_benchmark()


class TestFastpathBench:
    def test_runs_are_real(self, sim_report):
        assert all(row["traces_ok"] for row in sim_report)

    @pytest.mark.parametrize("workload", ["mbench_spin", "webserver"])
    def test_byte_identical_output(self, workload):
        fast = _identity_fingerprint(workload, 15, FastpathSimulator)
        ref = _identity_fingerprint(workload, 15, ReferenceSimulator)
        assert fast == ref

    def test_fastpath_speedup(self, sim_report):
        asserted = [row for row in sim_report if row["asserted"]]
        worst = min(asserted, key=lambda row: row["speedup"])
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); worst asserted speedup "
                f"{worst['speedup']:.2f}x on {worst['workload']} "
                f"(assertion needs >= 2 CPUs)"
            )
        assert worst["speedup"] >= MIN_FASTPATH_SPEEDUP, (
            f"{worst['workload']}: fastpath speedup {worst['speedup']:.2f}x "
            f"below the required {MIN_FASTPATH_SPEEDUP:.0f}x "
            f"(ref {worst['t_ref']:.3f}s, fast {worst['t_fast']:.3f}s)"
        )


# ------------------------------------------------------- dynamic programs


def dtw_cell_loop(x, y, p):
    """Pure-Python cell-by-cell version of the penalized-DTW recurrence."""
    n = len(y)
    row = [0.0] * n
    row[0] = abs(x[0] - y[0])
    for j in range(1, n):
        row[j] = row[j - 1] + abs(x[0] - y[j]) + p
    for i in range(1, len(x)):
        new = [0.0] * n
        new[0] = row[0] + abs(x[i] - y[0]) + p
        for j in range(1, n):
            cost = abs(x[i] - y[j])
            new[j] = min(
                row[j - 1] + cost,        # synchronous (diagonal)
                row[j] + cost + p,        # asynchronous along x
                new[j - 1] + cost + p,    # asynchronous along y
            )
        row = new
    return row[-1]


def levenshtein_cell_loop(a, b):
    """Pure-Python two-row edit-distance DP."""
    previous = list(range(len(b) + 1))
    for i, token_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        for j, token_b in enumerate(b, start=1):
            current[j] = min(
                previous[j - 1] + (token_a != token_b),
                previous[j] + 1,
                current[j - 1] + 1,
            )
        previous = current
    return previous[-1]


def run_dp_benchmark():
    rng = np.random.default_rng(0)
    x = rng.random(400)
    y = rng.random(400)
    x_list, y_list = x.tolist(), y.tolist()
    a = [str(t) for t in rng.integers(0, 12, size=300)]
    b = [str(t) for t in rng.integers(0, 12, size=300)]

    dtw_fast, t_dtw_fast = best_of(
        lambda: dtw_distance(x, y, asynchrony_penalty=0.5)
    )
    dtw_slow, t_dtw_slow = best_of(
        lambda: dtw_cell_loop(x_list, y_list, 0.5), rounds=1
    )
    lev_fast, t_lev_fast = best_of(lambda: levenshtein_distance(a, b))
    lev_slow, t_lev_slow = best_of(lambda: levenshtein_cell_loop(a, b), rounds=1)

    return {
        "dtw_fast": dtw_fast,
        "dtw_slow": dtw_slow,
        "dtw_speedup": t_dtw_slow / t_dtw_fast,
        "t_dtw_fast": t_dtw_fast,
        "t_dtw_slow": t_dtw_slow,
        "lev_fast": lev_fast,
        "lev_slow": lev_slow,
        "lev_speedup": t_lev_slow / t_lev_fast,
        "t_lev_fast": t_lev_fast,
        "t_lev_slow": t_lev_slow,
    }


@pytest.fixture(scope="module")
def dp_report():
    return run_dp_benchmark()


class TestDynamicProgramBench:
    def test_dtw_matches_cell_loop(self, dp_report):
        assert dp_report["dtw_fast"] == pytest.approx(
            dp_report["dtw_slow"], rel=1e-9
        )

    def test_levenshtein_matches_cell_loop(self, dp_report):
        assert dp_report["lev_fast"] == dp_report["lev_slow"]

    @pytest.mark.parametrize("key", ["dtw", "lev"])
    def test_vectorized_dp_speedup(self, dp_report, key):
        speedup = dp_report[f"{key}_speedup"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured {key} "
                f"speedup {speedup:.2f}x (assertion needs >= 2 CPUs)"
            )
        assert speedup >= MIN_DP_SPEEDUP, (
            f"vectorized {key} only {speedup:.2f}x over the cell loop"
        )


def main() -> None:
    print(f"simulator fast path ({usable_cpus()} usable CPU(s)):")
    for row in run_simulator_benchmark():
        tag = "assert >= 3x" if row["asserted"] else "informational"
        print(
            f"  {row['workload']:<12s} {row['num_requests']:>3d} requests  "
            f"ref {row['t_ref']:7.3f}s  fast {row['t_fast']:7.3f}s  "
            f"{row['speedup']:5.2f}x  [{tag}]"
        )
    dp = run_dp_benchmark()
    print("dynamic programs (vectorized vs pure-Python cell loop):")
    print(
        f"  dtw 400x400          loop {dp['t_dtw_slow']:7.3f}s  "
        f"vec {dp['t_dtw_fast']:7.3f}s  {dp['dtw_speedup']:5.1f}x"
    )
    print(
        f"  levenshtein 300x300  loop {dp['t_lev_slow']:7.3f}s  "
        f"vec {dp['t_lev_fast']:7.3f}s  {dp['lev_speedup']:5.1f}x"
    )


if __name__ == "__main__":
    main()
