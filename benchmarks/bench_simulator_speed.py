"""Engine microbenchmarks: how fast does the simulator itself run?

Unlike the per-figure benches (one timed round of a whole experiment),
these are classic repeated-round microbenchmarks of the core engine and
the two O(m*n) dynamic programs, guarding against performance regressions
in the inner loops.
"""

import numpy as np
import pytest

from repro.core.distances import levenshtein_distance
from repro.core.dtw import dtw_distance
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload


def run_webserver(collector=None):
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(10.0),
        num_requests=50,
        concurrency=8,
        seed=1,
        collector=collector,
    )
    return ServerSimulator(make_workload("webserver"), config).run()


def test_engine_throughput(benchmark):
    result = benchmark.pedantic(run_webserver, rounds=3, iterations=1)
    # Sanity: a real run happened.
    assert len(result.traces) == 50
    samples = result.sampler_stats.total_samples
    assert samples > 500
    # The engine must stay fast enough for the full harness: 50 web
    # requests at 10us sampling well under a second.  The default config
    # has tracing disabled — this bench also pins the no-op fast path.
    assert benchmark.stats.stats.mean < 1.0


def test_engine_throughput_with_tracing(benchmark):
    from repro.obs.trace import TraceCollector

    def run_traced():
        return run_webserver(collector=TraceCollector())

    result = benchmark.pedantic(run_traced, rounds=3, iterations=1)
    assert len(result.traces) == 50
    # Event emission is append-only bookkeeping; even fully enabled it
    # must stay within the same order of magnitude as the plain run.
    assert benchmark.stats.stats.mean < 2.0


def test_dtw_speed(benchmark):
    rng = np.random.default_rng(0)
    x = rng.random(400)
    y = rng.random(400)

    distance = benchmark.pedantic(
        lambda: dtw_distance(x, y, asynchrony_penalty=0.5),
        rounds=5,
        iterations=2,
    )
    assert np.isfinite(distance)
    # Row-vectorized DP: a 400x400 instance in a few milliseconds.
    assert benchmark.stats.stats.mean < 0.25


def test_levenshtein_speed(benchmark):
    rng = np.random.default_rng(0)
    a = [str(t) for t in rng.integers(0, 12, size=300)]
    b = [str(t) for t in rng.integers(0, 12, size=300)]

    distance = benchmark.pedantic(
        lambda: levenshtein_distance(a, b), rounds=5, iterations=2
    )
    assert 0 <= distance <= 300
    assert benchmark.stats.stats.mean < 0.25
