"""Figure 8 benchmark: TPCH anomaly vs group-centroid reference (Q20).

Paper shape: the anomalous request exhibits higher CPI for much of its
execution; the CPI excess tracks the L2 misses-per-instruction excess
(shared-L2/bandwidth contention is the cause); the anomaly's L2 reference
rate shows some increase.
"""


def test_fig8_tpch_anomaly(run_experiment):
    result = run_experiment("fig8", scale=1.0)
    rows = {r["metric"]: r for r in result.rows}

    assert rows["cpi"]["frac_windows_higher"] > 0.55
    assert rows["cpi"]["anomaly_mean"] > rows["cpi"]["reference_mean"]
    assert rows["l2_miss_per_ins"]["frac_windows_higher"] > 0.5
    # "Some increase" of the reference rate.
    assert rows["l2_refs_per_ins"]["mean_ratio"] > 0.99
    print()
    print(result.render())
