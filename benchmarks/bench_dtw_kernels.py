"""Benchmark: pruned + batched DTW kernels on a fig7-shaped NN workload.

A fig7-style nearest-neighbor classification workload — 40 query CPI
variation patterns, each matched against a bank of 120 training patterns
under DTW with asynchrony penalty — computed three ways:

* naive scan: one interpreter-dispatched `dtw_distance` per (query, bank
  row) pair, argmin over the full distance vector (the pre-kernel
  baseline);
* `argmin_distance`: candidates ordered by admissible lower bound,
  batched block DPs with the best-so-far threaded through as the exact
  early-abandon cutoff;
* `dtw_one_to_many`: the full batched DP without pruning (measures the
  vectorization win alone).

Every path must return identical argmin indices and bit-identical best
distances.  The >= 3x speedup assertion is hardware-gated (needs >= 2
usable CPUs to rule out pathologically throttled machines); otherwise
the measured ratio is reported and the assertion skips.  Run directly
for a readable report:

    PYTHONPATH=src python benchmarks/bench_dtw_kernels.py
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.dtw import dtw_distance
from repro.core.kernels import PenaltyDtw, argmin_distance, dtw_one_to_many

BANK_SIZE = 120
N_QUERIES = 40
PENALTY = 0.4
MIN_SPEEDUP = 3.0


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def fig7_style_series(n: int, seed: int):
    """Synthetic CPI variation patterns: length-varying noisy random walks
    around a few per-kind baselines, like fig7's per-request series."""
    rng = np.random.default_rng(seed)
    baselines = (1.6, 2.4, 3.1)
    series = []
    for i in range(n):
        length = int(rng.integers(40, 90))
        base = baselines[i % len(baselines)]
        walk = np.cumsum(rng.normal(0.0, 0.08, size=length))
        series.append(base + walk + rng.normal(0.0, 0.15, size=length))
    return series


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def naive_nn(queries, bank_rows):
    results = []
    for query in queries:
        distances = np.array(
            [
                dtw_distance(query, row, asynchrony_penalty=PENALTY)
                for row in bank_rows
            ]
        )
        index = int(np.argmin(distances))
        results.append((index, float(distances[index])))
    return results


def pruned_nn(queries, bank):
    return [argmin_distance(q, bank, PENALTY) for q in queries]


def batched_nn(queries, bank):
    results = []
    for query in queries:
        distances = dtw_one_to_many(query, bank, PENALTY)
        index = int(np.argmin(distances))
        results.append((index, float(distances[index])))
    return results


def run_benchmark():
    bank_rows = fig7_style_series(BANK_SIZE, seed=7)
    queries = fig7_style_series(N_QUERIES, seed=8)
    bank = PenaltyDtw(PENALTY).bank(bank_rows)

    naive, t_naive = timed(lambda: naive_nn(queries, bank_rows))
    pruned, t_pruned = timed(lambda: pruned_nn(queries, bank))
    batched, t_batched = timed(lambda: batched_nn(queries, bank))

    return {
        "naive": naive,
        "pruned": pruned,
        "batched": batched,
        "t_naive": t_naive,
        "t_pruned": t_pruned,
        "t_batched": t_batched,
        "n_pairs": BANK_SIZE * N_QUERIES,
    }


@pytest.fixture(scope="module")
def report():
    return run_benchmark()


class TestDtwKernelBench:
    def test_pruned_identical_argmins_and_distances(self, report):
        assert report["pruned"] == report["naive"]

    def test_batched_identical_argmins_and_distances(self, report):
        assert report["batched"] == report["naive"]

    def test_pruned_speedup(self, report):
        speedup = report["t_naive"] / report["t_pruned"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured speedup "
                f"{speedup:.2f}x (assertion needs >= 2 CPUs)"
            )
        assert speedup >= MIN_SPEEDUP, (
            f"pruned NN speedup {speedup:.2f}x below {MIN_SPEEDUP:.0f}x"
        )


def main() -> None:
    r = run_benchmark()
    identical = r["pruned"] == r["naive"] and r["batched"] == r["naive"]
    print(
        f"fig7-shaped NN workload: {N_QUERIES} queries x {BANK_SIZE} bank "
        f"rows = {r['n_pairs']} pairs, p={PENALTY} "
        f"({usable_cpus()} usable CPU(s))"
    )
    print(f"  naive per-pair scan    {r['t_naive']:8.2f} s")
    print(
        f"  pruned argmin          {r['t_pruned']:8.2f} s "
        f"({r['t_naive'] / r['t_pruned']:.2f}x vs naive)"
    )
    print(
        f"  batched full DP        {r['t_batched']:8.2f} s "
        f"({r['t_naive'] / r['t_batched']:.2f}x vs naive)"
    )
    print(f"  argmins + distances identical: {identical}")


if __name__ == "__main__":
    main()
