"""Figure 3 benchmark: captured request behavior variations (CoV).

Paper shape: considering intra-request fluctuations yields much stronger
metric variations than the inter-request view for every application except
TPCH, whose queries run uniformly over long data sequences.
"""


def test_fig3_captured_variation(run_experiment):
    result = run_experiment("fig3", scale=0.5)
    rows = {r["app"]: r for r in result.rows}

    for app in ("webserver", "tpcc", "rubis", "webwork"):
        gain = rows[app]["cpi:with_intra"] / rows[app]["cpi:inter"]
        assert gain > 1.8, (app, gain)

    tpch_gain = rows["tpch"]["cpi:with_intra"] / rows["tpch"]["cpi:inter"]
    other_gains = [
        rows[a]["cpi:with_intra"] / rows[a]["cpi:inter"]
        for a in ("webserver", "tpcc", "rubis", "webwork")
    ]
    assert tpch_gain < min(other_gains)

    # The same holds across the other two metrics.
    for metric in ("l2_refs_per_ins", "l2_miss_ratio"):
        for app in ("webserver", "webwork"):
            assert (
                rows[app][f"{metric}:with_intra"] > rows[app][f"{metric}:inter"]
            ), (app, metric)
    print()
    print(result.render())
