"""Figure 9 benchmark: WeBWorK multi-metric anomaly pair (problem 954).

Paper shape: within a same-problem request pair with very similar L2
reference streams, the anomaly shows higher CPI in certain execution
regions, and the CPI excess matches the L2 misses-per-instruction excess;
unlike TPCH, the reference-rate patterns stay very similar.
"""


def test_fig9_webwork_anomaly(run_experiment):
    result = run_experiment("fig9", scale=1.0)
    rows = {r["metric"]: r for r in result.rows}

    # Same work: L2 reference streams nearly identical.
    assert 0.9 < rows["l2_refs_per_ins"]["mean_ratio"] < 1.12

    # The anomaly suffers in (at least) certain regions.
    assert rows["cpi"]["anomaly_mean"] >= rows["cpi"]["reference_mean"] * 0.99
    assert rows["l2_miss_per_ins"]["mean_ratio"] > 1.0

    # CPI excess tracks miss excess (the correlation is in the notes).
    corr_note = next(n for n in result.notes if "correlation" in n)
    corr = float(corr_note.rsplit("r=", 1)[1])
    assert corr > 0.4
    print()
    print(result.render())
