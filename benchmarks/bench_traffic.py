"""Benchmark: arrival generation + dispatch throughput of the traffic layer.

Two hot paths matter for load sweeps:

* schedule generation — drawing an n-arrival Poisson/ON-OFF/Zipf schedule
  (the vectorized exponential cumsum vs the per-draw loop it replaced);
* dispatch decisions — a policy's ``choose`` against a live queue view,
  the per-stage cost every enqueue pays inside the simulator.

The sustained-rate assertion (>= 10k arrivals scheduled *and* dispatched
per wall-clock second) is hardware-gated on >= 2 usable CPUs, matching
the other benchmark gates; under that it only reports.  Run directly for
a readable report:

    PYTHONPATH=src python benchmarks/bench_traffic.py
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.traffic import (
    JoinShortestQueue,
    OnOffArrivals,
    PoissonArrivals,
    RandomDispatch,
    RoundRobinDispatch,
    ZipfArrivals,
    parse_dispatch,
)

N_ARRIVALS = 50_000
N_DISPATCHES = 50_000
MIN_RATE = 10_000  # arrivals scheduled + dispatched per second
GHZ = 3.0
CORES = tuple(range(4))


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


class _BenchView:
    """A moving queue-state view so queue-aware policies do real work."""

    def __init__(self):
        self.depths = [3, 1, 4, 1]

    def queue_depth(self, core_id):
        return self.depths[core_id]

    def outstanding_work(self, core_id):
        return float(self.depths[core_id]) * 1e5

    def tick(self, core_id):
        self.depths[core_id] = (self.depths[core_id] + 1) % 7


class _BenchSpec:
    kind = "new_order"


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def schedule_rate(process, n=N_ARRIVALS) -> float:
    rng = np.random.default_rng(5)
    arrivals, seconds = timed(lambda: process.schedule(rng, n, GHZ))
    assert len(arrivals) == n
    return n / seconds


def dispatch_rate(policy, n=N_DISPATCHES) -> float:
    policy.reset(seed=1)
    view = _BenchView()
    spec = _BenchSpec()

    def drive():
        for i in range(n):
            core = policy.choose(0, CORES, spec, 0, view)
            view.tick(core)

    _, seconds = timed(drive)
    return n / seconds


def combined_rate(n=N_ARRIVALS) -> float:
    """Schedule n Poisson arrivals and dispatch each once: the full
    per-arrival traffic-layer cost a load sweep pays."""
    rng = np.random.default_rng(9)
    policy = JoinShortestQueue()
    policy.reset(seed=1)
    view = _BenchView()
    spec = _BenchSpec()

    def drive():
        arrivals = PoissonArrivals(5000.0).schedule(rng, n, GHZ)
        for _ in arrivals:
            view.tick(policy.choose(0, CORES, spec, 0, view))
        return arrivals

    arrivals, seconds = timed(drive)
    assert len(arrivals) == n
    return n / seconds


def run_benchmark():
    return {
        "poisson": schedule_rate(PoissonArrivals(5000.0)),
        "onoff": schedule_rate(OnOffArrivals(8000.0, 500.0, 5.0, 5.0)),
        "zipf": schedule_rate(ZipfArrivals(5000.0, 1.1, 16)),
        "rr": dispatch_rate(RoundRobinDispatch()),
        "random": dispatch_rate(RandomDispatch()),
        "jsq": dispatch_rate(JoinShortestQueue()),
        "low": dispatch_rate(parse_dispatch("low")),
        "combined": combined_rate(),
    }


@pytest.fixture(scope="module")
def report():
    return run_benchmark()


class TestTrafficBench:
    def test_sustains_10k_arrivals_per_second(self, report):
        rate = report["combined"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured "
                f"{rate:.0f} arrivals/s (assertion needs >= 2 CPUs)"
            )
        assert rate >= MIN_RATE, (
            f"traffic layer sustained {rate:.0f} arrivals/s, "
            f"below the {MIN_RATE} floor"
        )

    def test_every_path_produces_work(self, report):
        assert all(rate > 0 for rate in report.values())


def main() -> None:
    r = run_benchmark()
    print(
        f"traffic-layer throughput, {N_ARRIVALS} arrivals / "
        f"{N_DISPATCHES} dispatch decisions ({usable_cpus()} usable CPU(s))"
    )
    for name in ("poisson", "onoff", "zipf"):
        print(f"  schedule {name:<8} {r[name]:12.0f} arrivals/s")
    for name in ("rr", "random", "jsq", "low"):
        print(f"  dispatch {name:<8} {r[name]:12.0f} decisions/s")
    print(f"  schedule+dispatch     {r['combined']:12.0f} arrivals/s "
          f"(floor {MIN_RATE})")


if __name__ == "__main__":
    main()
