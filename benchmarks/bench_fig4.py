"""Figure 4 benchmark: CDF of next-system-call distances.

Paper numbers: P(next syscall within 16 us) ~97% (web), ~83% (TPCH),
~72% (RUBiS); P(within 1 ms) ~82% (TPCC) and ~81% (WeBWorK).
"""

import pytest


def test_fig4_syscall_distance_cdfs(run_experiment):
    result = run_experiment("fig4", scale=1.0)
    time_rows = {
        r["app"]: r for r in result.rows if r["axis"] == "time_us"
    }

    assert time_rows["webserver"]["<= 16"] == pytest.approx(0.97, abs=0.04)
    assert time_rows["tpch"]["<= 16"] == pytest.approx(0.83, abs=0.07)
    assert time_rows["rubis"]["<= 16"] == pytest.approx(0.72, abs=0.07)
    assert time_rows["tpcc"]["<= 1024"] == pytest.approx(0.82, abs=0.08)
    assert time_rows["webwork"]["<= 1024"] == pytest.approx(0.81, abs=0.08)

    # CDFs are monotone on both axes.
    for row in result.rows:
        probs = [v for k, v in row.items() if k.startswith("<=")]
        assert probs == sorted(probs)
    print()
    print(result.render())
