"""Figure 7 benchmark: request classification quality by differencing measure.

Paper shape (divergence from centroid, lower is better):
* DTW with asynchrony penalty achieves high quality everywhere;
* plain DTW can be very poor (no-cost time shifting under-estimates);
* Levenshtein over syscall sequences is relatively poor;
* average-CPI does well on peak CPI but poorly on CPU time;
* L1 lands close to DTW+penalty at far lower cost.
"""

import numpy as np


def test_fig7_classification_quality(run_experiment):
    result = run_experiment("fig7", scale=0.5)
    cpu_rows = {r["app"]: r for r in result.panels["property: cpu_time"]}
    peak_rows = {r["app"]: r for r in result.panels["property: peak_cpi"]}

    # The asynchrony penalty is essential: plain DTW is far worse on the
    # CPU-time property for most applications.
    worse = [
        cpu_rows[a]["dtw"] / cpu_rows[a]["dtw_penalty"] for a in cpu_rows
    ]
    assert np.median(worse) > 2.0

    # DTW+penalty achieves consistently low divergence on CPU time.
    for app, row in cpu_rows.items():
        assert row["dtw_penalty"] <= row["avg_cpi"] + 1e-9, app
        assert row["dtw_penalty"] < 25.0, app

    # avg-CPI: competitive on peak CPI, poor on CPU time (paper's claim).
    avg_gap_cpu = np.mean(
        [cpu_rows[a]["avg_cpi"] - cpu_rows[a]["dtw_penalty"] for a in cpu_rows]
    )
    avg_gap_peak = np.mean(
        [peak_rows[a]["avg_cpi"] - peak_rows[a]["dtw_penalty"] for a in peak_rows]
    )
    assert avg_gap_cpu > avg_gap_peak

    # Levenshtein is poorer than DTW+penalty on average (CPU time).
    lev_gap = np.mean(
        [cpu_rows[a]["levenshtein"] - cpu_rows[a]["dtw_penalty"] for a in cpu_rows]
    )
    assert lev_gap > 0
    print()
    print(result.render())
