"""Benchmark: streaming-pipeline overhead over plain simulation.

The online pipeline subscribes to the simulator's live event stream and
runs identification, prediction, and anomaly detection per period/window.
That work must stay cheap relative to the simulation itself — the whole
premise of the paper's online techniques is production-affordable overhead.

Three configurations of the same seeded TPCC run:

* plain: no collector at all (the NULL_COLLECTOR fast path),
* collector: full-tracing TraceCollector attached, no subscriber,
* streaming: kind-filtered collector (SUBSCRIBED_KINDS only) + full
  OnlinePipeline (no identifier training in the timed region; the bank
  is fitted once up front).

Timings take the min of repeats to shed scheduler noise.  The overhead
assertion (streaming <= 15% over plain at default sampling) only runs on
machines with >= 2 usable CPUs and is reported otherwise.  Run directly
for a readable report:

    PYTHONPATH=src python benchmarks/bench_online_pipeline.py
"""

from __future__ import annotations

import os
import time

import pytest

from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import TraceCollector
from repro.online.pipeline import (
    SUBSCRIBED_KINDS,
    OnlinePipeline,
    train_identifier,
)
from repro.workloads.registry import make_faulted_workload, make_workload

NUM_REQUESTS = 120
SEED = 17
REPEATS = 5
MAX_OVERHEAD = 0.15


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def one_run(identifier, mode: str):
    workload = make_faulted_workload("tpcc", "lock_stall:0.15")
    collector = None
    pipeline = None
    if mode == "collector":
        collector = TraceCollector()
    if mode == "streaming":
        # Production posture: stream only the kinds the pipeline reads,
        # dispatch-only (no event retention).
        collector = TraceCollector(capacity=0, kinds=SUBSCRIBED_KINDS)
        pipeline = OnlinePipeline(identifier=identifier)
        collector.subscribe(pipeline.process_event)
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=NUM_REQUESTS,
        concurrency=8,
        seed=SEED,
        collector=collector,
    )
    start = time.perf_counter()
    result = ServerSimulator(workload, config).run()
    elapsed = time.perf_counter() - start
    return result, pipeline, elapsed


def run_benchmark():
    identifier = train_identifier(
        make_workload("tpcc"), num_requests=20, seed=SEED + 10_000
    )
    times = {"plain": [], "collector": [], "streaming": []}
    results = {}
    for _ in range(REPEATS):
        for mode in times:
            result, pipeline, elapsed = one_run(identifier, mode)
            times[mode].append(elapsed)
            results[mode] = (result, pipeline)
    best = {mode: min(samples) for mode, samples in times.items()}
    plain_result = results["plain"][0]
    stream_result, pipeline = results["streaming"]
    return {
        "t_plain": best["plain"],
        "t_collector": best["collector"],
        "t_streaming": best["streaming"],
        "overhead_collector": best["collector"] / best["plain"] - 1.0,
        "overhead_streaming": best["streaming"] / best["plain"] - 1.0,
        "plain_result": plain_result,
        "stream_result": stream_result,
        "pipeline": pipeline,
    }


@pytest.fixture(scope="module")
def report():
    return run_benchmark()


class TestOnlinePipelineBench:
    def test_no_observer_effect_on_simulation(self, report):
        """Attaching the pipeline must not change simulated outcomes."""
        plain = report["plain_result"]
        streamed = report["stream_result"]
        assert plain.wall_cycles == streamed.wall_cycles
        assert [t.spec.request_id for t in plain.traces] == [
            t.spec.request_id for t in streamed.traces
        ]

    def test_pipeline_actually_ran(self, report):
        pipeline = report["pipeline"]
        assert len(pipeline.records) == NUM_REQUESTS
        assert pipeline.windows_seen > 0

    def test_streaming_overhead_bounded(self, report):
        overhead = report["overhead_streaming"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured streaming "
                f"overhead {overhead:+.1%} (assertion needs >= 2 CPUs)"
            )
        assert overhead <= MAX_OVERHEAD, (
            f"streaming overhead {overhead:+.1%} exceeds {MAX_OVERHEAD:.0%}"
        )


def main() -> None:
    r = run_benchmark()
    print(
        f"online pipeline overhead: {NUM_REQUESTS} TPCC requests, "
        f"min of {REPEATS} runs ({usable_cpus()} usable CPU(s))"
    )
    print(f"  plain simulation     {r['t_plain']:8.3f} s")
    print(
        f"  + collector          {r['t_collector']:8.3f} s "
        f"({r['overhead_collector']:+.1%})"
    )
    print(
        f"  + streaming pipeline {r['t_streaming']:8.3f} s "
        f"({r['overhead_streaming']:+.1%})"
    )
    pipeline = r["pipeline"]
    print(
        f"  pipeline folded {pipeline.periods_seen} periods into "
        f"{pipeline.windows_seen} windows across {len(pipeline.records)} requests"
    )


if __name__ == "__main__":
    main()
