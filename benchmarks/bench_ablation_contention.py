"""Ablation: contention-model sensitivity of the Figure 1 obfuscation.

The multicore performance obfuscation of Figure 1 rests on two model
knobs: the shared-L2 pressure scale and the memory-bus inflation.  This
ablation shows the *qualitative* finding — TPCH obfuscated, WeBWorK
untouched — is robust across a wide knob range, i.e. it follows from the
workloads' footprints rather than from a tuned constant.
"""

import numpy as np

from repro.experiments.common import simulate
from repro.hardware.cache import SharedL2Model
from repro.hardware.memory import MemoryBusModel

SETTINGS = (
    ("half", 0.5),
    ("paper-calibrated", 1.0),
    ("double", 2.0),
)


def sweep():
    out = {}
    for label, factor in SETTINGS:
        cache = SharedL2Model(pressure_scale=45.0 * factor)
        bus = MemoryBusModel(contention_gamma=1.2 * factor)
        ratios = {}
        for app in ("tpch", "webwork"):
            multi = simulate(
                app,
                num_requests=24 if app == "tpch" else 10,
                seed=204,
                cache=cache,
                bus=bus,
            )
            serial = simulate(
                app,
                num_requests=8 if app == "tpch" else 4,
                seed=205,
                cores=1,
                cache=cache,
                bus=bus,
            )
            ratios[app] = float(
                np.percentile(multi.request_cpis(), 90)
                / np.percentile(serial.request_cpis(), 90)
            )
        out[label] = ratios
    return out


def test_ablation_contention_model(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    for label, ratios in results.items():
        # The qualitative Figure 1 finding holds at every setting.
        assert ratios["tpch"] > 1.25, (label, ratios)
        assert ratios["webwork"] < 1.1, (label, ratios)
        assert ratios["tpch"] > 1.3 * ratios["webwork"], (label, ratios)

    # The knobs scale the *magnitude* monotonically for the sensitive app.
    assert results["double"]["tpch"] > results["half"]["tpch"]

    print()
    print("90-pct CPI ratio (4-core / 1-core) vs contention-model strength:")
    for label, ratios in results.items():
        print(f"  {label:18s} tpch {ratios['tpch']:.2f}   "
              f"webwork {ratios['webwork']:.2f}")
