"""Benchmark: serve-tier sustained throughput and latency under overload.

Two scenarios against a real subprocess worker pool (the same stack as
``repro-serve load-test``):

* **throughput** — instances stream as fast as credit allows; the
  sustained events/sec over the streaming window is the capacity
  headline.  The floor assertion (>= MIN_EVENTS_PER_SEC) only runs on
  machines with >= 2 usable CPUs and is reported otherwise.
* **overload** — instances pace their streams at several times the
  measured capacity with tiny queues and shed-mode backpressure, so the
  pool is saturated.  The frame-ack latency distribution (p50/p95/max)
  is the detection-latency-under-overload measurement: how stale is an
  anomaly verdict when the fleet is drowning.  Overload must degrade by
  shedding and latency, never by wrong answers — the fleet report is
  still compared against the throughput run's decision surface.

Run directly for a readable report:

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import asyncio
import os
import tempfile

import pytest

from repro.serve.service import LoadTestOptions, run_load_test

SEED = 23
MIN_EVENTS_PER_SEC = 1_000.0
OVERLOAD_RATE_MULTIPLIER = 4.0


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def options(**overrides) -> LoadTestOptions:
    defaults = dict(
        workload="tpcc",
        instances=3,
        workers=2,
        requests=12,
        seed=SEED,
        faults="lock_stall:0.2",
        checkpoint_every=64,
    )
    defaults.update(overrides)
    return LoadTestOptions(**defaults)


def run_one(opts: LoadTestOptions):
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as run_dir:
        return asyncio.run(run_load_test(opts, run_dir))


def run_benchmark():
    throughput = run_one(options())
    events_per_second = throughput.stats["events_per_second"]

    # Pace each instance above its fair share of measured capacity so
    # the pool saturates; tiny queues + shed mode let producers stay on
    # schedule (blocked producers would just slow down instead of
    # overloading).
    per_instance_rate = (
        events_per_second * OVERLOAD_RATE_MULTIPLIER / 3
    )
    overload = run_one(
        options(
            rate_events_per_s=per_instance_rate,
            backpressure="shed",
            queue_limit=8,
            batch=8,
            credit=2,
        )
    )
    return {
        "throughput": throughput,
        "overload": overload,
        "events_per_second": events_per_second,
        "overload_rate_per_instance": per_instance_rate,
    }


@pytest.fixture(scope="module")
def report():
    return run_benchmark()


class TestServeBench:
    def test_sustained_throughput_floor(self, report):
        events_per_second = report["events_per_second"]
        if usable_cpus() < 2:
            pytest.skip(
                f"only {usable_cpus()} usable CPU(s); measured "
                f"{events_per_second:.0f} events/s (floor needs >= 2 CPUs)"
            )
        assert events_per_second >= MIN_EVENTS_PER_SEC, (
            f"sustained {events_per_second:.0f} events/s under the "
            f"{MIN_EVENTS_PER_SEC:.0f} floor"
        )

    def test_overload_latency_is_measured(self, report):
        latency = report["overload"].stats["ack_latency_ms"]
        assert latency is not None
        assert latency["samples"] > 0
        assert 0 <= latency["p50"] <= latency["p95"] <= latency["max"]

    def test_overload_does_not_change_decisions(self, report):
        """Saturation sheds events and stretches latency; it must never
        flip a decision for the requests that did get through.  Shed
        events can drop whole requests from the overloaded run's view,
        so compare on the intersection."""
        by_key = {
            (r["instance"], r["request_id"]): (r["flagged"], r["kind"])
            for r in report["throughput"].fleet.requests
        }
        overload_requests = report["overload"].fleet.requests
        assert overload_requests, "overload run processed nothing"
        for r in overload_requests:
            key = (r["instance"], r["request_id"])
            if key in by_key:
                assert by_key[key] == (r["flagged"], r["kind"])

    def test_throughput_run_was_clean(self, report):
        stats = report["throughput"].stats
        assert stats["events_shed"] == 0
        assert stats["reconnects"] == 0
        assert all(n == 0 for n in stats["worker_restarts"].values())


def main() -> None:
    r = run_benchmark()
    throughput, overload = r["throughput"].stats, r["overload"].stats
    print(
        f"serve tier: 3 instances x 2 workers, tpcc+lock_stall "
        f"({usable_cpus()} usable CPU(s))"
    )
    print(
        f"  sustained   {r['events_per_second']:8.0f} events/s "
        f"over {throughput['streaming_seconds']:.2f}s "
        f"(floor {MIN_EVENTS_PER_SEC:.0f})"
    )
    lat = throughput["ack_latency_ms"]
    if lat:
        print(
            f"  ack latency  p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
            f"max={lat['max']:.2f}ms"
        )
    print(
        f"  overload    paced at {r['overload_rate_per_instance']:.0f} "
        f"events/s/instance ({OVERLOAD_RATE_MULTIPLIER:.0f}x capacity), "
        f"shed {overload['events_shed']} of "
        f"{overload['events_generated']} events"
    )
    olat = overload["ack_latency_ms"]
    if olat:
        print(
            f"  under overload: detection latency p50={olat['p50']:.2f}ms "
            f"p95={olat['p95']:.2f}ms max={olat['max']:.2f}ms"
        )


if __name__ == "__main__":
    main()
