"""Table 1 benchmark: per-sample cost and observer effect measurement.

Paper values at 3 GHz: in-kernel 0.42-0.46 us / 1270-1374 cycles / 649
instructions; interrupt 0.76-0.80 us / 2276-2388 cycles / 724-734
instructions; additional L2 references only measurable under cache
pollution (~13 in-kernel, ~12 interrupt).
"""

import pytest


def test_table1_sampling_costs(run_experiment):
    result = run_experiment("table1", scale=1.0)
    rows = {(r["context"], r["workload"]): r for r in result.rows}

    assert rows[("in_kernel", "mbench_spin")]["time_us"] == pytest.approx(0.42, abs=0.03)
    assert rows[("in_kernel", "mbench_data")]["time_us"] == pytest.approx(0.46, abs=0.03)
    assert rows[("interrupt", "mbench_spin")]["time_us"] == pytest.approx(0.76, abs=0.03)
    assert rows[("interrupt", "mbench_data")]["time_us"] == pytest.approx(0.80, abs=0.03)

    assert rows[("in_kernel", "mbench_spin")]["instructions"] == pytest.approx(649, rel=0.02)
    assert rows[("interrupt", "mbench_data")]["instructions"] == pytest.approx(734, rel=0.02)

    # "N/M" rows: no measurable L2 effect without pollution.
    assert abs(rows[("in_kernel", "mbench_spin")]["l2_refs"]) < 0.5
    assert rows[("in_kernel", "mbench_data")]["l2_refs"] == pytest.approx(13, rel=0.1)
    assert rows[("interrupt", "mbench_data")]["l2_refs"] == pytest.approx(12, rel=0.1)
    print()
    print(result.render())
