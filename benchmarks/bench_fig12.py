"""Figure 12 benchmark: contention-easing reduces high-usage co-execution.

Paper shape: the most intensive contention periods (all four cores
executing at high resource usage simultaneously) are reduced by around 25%
for both TPCH and WeBWorK; the reduction cannot be complete (prediction
errors, and variation stages finer than the scheduling quantum).
"""

import numpy as np


def test_fig12_contention_reduction(run_experiment):
    result = run_experiment("fig12", scale=0.6)
    quad = [r for r in result.rows if r["cores_high"] == "4 cores"]
    assert len(quad) == 2

    reductions = {r["app"]: r["reduction_pct"] for r in quad}
    # Around 25% in the paper; accept a generous band but demand a real
    # reduction for both applications.
    for app, reduction in reductions.items():
        assert reduction > 10.0, (app, reduction)

    # Not eliminated: high-usage co-execution persists under easing.
    for r in quad:
        assert r["contention_easing_pct"] > 0.0
    print()
    print(result.render())
