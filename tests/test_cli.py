"""Tests for the repro-simulate CLI."""

import pytest

from repro.cli import main, parse_sampling, parse_scheduler
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.sampling import SamplingMode
from repro.kernel.scheduler import RoundRobinScheduler


class TestParsers:
    def test_interrupt_spec(self):
        policy = parse_sampling("interrupt:50")
        assert policy.mode is SamplingMode.INTERRUPT
        assert policy.interrupt_period_us == 50.0

    def test_interrupt_default_period(self):
        assert parse_sampling("interrupt").interrupt_period_us == 100.0

    def test_syscall_spec(self):
        policy = parse_sampling("syscall:8,60")
        assert policy.mode is SamplingMode.SYSCALL_TRIGGERED
        assert policy.t_syscall_min_us == 8.0
        assert policy.t_backup_int_us == 60.0

    def test_syscall_missing_args(self):
        with pytest.raises(ValueError):
            parse_sampling("syscall:8")

    def test_ctx_spec(self):
        assert parse_sampling("ctx").mode is SamplingMode.CONTEXT_SWITCH_ONLY

    def test_unknown_spec(self):
        with pytest.raises(ValueError):
            parse_sampling("magic:1")

    def test_scheduler_specs(self):
        assert isinstance(parse_scheduler("roundrobin", 0.1), RoundRobinScheduler)
        contention = parse_scheduler("contention", 0.05)
        assert isinstance(contention, ContentionEasingScheduler)
        assert contention.high_usage_threshold == 0.05
        assert contention.adaptive_threshold
        with pytest.raises(ValueError):
            parse_scheduler("fifo", 0.1)


class TestMain:
    def test_basic_run(self, capsys):
        assert main(["tpcc", "--requests", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "tpcc: 6 requests" in out
        assert "request CPI" in out
        assert "first" in out

    def test_unknown_workload(self, capsys):
        assert main(["nosuchapp"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_serial_machine(self, capsys):
        assert main(["webserver", "--requests", "4", "--cores", "1"]) == 0
        assert "1 core(s)" in capsys.readouterr().out

    def test_custom_sampling(self, capsys):
        assert main(
            ["webserver", "--requests", "4", "--sampling", "syscall:8,60"]
        ) == 0

    def test_contention_scheduler(self, capsys):
        assert main(
            ["tpch", "--requests", "4", "--scheduler", "contention"]
        ) == 0

    def test_export(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(
            ["tpcc", "--requests", "4", "--export", str(out_file)]
        ) == 0
        from repro.kernel.trace_io import load_traces

        assert len(load_traces(str(out_file))) == 4

    def test_classify_prints_cluster_table(self, capsys):
        assert main(
            ["tpcc", "--requests", "8", "--seed", "2", "--classify", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "k-medoids clusters (k=3)" in out
        assert "medoid" in out

    def test_classify_jobs_output_identical(self, capsys):
        argv = ["tpcc", "--requests", "8", "--seed", "2", "--classify", "3"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial_out

    def test_export_jsonl(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(
            ["tpcc", "--requests", "4", "--export", str(out_file)]
        ) == 0
        from repro.kernel.trace_io import load_traces

        assert out_file.read_text().startswith('{"format":"repro-request-traces"')
        assert len(load_traces(str(out_file))) == 4


class TestObservabilityFlags:
    def test_trace_flag_writes_events(self, tmp_path, capsys):
        from repro.obs.trace import load_events

        path = tmp_path / "events.jsonl"
        assert main(
            ["tpcc", "--requests", "5", "--seed", "3", "--trace", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "observability events written" in out
        events, dropped = load_events(str(path))
        assert dropped == 0
        assert events[0].kind == "run_start"
        assert events[-1].kind == "run_end"
        completed = [e for e in events if e.kind == "request_completed"]
        assert len(completed) == 5

    def test_trace_capacity_bounds_file(self, tmp_path, capsys):
        from repro.obs.trace import load_events

        path = tmp_path / "events.jsonl"
        assert main(
            ["tpcc", "--requests", "5", "--trace", str(path),
             "--trace-capacity", "20"]
        ) == 0
        events, dropped = load_events(str(path))
        assert len(events) == 20
        assert dropped > 0

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            ["webserver", "--requests", "4", "--seed", "1",
             "--metrics-out", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["counters"]["requests_completed"] == 4
        assert document["workload"] == "webserver"
        assert document["histograms"]["request_cpi"]["count"] == 4
        assert "simulate" in document["stages"]
        assert "generate" in document["stages"]

    def test_trace_replays_to_reported_cpi_stats(self, tmp_path, capsys):
        """Acceptance: the exported JSONL replays to the CPI statistics the
        run itself printed."""
        import re

        import numpy as np

        from repro.kernel.trace_io import load_traces

        path = tmp_path / "t.jsonl"
        assert main(
            ["tpcc", "--requests", "6", "--seed", "9", "--export", str(path)]
        ) == 0
        out = capsys.readouterr().out
        match = re.search(r"request CPI: mean (\d+\.\d+), p90 (\d+\.\d+)", out)
        assert match is not None
        loaded = load_traces(str(path))
        cpis = np.array([t.overall_cpi() for t in loaded])
        assert float(match.group(1)) == pytest.approx(cpis.mean(), abs=0.005)
        assert float(match.group(2)) == pytest.approx(
            np.percentile(cpis, 90), abs=0.005
        )


class TestFaultAndOnlineFlags:
    def test_faults_flag_injects_and_reports(self, capsys):
        assert main(
            ["tpcc", "--requests", "8", "--seed", "4",
             "--faults", "lock_stall:0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "tpcc: 8 requests" in out

    def test_online_flag_prints_scored_report(self, capsys):
        assert main(
            ["tpcc", "--requests", "8", "--seed", "4",
             "--faults", "slowdown:0.5", "--online"]
        ) == 0
        out = capsys.readouterr().out
        assert "online streaming report" in out
        assert "precision=" in out and "recall=" in out

    def test_online_checkpoint_written(self, tmp_path, capsys):
        import json

        path = tmp_path / "ckpt.json"
        assert main(
            ["tpcc", "--requests", "6", "--seed", "4", "--online",
             "--checkpoint", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["format"] == "repro-online-checkpoint"
        assert document["state"]["last_seq"] >= 0

    def test_checkpoint_without_online_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--checkpoint", "x.json"])
        assert excinfo.value.code == 2
        assert "--checkpoint requires --online" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "spec", ["lock_stall", "gremlins:0.2", "lock_stall:x", "lock_stall:2"]
    )
    def test_malformed_fault_spec_is_argparse_error(self, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--faults", spec])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err


class TestArgumentValidation:
    """Malformed specs exit with an argparse error, not a raw traceback."""

    @pytest.mark.parametrize(
        "spec", ["interrupt:abc", "syscall:8", "syscall:8,abc", "magic:1"]
    )
    def test_malformed_sampling_is_argparse_error(self, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--sampling", spec])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    @pytest.mark.parametrize("requests", ["0", "-3"])
    def test_rejects_non_positive_requests(self, requests, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--requests", requests])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_rejects_non_positive_classify_and_jobs(self, capsys):
        for argv in (
            ["tpcc", "--classify", "0"],
            ["tpcc", "--jobs", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
