"""Tests for cross-platform performance projection."""

import numpy as np
import pytest
from dataclasses import replace

from repro.analysis.projection import project_population, project_trace
from repro.hardware.platform import WOODCREST


class TestProjectTrace:
    def test_identity_projection(self, tpch_run):
        trace = tpch_run.traces[0]
        result = project_trace(trace, WOODCREST, WOODCREST)
        assert result.projected_cycles == pytest.approx(trace.total_cycles)
        assert result.projected_cpi == pytest.approx(trace.overall_cpi())

    def test_faster_memory_reduces_cpi(self, tpch_run):
        trace = tpch_run.traces[0]
        fast_memory = replace(WOODCREST, l2_miss_penalty_cycles=110.0)
        result = project_trace(trace, WOODCREST, fast_memory)
        assert result.projected_cpi < result.observed_cpi

    def test_slower_memory_increases_cpi(self, tpch_run):
        trace = tpch_run.traces[0]
        slow_memory = replace(WOODCREST, l2_miss_penalty_cycles=440.0)
        result = project_trace(trace, WOODCREST, slow_memory)
        assert result.projected_cpi > result.observed_cpi

    def test_memory_bound_app_more_sensitive(self, tpch_run, web_run):
        """TPCH (miss-heavy) must respond more strongly to memory latency
        than compute-heavy requests — the point of per-period projection."""
        fast_memory = replace(WOODCREST, l2_miss_penalty_cycles=110.0)
        tpch = project_trace(tpch_run.traces[0], WOODCREST, fast_memory)
        web = project_trace(web_run.traces[0], WOODCREST, fast_memory)
        tpch_gain = 1 - tpch.projected_cpi / tpch.observed_cpi
        web_gain = 1 - web.projected_cpi / web.observed_cpi
        assert tpch_gain > web_gain

    def test_frequency_affects_time_not_cycles(self, web_run):
        trace = web_run.traces[0]
        fast_clock = replace(WOODCREST, frequency_ghz=6.0)
        result = project_trace(trace, WOODCREST, fast_clock)
        assert result.projected_cycles == pytest.approx(trace.total_cycles)
        assert result.projected_cpu_time_us == pytest.approx(
            trace.cpu_time_us() / 2.0
        )


class TestProjectPopulation:
    def test_shapes(self, web_run):
        cpis, times = project_population(web_run.traces, WOODCREST, WOODCREST)
        assert cpis.shape == times.shape == (len(web_run.traces),)
        assert np.all(cpis > 0) and np.all(times > 0)
