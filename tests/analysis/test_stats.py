"""Tests for weighted statistics primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    coefficient_of_variation,
    histogram,
    root_mean_square_error,
    weighted_mean,
    weighted_percentile,
)


def finite_floats(lo, hi):
    return st.floats(lo, hi, allow_nan=False, allow_infinity=False)


class TestWeightedMean:
    def test_uniform_weights_equal_plain_mean(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert weighted_mean(values) == pytest.approx(2.5)

    def test_weights_shift_mean(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_zero_weight_value_ignored(self):
        assert weighted_mean([1.0, 100.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [1.0])

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [-1.0])

    def test_all_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])

    def test_error_messages_name_the_problem(self):
        """Empty input and zero total weight fail with a clear message,
        not a numpy warning plus a NaN result."""
        with pytest.raises(ValueError, match="empty input"):
            weighted_mean([])
        with pytest.raises(ValueError, match="total weight is zero"):
            weighted_mean([1.0, 2.0], [0.0, 0.0])
        with pytest.raises(ValueError, match="empty input"):
            weighted_percentile([], 50)
        with pytest.raises(ValueError, match="total weight is zero"):
            weighted_percentile([1.0], 50, [0.0])

    def test_nan_values_raise(self):
        with pytest.raises(ValueError, match="NaN"):
            weighted_mean([1.0, float("nan")])
        with pytest.raises(ValueError, match="NaN"):
            weighted_percentile([float("nan")], 50)

    def test_nan_or_inf_weights_raise(self):
        with pytest.raises(ValueError, match="finite"):
            weighted_mean([1.0, 2.0], [1.0, float("nan")])
        with pytest.raises(ValueError, match="finite"):
            weighted_mean([1.0, 2.0], [1.0, float("inf")])
        with pytest.raises(ValueError, match="finite"):
            weighted_percentile([1.0, 2.0], 50, [float("inf"), 1.0])

    def test_never_returns_nan(self):
        """The hardened validation means any value that comes back is a
        real number (the LatencyStore percentile columns rely on this)."""
        result = weighted_mean([1.0, 2.0], [0.0, 3.0])
        assert np.isfinite(result)
        assert weighted_percentile([5.0], 99.0, [2.0]) == 5.0

    @given(
        st.lists(finite_floats(-1e6, 1e6), min_size=1, max_size=30),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_mean_within_value_range(self, values, data):
        weights = data.draw(
            st.lists(
                finite_floats(0.01, 100.0),
                min_size=len(values),
                max_size=len(values),
            )
        )
        mean = weighted_mean(values, weights)
        assert min(values) - 1e-6 <= mean <= max(values) + 1e-6


class TestCoefficientOfVariation:
    def test_constant_series_is_zero(self):
        assert coefficient_of_variation([2.0] * 5) == pytest.approx(0.0)

    def test_matches_equation_one(self):
        # Hand-computed Equation 1 example.
        values = np.array([1.0, 3.0])
        weights = np.array([1.0, 1.0])
        # xbar = 2, variance = (1 + 1)/2 = 1, cov = 1/2.
        assert coefficient_of_variation(values, weights) == pytest.approx(0.5)

    def test_explicit_overall_changes_result(self):
        values = [1.0, 3.0]
        default = coefficient_of_variation(values)
        shifted = coefficient_of_variation(values, overall=4.0)
        assert default != shifted

    def test_longer_periods_weigh_more(self):
        values = [1.0, 10.0]
        light = coefficient_of_variation(values, [10.0, 0.1])
        heavy = coefficient_of_variation(values, [0.1, 10.0])
        assert light != heavy

    def test_zero_overall_raises(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([0.0, 0.0])

    @given(
        st.lists(finite_floats(0.5, 100.0), min_size=2, max_size=20),
        finite_floats(1.1, 10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scale_invariance(self, values, factor):
        """CoV is invariant under scaling all values by a constant."""
        base = coefficient_of_variation(values)
        scaled = coefficient_of_variation([v * factor for v in values])
        assert scaled == pytest.approx(base, rel=1e-9)


class TestWeightedPercentile:
    def test_median_of_uniform(self):
        assert weighted_percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        values = [3.0, 1.0, 2.0]
        assert weighted_percentile(values, 0) == 1.0
        assert weighted_percentile(values, 100) == 3.0

    def test_weights_shift_percentile(self):
        values = [1.0, 2.0]
        assert weighted_percentile(values, 60, [9.0, 1.0]) == 1.0
        assert weighted_percentile(values, 60, [1.0, 9.0]) == 2.0

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            weighted_percentile([1.0], 101)

    @given(
        st.lists(finite_floats(-100, 100), min_size=1, max_size=30),
        finite_floats(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_result_is_a_sample(self, values, q):
        assert weighted_percentile(values, q) in values

    @given(st.lists(finite_floats(-100, 100), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_q(self, values):
        qs = [0, 25, 50, 75, 100]
        results = [weighted_percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestRmse:
    def test_perfect_prediction(self):
        assert root_mean_square_error([1, 2], [1, 2]) == 0.0

    def test_known_value(self):
        # errors 1 and 3, weights 1: sqrt((1+9)/2)
        assert root_mean_square_error([2, 5], [1, 2]) == pytest.approx(
            np.sqrt(5.0)
        )

    def test_weights_match_equation_seven(self):
        actual = np.array([1.0, 2.0])
        predicted = np.array([0.0, 2.0])
        # Only the first sample errs (error 1); weighted by 3 of total 4.
        rmse = root_mean_square_error(actual, predicted, weights=[3.0, 1.0])
        assert rmse == pytest.approx(np.sqrt(0.75))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            root_mean_square_error([1.0], [1.0, 2.0])


class TestHistogram:
    def test_probabilities_sum_to_one(self):
        h = histogram([1.0, 2.0, 3.0], 0.0, 4.0, 0.5)
        assert h.probabilities.sum() == pytest.approx(1.0)

    def test_out_of_range_clamped(self):
        h = histogram([-10.0, 10.0], 0.0, 1.0, 0.5)
        assert h.probabilities.sum() == pytest.approx(1.0)
        assert h.probabilities[0] == pytest.approx(0.5)
        assert h.probabilities[-1] == pytest.approx(0.5)

    def test_bin_width_property(self):
        h = histogram([0.1], 0.0, 1.0, 0.25)
        assert h.bin_width == pytest.approx(0.25)

    def test_mode_bin(self):
        h = histogram([1.1, 1.2, 1.15, 3.0], 1.0, 4.0, 0.5)
        assert 1.0 <= h.mode_bin() <= 1.5

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            histogram([1.0], 2.0, 1.0, 0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram([], 0.0, 1.0, 0.1)
