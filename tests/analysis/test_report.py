"""Tests for ASCII report rendering."""

import pytest

from repro.analysis.report import (
    format_bar_chart,
    format_metrics,
    format_table,
    format_value,
)


class TestFormatValue:
    def test_int_passthrough(self):
        assert format_value(42) == "42"

    def test_float_trims_zeros(self):
        assert format_value(1.5) == "1.5"

    def test_small_float_scientific(self):
        assert "e" in format_value(0.00012) or "0.00012" in format_value(0.00012)

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert "a" in text and "b" in text
        assert "x" in text and "2" in text

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text
        assert "a" not in text.splitlines()[0]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_title_included(self):
        text = format_table([{"a": 1}], title="My Table")
        assert text.startswith("My Table")

    def test_missing_cell_rendered_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_alignment_consistent_width(self):
        text = format_table([{"col": "short"}, {"col": "much longer value"}])
        lines = text.splitlines()
        assert len(lines[0]) <= len(lines[1])


class TestFormatMetrics:
    def test_renders_registry_snapshot(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        registry.gauge("wall_cycles").set(123.0)
        registry.histogram("cpi").observe(2.5, weight=10.0)
        text = format_metrics(registry.snapshot())
        assert "requests" in text and "7" in text
        assert "wall_cycles" in text
        assert "cpi" in text and "distributions" in text

    def test_empty_snapshot(self):
        assert "(no metrics)" in format_metrics({})


class TestFormatBarChart:
    def test_bar_lengths_proportional(self):
        text = format_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        line_a, line_b = text.splitlines()
        assert line_b.count("#") == 2 * line_a.count("#")

    def test_mismatched_inputs_raise(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(empty chart)" in format_bar_chart([], [])

    def test_zero_values_no_crash(self):
        text = format_bar_chart(["a"], [0.0])
        assert "a" in text


class TestFormatSeriesPlot:
    def test_renders_series_and_legend(self):
        from repro.analysis.report import format_series_plot

        text = format_series_plot(
            {"a": [0.0, 1.0, 2.0], "b": [2.0, 1.0, 0.0]},
            width=20,
            height=5,
            title="demo",
        )
        assert "demo" in text
        assert "* a" in text and "o b" in text
        assert "2" in text and "0" in text  # axis extremes

    def test_empty(self):
        from repro.analysis.report import format_series_plot

        assert "(empty plot)" in format_series_plot({})
        assert "(empty plot)" in format_series_plot({"a": []})

    def test_constant_series_no_crash(self):
        from repro.analysis.report import format_series_plot

        text = format_series_plot({"flat": [3.0, 3.0, 3.0]}, width=10, height=4)
        assert "flat" in text

    def test_x_labels(self):
        from repro.analysis.report import format_series_plot

        text = format_series_plot(
            {"a": [0, 1]}, width=20, height=3, x_labels=["lo", "hi"]
        )
        assert "lo" in text and "hi" in text

    def test_single_point_series(self):
        from repro.analysis.report import format_series_plot

        text = format_series_plot({"a": [5.0]}, width=8, height=3)
        assert "a" in text
