"""The package's public API surface: everything advertised must work."""

import importlib

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_documented_quickstart_runs(self):
        """The module docstring's quickstart snippet must stay true."""
        result = repro.run_workload(
            "tpcc",
            num_requests=5,
            sampling=repro.SamplingPolicy.interrupt(100.0),
        )
        for trace in result.traces[:3]:
            assert trace.spec.kind
            assert trace.overall_cpi() > 0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.hardware",
            "repro.kernel",
            "repro.workloads",
            "repro.faults",
            "repro.core",
            "repro.obs",
            "repro.analysis",
            "repro.experiments",
            "repro.sweep",
            "repro.cli",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    def test_subpackage_alls_resolve(self):
        for name in (
            "repro.hardware",
            "repro.kernel",
            "repro.workloads",
            "repro.faults",
            "repro.core",
            "repro.obs",
            "repro.sweep",
        ):
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), (name, symbol)

    def test_every_public_callable_has_docstring(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
