"""Shared fixtures: small cached simulation runs reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.platform import serial_machine
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload


def pytest_addoption(parser):
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run tests marked @pytest.mark.slow (excluded from tier-1)",
    )


def pytest_collection_modifyitems(config, items):
    """Skip slow-marked tests unless --runslow: tier-1 must stay fast."""
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def run_small(app, num_requests=20, seed=5, cores=4, concurrency=None, **overrides):
    workload = make_workload(app)
    if cores == 1:
        machine = serial_machine()
        concurrency = concurrency or 1
    else:
        from repro.hardware.platform import WOODCREST

        machine = WOODCREST
        concurrency = concurrency or 8
    config = SimConfig(
        machine=machine,
        sampling=overrides.pop(
            "sampling", SamplingPolicy.interrupt(workload.sampling_period_us)
        ),
        num_requests=num_requests,
        concurrency=concurrency,
        seed=seed,
        **overrides,
    )
    return ServerSimulator(workload, config).run()


@pytest.fixture(scope="session")
def web_run():
    """A small concurrent web-server run shared by many tests."""
    return run_small("webserver", num_requests=40, seed=5)


@pytest.fixture(scope="session")
def tpcc_run():
    return run_small("tpcc", num_requests=40, seed=6)


@pytest.fixture(scope="session")
def tpch_run():
    return run_small("tpch", num_requests=10, seed=7)


@pytest.fixture(scope="session")
def web_serial_run():
    return run_small("webserver", num_requests=15, seed=8, cores=1)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
