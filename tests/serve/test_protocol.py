"""Wire-protocol tests: framing, loud malformed-input errors, handshake."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.obs.trace import ObsEvent
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_FORMAT,
    PROTOCOL_VERSION,
    FrameStream,
    PeerClosedError,
    ProtocolError,
    check_version,
    decode_events,
    decode_payload,
    encode_frame,
    events_frame,
    hello,
)


def reader_for(data: bytes) -> FrameStream:
    """A FrameStream reading from an in-memory byte buffer (no writer).

    Must be called inside a running event loop (StreamReader binds one).
    """
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return FrameStream(reader, writer=None)


def read_one(data: bytes):
    async def scenario():
        return await reader_for(data).read()

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"type": "credit", "n": 1})
        assert read_one(frame) == {"type": "credit", "n": 1}

    def test_payload_is_canonical_json(self):
        frame = encode_frame({"type": "credit", "n": 1, "ack_seq": 7})
        body = frame[4:]
        assert body == json.dumps(
            {"type": "credit", "n": 1, "ack_seq": 7},
            sort_keys=True,
            separators=(",", ":"),
        ).encode()

    def test_length_prefix_is_big_endian(self):
        frame = encode_frame({"type": "end"})
        (length,) = struct.unpack("!I", frame[:4])
        assert length == len(frame) - 4

    def test_encode_unknown_type_raises(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            encode_frame({"type": "gossip"})
        with pytest.raises(ProtocolError, match="unknown frame type"):
            encode_frame({})

    def test_clean_eof_returns_none(self):
        assert read_one(b"") is None

    def test_multiple_frames_in_sequence(self):
        data = encode_frame({"type": "end"}) + encode_frame({"type": "end_ack"})

        async def scenario():
            stream = reader_for(data)
            first = await stream.read()
            second = await stream.read()
            third = await stream.read()
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"type": "end"}
        assert second == {"type": "end_ack"}
        assert third is None


class TestMalformedInput:
    def test_truncated_length_prefix(self):
        with pytest.raises(PeerClosedError, match="frame 0: truncated length"):
            read_one(b"\x00\x00")

    def test_truncated_payload(self):
        frame = encode_frame({"type": "end"})
        with pytest.raises(PeerClosedError, match="frame 0: truncated payload"):
            read_one(frame[:-3])

    def test_oversized_declared_length(self):
        prefix = struct.pack("!I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="MAX_FRAME_BYTES"):
            read_one(prefix)

    def test_malformed_json_payload(self):
        body = b"{not json"
        with pytest.raises(ProtocolError, match="frame 0: malformed"):
            read_one(struct.pack("!I", len(body)) + body)

    def test_non_object_payload(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="not an object"):
            read_one(struct.pack("!I", len(body)) + body)

    def test_unknown_frame_type(self):
        body = json.dumps({"type": "gossip"}).encode()
        with pytest.raises(ProtocolError, match="unknown frame type 'gossip'"):
            read_one(struct.pack("!I", len(body)) + body)

    def test_error_names_frame_position(self):
        data = encode_frame({"type": "end"}) + b"\x00\x00\x00\x05junk"

        async def scenario():
            stream = reader_for(data)
            await stream.read()
            await stream.read()

        with pytest.raises(ProtocolError, match="frame 1"):
            asyncio.run(scenario())

    def test_peer_closed_is_both_protocol_and_connection_error(self):
        assert issubclass(PeerClosedError, ProtocolError)
        assert issubclass(PeerClosedError, ConnectionError)

    def test_decode_payload_where_prefix(self):
        with pytest.raises(ProtocolError, match="frame 42"):
            decode_payload(b"!!", where="frame 42")


class TestExpect:
    def test_expect_surfaces_peer_error_frame(self):
        data = encode_frame({"type": "error", "message": "you broke it"})

        async def scenario():
            await reader_for(data).expect("hello_ack")

        with pytest.raises(ProtocolError, match="you broke it"):
            asyncio.run(scenario())

    def test_expect_rejects_unexpected_type(self):
        data = encode_frame({"type": "credit", "n": 1})

        async def scenario():
            await reader_for(data).expect("end_ack")

        with pytest.raises(ProtocolError, match="expected end_ack, got 'credit'"):
            asyncio.run(scenario())

    def test_expect_eof_is_peer_closed(self):
        async def scenario():
            await reader_for(b"").expect("credit")

        with pytest.raises(PeerClosedError, match="connection closed"):
            asyncio.run(scenario())


class TestHandshake:
    def test_hello_carries_format_and_version(self):
        payload = hello("instance", instance=3)
        assert payload["format"] == PROTOCOL_FORMAT
        assert payload["version"] == PROTOCOL_VERSION
        assert payload["role"] == "instance"
        assert payload["instance"] == 3

    def test_check_version_accepts_current(self):
        check_version(hello("control"))

    def test_check_version_rejects_foreign_format(self):
        with pytest.raises(ProtocolError, match="foreign protocol"):
            check_version({"format": "other-proto", "version": 1})

    def test_check_version_rejects_version_skew(self):
        with pytest.raises(ProtocolError, match="version 2"):
            check_version({"format": PROTOCOL_FORMAT, "version": 2})


class TestEventFrames:
    def events(self):
        return [
            ObsEvent(seq=0, cycle=0.0, kind="run_start", request_id=None,
                     data={"workload": "tpcc", "seed": 1}),
            ObsEvent(seq=1, cycle=5.0, kind="request_admitted", request_id=0,
                     data={"kind": "new_order"}),
        ]

    def test_round_trip(self):
        frame = events_frame([e.to_dict() for e in self.events()])
        decoded = decode_events(frame)
        assert [e.to_dict() for e in decoded] == [
            e.to_dict() for e in self.events()
        ]

    def test_missing_events_key_raises(self):
        with pytest.raises(ProtocolError, match="events"):
            decode_events({"type": "events"})

    def test_bad_event_names_index(self):
        frame = events_frame([e.to_dict() for e in self.events()])
        frame["events"][1] = {"bogus": True}
        with pytest.raises(ProtocolError, match="event 1"):
            decode_events(frame)
