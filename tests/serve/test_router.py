"""Consistent-hash ring properties (hypothesis) plus pinned hashes.

The serve tier's failover story leans on three routing invariants:
stable assignment across ring instantiations (a restarted process must
route identically), same request id → same shard (per-request streaming
state lives on exactly one worker), and minimal movement when the pool
grows or shrinks (only the affected shard's keys move).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.router import (
    DEFAULT_REPLICAS,
    HashRing,
    request_key,
    stable_hash,
)

shard_names = st.lists(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=8
    ),
    min_size=1,
    max_size=6,
    unique=True,
)
keys = st.lists(st.text(min_size=0, max_size=20), min_size=1, max_size=50)


class TestStableHash:
    def test_pinned_values(self):
        # Frozen: a change here silently remaps every deployed fleet's
        # request routing (and breaks failover replay determinism).
        assert stable_hash("w0#0") == 11550907120429369735
        assert stable_hash("alpha") == 5982700193828047002
        assert stable_hash("0/0") == 3153696582655363665
        assert stable_hash("1/17") == 17203642299269480263

    def test_request_key_folds_instance(self):
        assert request_key(0, 17) == "0/17"
        assert request_key(1, 17) == "1/17"
        assert request_key(0, 17) != request_key(1, 17)


class TestRingBasics:
    def test_empty_ring_lookup_raises(self):
        with pytest.raises(ValueError, match="no shards"):
            HashRing().lookup("anything")

    def test_duplicate_add_raises(self):
        ring = HashRing(["w0"])
        with pytest.raises(ValueError, match="already on the ring"):
            ring.add_shard("w0")

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError, match="not on the ring"):
            HashRing(["w0"]).remove_shard("w1")

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)

    def test_shards_sorted(self):
        assert HashRing(["b", "a", "c"]).shards == ["a", "b", "c"]
        assert len(HashRing(["b", "a"])) == 2

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert {ring.lookup(f"key{i}") for i in range(100)} == {"only"}

    def test_balance_is_reasonable(self):
        # 64 virtual points per shard keep the worst shard under ~2x the
        # mean for a 4-shard pool (the docstring's sizing claim).
        ring = HashRing([f"w{i}" for i in range(4)])
        assignment = ring.assignment(f"key{i}" for i in range(4000))
        loads = [list(assignment.values()).count(s) for s in ring.shards]
        assert min(loads) > 0
        assert max(loads) < 2.0 * (4000 / 4)


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, request_ids=st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30
))
def test_same_request_id_same_shard(shards, request_ids):
    """Every event of a request routes to one shard, consistently."""
    ring = HashRing(shards)
    for request_id in request_ids:
        first = ring.shard_for(0, request_id)
        assert all(ring.shard_for(0, request_id) == first for _ in range(3))
        assert first in shards


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, sample=keys)
def test_assignment_stable_across_instantiations(shards, sample):
    """Two independently built rings route identically (and insertion
    order does not matter) — restarted supervisors and workers must
    agree on routing without coordination."""
    ring_a = HashRing(shards)
    ring_b = HashRing(list(reversed(shards)))
    assert ring_a.assignment(sample) == ring_b.assignment(sample)


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, sample=keys)
def test_remove_moves_only_the_removed_shards_keys(shards, sample):
    """Removing a shard reassigns exactly the keys it owned."""
    if len(shards) < 2:
        return
    ring = HashRing(shards)
    before = ring.assignment(sample)
    victim = shards[0]
    ring.remove_shard(victim)
    after = ring.assignment(sample)
    for key in sample:
        if before[key] != victim:
            assert after[key] == before[key]
        else:
            assert after[key] != victim


@settings(max_examples=50, deadline=None)
@given(shards=shard_names, new_shard=st.text(
    alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ", min_size=1, max_size=8
), sample=keys)
def test_add_steals_only_for_the_new_shard(shards, new_shard, sample):
    """Adding a shard moves keys only *to* the new shard, never between
    existing shards — the minimal-movement half of the contract."""
    ring = HashRing(shards)
    before = ring.assignment(sample)
    ring.add_shard(new_shard)
    after = ring.assignment(sample)
    for key in sample:
        assert after[key] in (before[key], new_shard)


@settings(max_examples=30, deadline=None)
@given(shards=shard_names, sample=keys)
def test_add_then_remove_round_trips(shards, sample):
    """add_shard and remove_shard are exact inverses on the assignment."""
    ring = HashRing(shards)
    before = ring.assignment(sample)
    ring.add_shard("TRANSIENT")
    ring.remove_shard("TRANSIENT")
    assert ring.assignment(sample) == before


def test_moved_fraction_is_small_at_scale():
    """Growing 4 → 5 shards moves roughly 1/5 of keys (consistent
    hashing's raison d'être); a modulo router would move ~4/5."""
    sample = [f"key{i}" for i in range(5000)]
    ring = HashRing([f"w{i}" for i in range(4)])
    before = ring.assignment(sample)
    ring.add_shard("w4")
    after = ring.assignment(sample)
    moved = sum(1 for key in sample if before[key] != after[key])
    assert moved / len(sample) < 0.35  # ideal 0.20, generous margin
