"""Fleet aggregation: merge math, determinism, loud validation."""

from __future__ import annotations

import json

import pytest

from repro.serve.aggregator import (
    FLEET_REPORT_FORMAT,
    WORKER_REPORT_FORMAT,
    WORKER_REPORT_VERSION,
    FleetReport,
    load_worker_report,
    merge_worker_reports,
    validate_worker_report,
)


def record(request_id, *, kind="query", flagged=False, injected=None,
           committed=None, correct=None):
    """One decision record in the pipeline's canonical shape."""
    return {
        "request_id": request_id,
        "kind": kind,
        "flagged": flagged,
        "injected_fault": injected,
        "time_to_detect_instructions": 500.0 if flagged else None,
        "committed_label": committed,
        "label_correct": correct,
        "commit_instructions": 300.0 if committed else None,
    }


def worker_report(shard, instances):
    return {
        "format": WORKER_REPORT_FORMAT,
        "version": WORKER_REPORT_VERSION,
        "shard": shard,
        "instances": instances,
    }


def instance_view(records, *, workload="tpcc", seed=0, events=100,
                  periods=50, windows=10, class_errors=None):
    return {
        "workload": workload,
        "seed": seed,
        "events_seen": events,
        "periods": periods,
        "windows": windows,
        "last_seq": events - 1,
        "records": records,
        "class_errors": class_errors or {},
    }


def two_worker_fixture():
    """Workers w0/w1 sharing instances 0 and 1."""
    w0 = worker_report("w0", {
        "0": instance_view(
            [record(0), record(2, flagged=True, injected="lock_stall")],
            class_errors={"query": {"n": 2, "abs_sum": 1.0, "sq_sum": 1.0,
                                    "weight": 2.0}},
        ),
        "1": instance_view([record(1, committed="query", correct=True)],
                           seed=1000),
    })
    w1 = worker_report("w1", {
        "0": instance_view([record(1), record(3, flagged=True)]),
        "1": instance_view(
            [record(0, committed="query", correct=False)],
            seed=1000,
            class_errors={"query": {"n": 1, "abs_sum": 0.5, "sq_sum": 0.25,
                                    "weight": 1.0}},
        ),
    })
    return [w0, w1]


class TestValidation:
    def test_foreign_document_rejected(self):
        with pytest.raises(ValueError, match="not a repro serve worker report"):
            validate_worker_report({"format": "something-else"})

    def test_version_skew_rejected(self):
        document = worker_report("w0", {})
        document["version"] = 99
        with pytest.raises(ValueError, match="version 99"):
            validate_worker_report(document)

    def test_missing_shard_rejected(self):
        document = worker_report("w0", {})
        del document["shard"]
        with pytest.raises(ValueError, match="missing shard"):
            validate_worker_report(document)

    def test_load_malformed_file_names_path(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text("{truncated")
        with pytest.raises(ValueError, match="report.json.*malformed"):
            load_worker_report(str(path))

    def test_load_round_trips(self, tmp_path):
        path = tmp_path / "report.json"
        document = worker_report("w0", {})
        path.write_text(json.dumps(document))
        assert load_worker_report(str(path)) == document


class TestMerge:
    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError, match="no worker reports"):
            merge_worker_reports([])

    def test_duplicate_shard_rejected(self):
        document = worker_report("w0", {})
        with pytest.raises(ValueError, match="duplicate worker report"):
            merge_worker_reports([document, dict(document)])

    def test_summary_counts(self):
        fleet = merge_worker_reports(two_worker_fixture())
        s = fleet.summary
        assert s["workers"] == 2
        assert s["instances"] == 2
        assert s["population"] == 6
        assert s["injected"] == 1
        assert s["flagged"] == 2
        assert s["precision"] == 0.5  # 1 true positive of 2 flagged
        assert s["recall"] == 1.0
        assert s["committed"] == 2
        assert s["label_accuracy"] == 0.5
        assert s["events"] == 400
        assert s["periods"] == 200
        assert s["windows"] == 40

    def test_class_error_sums(self):
        fleet = merge_worker_reports(two_worker_fixture())
        (row,) = fleet.per_class
        assert row["class"] == "query"
        assert row["prediction_mean_abs_error"] == pytest.approx(1.5 / 3.0)
        assert row["prediction_rms_error"] == pytest.approx(
            (1.25 / 3.0) ** 0.5
        )

    def test_per_instance_rows_sorted_and_merged(self):
        fleet = merge_worker_reports(two_worker_fixture())
        assert [row["instance"] for row in fleet.per_instance] == [0, 1]
        instance0 = fleet.per_instance[0]
        assert instance0["requests"] == 4  # 2 on each worker
        assert instance0["flagged"] == 2
        assert instance0["injected"] == 1

    def test_per_worker_rows(self):
        fleet = merge_worker_reports(two_worker_fixture())
        assert [row["shard"] for row in fleet.per_worker] == ["w0", "w1"]
        assert all(row["instances"] == 2 for row in fleet.per_worker)

    def test_requests_tagged_with_instance_and_shard(self):
        fleet = merge_worker_reports(two_worker_fixture())
        assert all("instance" in r and "shard" in r for r in fleet.requests)

    def test_merge_is_input_order_independent(self):
        documents = two_worker_fixture()
        forward = merge_worker_reports(documents).to_json()
        backward = merge_worker_reports(list(reversed(documents))).to_json()
        assert forward == backward

    def test_to_json_is_canonical(self):
        text = merge_worker_reports(two_worker_fixture()).to_json()
        payload = json.loads(text)
        assert payload["format"] == FLEET_REPORT_FORMAT
        # Canonical: re-encoding with the same convention is a no-op.
        assert text == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def test_render_mentions_the_headline_numbers(self):
        rendered = merge_worker_reports(two_worker_fixture()).render()
        assert "2 workers" in rendered
        assert "2 instances" in rendered
        assert "per-worker shard view" in rendered
        assert "per-instance fleet view" in rendered

    def test_render_handles_empty_sections(self):
        fleet = merge_worker_reports([worker_report("w0", {})])
        rendered = fleet.render()
        assert "1 workers" in rendered
        assert isinstance(FleetReport().summary, dict)
