"""Kill/failover differential: SIGKILL must not change any decision.

The acceptance surface for the serve tier: a worker SIGKILLed mid-stream
is restarted by the supervisor, restores from its last atomic checkpoint,
and has the unacked tail replayed by the instance clients.  Every
decision artifact — per-instance decision logs, per-worker reports, the
merged fleet report — must come out byte-identical to an uninterrupted
run at the same seeds.
"""

from __future__ import annotations

import asyncio
import os

from repro.serve.service import (
    KillSpec,
    LoadTestOptions,
    run_load_test,
    shard_name,
)

OPTIONS = dict(
    workload="mbench_spin",
    instances=3,
    workers=2,
    requests=5,
    seed=11,
    # Small interval so the kill lands after a mid-stream checkpoint
    # with plenty of unacked tail behind it.
    checkpoint_every=8,
    decisions=True,
)


def run(tmp_path, name, **overrides):
    options = LoadTestOptions(**{**OPTIONS, **overrides})
    run_dir = str(tmp_path / name)
    return run_load_test(options, run_dir), run_dir


def decision_logs(run_dir):
    logs = {}
    decisions_root = os.path.join(run_dir, "decisions")
    for shard in sorted(os.listdir(decisions_root)):
        for name in sorted(os.listdir(os.path.join(decisions_root, shard))):
            path = os.path.join(decisions_root, shard, name)
            with open(path) as fh:
                logs[f"{shard}/{name}"] = fh.read()
    return logs


def test_sigkilled_worker_resumes_byte_identically(tmp_path):
    async def scenario():
        baseline, baseline_dir = run(tmp_path, "baseline")
        killed, killed_dir = run(
            tmp_path, "killed", kill=KillSpec(shard=shard_name(0))
        )
        return (await baseline, baseline_dir), (await killed, killed_dir)

    (baseline, baseline_dir), (killed, killed_dir) = asyncio.run(scenario())

    # The kill actually happened and failover actually ran.
    assert killed.stats["worker_restarts"].get("w0", 0) >= 1
    assert killed.stats["reconnects"] >= 1
    assert all(n == 0 for n in baseline.stats["worker_restarts"].values())

    # Decision streams: byte-identical files, shard by shard.
    assert decision_logs(baseline_dir) == decision_logs(killed_dir)

    # Worker reports and the merged fleet view: byte-identical JSON.
    assert [r for r in killed.worker_reports] == [
        r for r in baseline.worker_reports
    ]
    assert killed.fleet.to_json() == baseline.fleet.to_json()


def test_attribution_decisions_survive_sigkill_byte_identically(tmp_path):
    """Failover with cause attribution on: the attributor's centroid state
    rides the checkpoint, so attribution decisions (and the fleet-level
    attribution scoring) must be byte-identical to an unkilled run."""
    overrides = dict(
        faults="lock_stall:0.3+gc_pause:0.2",
        attribute=True,
        train=6,
    )

    async def scenario():
        baseline, baseline_dir = run(tmp_path, "baseline", **overrides)
        killed, killed_dir = run(
            tmp_path, "killed", kill=KillSpec(shard=shard_name(0)),
            **overrides,
        )
        return (await baseline, baseline_dir), (await killed, killed_dir)

    (baseline, baseline_dir), (killed, killed_dir) = asyncio.run(scenario())

    assert killed.stats["worker_restarts"].get("w0", 0) >= 1
    # Attribution actually ran: every decision record carries the field
    # and the fleet report grew its scoring section.
    assert baseline.fleet.attribution is not None
    assert all(
        "attributed_cause" in record for record in baseline.fleet.requests
    )

    assert decision_logs(baseline_dir) == decision_logs(killed_dir)
    assert killed.worker_reports == baseline.worker_reports
    assert killed.fleet.to_json() == baseline.fleet.to_json()


def test_killing_the_other_worker_is_also_clean(tmp_path):
    async def scenario():
        baseline, _ = run(tmp_path, "baseline")
        killed, _ = run(
            tmp_path, "killed", kill=KillSpec(shard=shard_name(1))
        )
        return await baseline, await killed

    baseline, killed = asyncio.run(scenario())
    assert killed.stats["worker_restarts"].get("w1", 0) >= 1
    assert killed.fleet.to_json() == baseline.fleet.to_json()
