"""End-to-end serve-tier tests: in-process workers, subprocess pool, CLI.

Kept deliberately small (mbench_spin, single-digit request counts) so the
full service stack — simulator → instance client → sharded workers →
aggregation — stays inside the tier-1 time budget.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve.aggregator import merge_worker_reports
from repro.serve.instance import (
    InstanceClient,
    InstanceSpec,
    StreamStats,
    generate_instance_events,
)
from repro.serve.protocol import FrameStream, ProtocolError, hello
from repro.serve.router import HashRing
from repro.serve.service import (
    LoadTestOptions,
    run_load_test,
    save_worker_reports,
    shard_name,
)
from repro.serve.worker import ShardWorker, WorkerConfig


def make_worker(tmp_path, shard="w0", **overrides) -> ShardWorker:
    overrides.setdefault("checkpoint_every", 8)
    return ShardWorker(
        WorkerConfig(
            shard=shard,
            socket_path=str(tmp_path / f"{shard}.sock"),
            checkpoint_dir=str(tmp_path / "ckpt" / shard),
            **overrides,
        )
    )


async def stream_instance_to(worker: ShardWorker, spec, events, **kwargs):
    """Run one in-process worker and stream one instance's events at it."""
    server = asyncio.create_task(worker.serve_until_stopped())
    try:
        while not os.path.exists(worker.config.socket_path):
            await asyncio.sleep(0.005)
        ring = HashRing([worker.config.shard])
        client = InstanceClient(
            spec,
            events,
            ring,
            {worker.config.shard: worker.config.socket_path},
            **kwargs,
        )
        return await client.run()
    finally:
        worker.request_stop()
        await server


class TestInstanceEvents:
    def test_generation_is_deterministic(self):
        spec = InstanceSpec(instance=0, workload="mbench_spin", requests=4)
        first = [e.to_dict() for e in generate_instance_events(spec)]
        second = [e.to_dict() for e in generate_instance_events(spec)]
        assert first == second
        assert any(e["kind"] == "request_completed" for e in first)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="requests"):
            InstanceSpec(instance=0, workload="tpcc", requests=0)
        with pytest.raises(ValueError, match="concurrency"):
            InstanceSpec(instance=0, workload="tpcc", concurrency=0)

    def test_stream_stats_merge(self):
        a = StreamStats(events_sent=2, reconnects=1, ack_latencies=[0.1])
        a.merge(StreamStats(events_sent=3, events_shed=4, ack_latencies=[0.2]))
        assert a.events_sent == 5
        assert a.events_shed == 4
        assert a.reconnects == 1
        assert a.ack_latencies == [0.1, 0.2]


class TestShardWorker:
    def test_streams_and_reports(self, tmp_path):
        spec = InstanceSpec(instance=0, workload="mbench_spin", requests=4)
        events = generate_instance_events(spec)
        worker = make_worker(tmp_path)
        stats = asyncio.run(stream_instance_to(worker, spec, events))
        assert stats.events_sent == len(events)
        report = worker.build_report()
        view = report["instances"]["0"]
        assert view["events_seen"] == len(events)
        assert view["workload"] == "mbench_spin"
        assert len(view["records"]) == 4
        # Periodic + final checkpoints were written and acked.
        assert worker.checkpoints_written >= 2
        assert stats.checkpoint_acks >= 2
        assert os.path.exists(
            os.path.join(worker.config.checkpoint_dir, "instance-0.json")
        )

    def test_restored_worker_reports_identically(self, tmp_path):
        spec = InstanceSpec(instance=0, workload="mbench_spin", requests=4)
        events = generate_instance_events(spec)
        worker = make_worker(tmp_path)
        asyncio.run(stream_instance_to(worker, spec, events))
        original = json.dumps(worker.build_report(), sort_keys=True)

        reborn = make_worker(tmp_path)  # same dirs: restores checkpoints
        assert reborn.instances_restored == 1
        assert json.dumps(reborn.build_report(), sort_keys=True) == original

    def test_replay_is_idempotent(self, tmp_path):
        """Streaming the same events twice (tail replay after failover)
        changes nothing: the pipeline's seq cursor skips duplicates."""
        spec = InstanceSpec(instance=0, workload="mbench_spin", requests=4)
        events = generate_instance_events(spec)
        once = make_worker(tmp_path / "once")
        asyncio.run(stream_instance_to(once, spec, events))

        twice = make_worker(tmp_path / "twice")

        async def stream_twice():
            server = asyncio.create_task(twice.serve_until_stopped())
            try:
                while not os.path.exists(twice.config.socket_path):
                    await asyncio.sleep(0.005)
                ring = HashRing(["w0"])
                paths = {"w0": twice.config.socket_path}
                await InstanceClient(spec, events, ring, paths).run()
                await InstanceClient(spec, events, ring, paths).run()
            finally:
                twice.request_stop()
                await server

        asyncio.run(stream_twice())
        assert json.dumps(twice.build_report(), sort_keys=True) == json.dumps(
            once.build_report(), sort_keys=True
        )

    def test_version_skew_rejected_with_error_frame(self, tmp_path):
        worker = make_worker(tmp_path)

        async def scenario():
            server = asyncio.create_task(worker.serve_until_stopped())
            try:
                while not os.path.exists(worker.config.socket_path):
                    await asyncio.sleep(0.005)
                reader, writer = await asyncio.open_unix_connection(
                    worker.config.socket_path
                )
                stream = FrameStream(reader, writer)
                bad = hello("instance", instance=0)
                bad["version"] = 99
                await stream.write(bad)
                try:
                    await stream.expect("hello_ack")
                finally:
                    await stream.close()
            finally:
                worker.request_stop()
                await server

        with pytest.raises(ProtocolError, match="version 99"):
            asyncio.run(scenario())

    def test_unknown_role_rejected(self, tmp_path):
        worker = make_worker(tmp_path)

        async def scenario():
            server = asyncio.create_task(worker.serve_until_stopped())
            try:
                while not os.path.exists(worker.config.socket_path):
                    await asyncio.sleep(0.005)
                reader, writer = await asyncio.open_unix_connection(
                    worker.config.socket_path
                )
                stream = FrameStream(reader, writer)
                await stream.write(hello("janitor"))
                try:
                    await stream.expect("hello_ack")
                finally:
                    await stream.close()
            finally:
                worker.request_stop()
                await server

        with pytest.raises(ProtocolError, match="unknown connection role"):
            asyncio.run(scenario())

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            make_worker(tmp_path, checkpoint_every=0)


class TestLoadTest:
    def options(self, **overrides):
        defaults = dict(
            workload="mbench_spin",
            instances=2,
            workers=2,
            requests=4,
            seed=7,
            checkpoint_every=16,
        )
        defaults.update(overrides)
        return LoadTestOptions(**defaults)

    def test_end_to_end(self, tmp_path):
        result = asyncio.run(run_load_test(self.options(), str(tmp_path)))
        summary = result.fleet.summary
        assert summary["workers"] == 2
        assert summary["instances"] == 2
        assert summary["population"] == 8  # 2 instances x 4 requests
        assert result.stats["events_sent"] >= result.stats["events_generated"]
        assert result.stats["events_per_second"] > 0
        assert result.stats["ack_latency_ms"] is not None
        assert result.registry.counter("serve_events_sent").value > 0

    def test_fleet_report_deterministic_across_runs(self, tmp_path):
        first = asyncio.run(
            run_load_test(self.options(), str(tmp_path / "a"))
        )
        second = asyncio.run(
            run_load_test(self.options(), str(tmp_path / "b"))
        )
        assert first.fleet.to_json() == second.fleet.to_json()

    def test_worker_reports_merge_to_the_fleet_report(self, tmp_path):
        result = asyncio.run(run_load_test(self.options(), str(tmp_path)))
        remerged = merge_worker_reports(result.worker_reports)
        assert remerged.to_json() == result.fleet.to_json()

    def test_saved_worker_reports_round_trip(self, tmp_path):
        result = asyncio.run(run_load_test(self.options(), str(tmp_path)))
        paths = save_worker_reports(result.worker_reports, str(tmp_path))
        assert [os.path.basename(p) for p in paths] == [
            "report-w0.json",
            "report-w1.json",
        ]
        from repro.serve.aggregator import load_worker_report

        documents = [load_worker_report(path) for path in paths]
        assert merge_worker_reports(documents).to_json() == (
            result.fleet.to_json()
        )

    def test_shed_mode_counts_drops(self, tmp_path):
        options = self.options(
            backpressure="shed", queue_limit=1, batch=1, credit=1
        )
        result = asyncio.run(run_load_test(options, str(tmp_path)))
        stats = result.stats
        # Conservation: everything offered was either sent or shed
        # (run_start broadcasts make sent+shed exceed generated).
        assert stats["events_sent"] + stats["events_shed"] >= (
            stats["events_generated"]
        )

    def test_shard_name(self):
        assert [shard_name(i) for i in range(3)] == ["w0", "w1", "w2"]


class TestCli:
    def test_load_test_writes_report(self, tmp_path, capsys):
        from repro.serve.cli import main

        report_path = tmp_path / "fleet.json"
        code = main([
            "load-test", "--workload", "mbench_spin", "--instances", "2",
            "--workers", "2", "--requests", "4", "--quiet",
            "--report", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["format"] == "repro-serve-fleet-report"
        assert payload["summary"]["population"] == 8

    def test_report_mode_merges(self, tmp_path, capsys):
        from repro.serve.cli import main

        options = LoadTestOptions(
            workload="mbench_spin", instances=2, workers=2, requests=4
        )
        result = asyncio.run(run_load_test(options, str(tmp_path)))
        paths = save_worker_reports(result.worker_reports, str(tmp_path))
        out = tmp_path / "fleet.json"
        assert main(["report", *paths, "--out", str(out)]) == 0
        assert json.loads(out.read_text()) == json.loads(
            result.fleet.to_json()
        )
        assert "fleet report" in capsys.readouterr().out

    def test_kill_worker_index_validated(self):
        from repro.serve.cli import main

        with pytest.raises(SystemExit):
            main(["load-test", "--workers", "2", "--kill-worker", "5"])

    def test_unknown_workload_rejected(self):
        from repro.serve.cli import main

        with pytest.raises(SystemExit):
            main(["load-test", "--workload", "not-a-workload"])
