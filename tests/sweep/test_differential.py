"""Differential suite: the sweep path adds zero observer effect.

Every scenario document a sweep settles must be byte-identical to the
same scenario rebuilt *by hand* — workload, SimConfig, collector, and
online pipeline constructed directly in this file and run through
``ServerSimulator`` / ``OnlinePipeline``, then serialized against the
documented result schema.  That pins both the values and the schema:
sharding (``jobs``), retries, caching, and kill/resume can change when a
scenario runs, never what it produces.
"""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.cli import parse_sampling
from repro.hardware.platform import WOODCREST
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceCollector
from repro.online.pipeline import SUBSCRIBED_KINDS, OnlinePipeline
from repro.online.report import build_report as build_online_report
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.manifest import SweepManifest
from repro.sweep.report import build_report
from repro.sweep.spec import SweepSpec
from repro.workloads.registry import (
    SERVER_APPS,
    make_faulted_workload,
    make_workload,
)

pytestmark = pytest.mark.sweep

#: All five workloads, clean + faulted, online analysis on.
SPEC = SweepSpec(
    name="differential",
    workloads=SERVER_APPS,
    sampling=("interrupt:100",),
    seeds=(3,),
    faults=("none", "lock_stall:0.3"),
    requests=5,
    concurrency=4,
    online=True,
    train=0,
)


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def direct_document(scenario) -> dict:
    """The reference: the scenario run with no sweep machinery at all."""
    workload = (
        make_faulted_workload(scenario.workload, scenario.faults)
        if scenario.faults != "none"
        else make_workload(scenario.workload)
    )
    pipeline = OnlinePipeline()
    collector = TraceCollector(capacity=0, kinds=SUBSCRIBED_KINDS)
    collector.subscribe(pipeline.process_event)
    config = SimConfig(
        machine=WOODCREST,
        sampling=parse_sampling(scenario.sampling),
        num_requests=scenario.requests,
        concurrency=min(scenario.concurrency, scenario.requests),
        seed=scenario.seed,
        collector=collector,
    )
    result = ServerSimulator(workload, config).run()
    registry = MetricsRegistry()
    result.register_metrics(registry)
    cpis = result.request_cpis()
    busy = float(result.busy_cycles_per_core.sum())
    overhead = result.sampler_stats.overhead_cycles(config.cost_model)
    report = build_online_report(pipeline)
    return {
        "format": "repro-sweep-result",
        "version": 1,
        "scenario": scenario.to_dict(),
        "scenario_id": scenario.scenario_id,
        "summary": {
            "requests": len(result.traces),
            "wall_cycles": float(result.wall_cycles),
            "busy_cycles": busy,
            "total_samples": int(result.sampler_stats.total_samples),
            "overhead_cycles": float(overhead),
            "overhead_fraction": float(overhead) / busy,
            "mean_cpi": float(cpis.mean()),
            "p90_cpi": float(np.percentile(cpis, 90)),
            "injected": sum(
                1
                for trace in result.traces
                if trace.spec.metadata.get("injected_fault") is not None
            ),
        },
        "metrics": registry.snapshot(),
        "online": {
            "summary": report.summary,
            "per_class": report.per_class,
            "requests": report.requests,
        },
    }


@pytest.fixture(scope="module")
def swept(tmp_path_factory):
    """One serial sweep over the full differential grid."""
    path = str(tmp_path_factory.mktemp("diff") / "manifest.json")
    manifest = SweepManifest.plan(SPEC)
    run_sweep(manifest, path, SweepOptions(jobs=1))
    assert manifest.complete and not manifest.counts()["quarantined"]
    return manifest


class TestSweepMatchesDirect:
    @pytest.mark.parametrize("workload", SERVER_APPS)
    @pytest.mark.parametrize("faults", ["none", "lock_stall:0.3"])
    def test_byte_identity(self, swept, workload, faults):
        objects = swept.scenario_objects()
        scenario = next(
            s
            for s in objects.values()
            if s.workload == workload and s.faults == faults
        )
        swept_json = canonical(swept.result(scenario.scenario_id))
        direct_json = canonical(direct_document(scenario))
        assert swept_json == direct_json


class TestShardingInvariance:
    def test_jobs4_manifest_matches_jobs1(self, swept):
        parallel = SweepManifest.plan(SPEC)
        run_sweep(parallel, options=SweepOptions(jobs=4))
        assert parallel.to_json() == swept.to_json()

    def test_jobs4_report_matches_jobs1(self, swept):
        parallel = SweepManifest.plan(SPEC)
        run_sweep(parallel, options=SweepOptions(jobs=4))
        assert build_report(parallel).to_json() == build_report(swept).to_json()


class TestInterruptedSweep:
    def test_stop_and_resume_matches_uninterrupted(self, swept, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = SweepManifest.plan(SPEC)
        run_sweep(manifest, path, SweepOptions(stop_after=3))
        assert manifest.counts()["pending"] == len(SPEC.expand()) - 3
        # fresh process semantics: reload from disk, then continue
        resumed = SweepManifest.load(path)
        run_sweep(resumed, path, SweepOptions(jobs=2))
        assert resumed.to_json() == swept.to_json()
        assert build_report(resumed).to_json() == build_report(swept).to_json()


@pytest.mark.slow
class TestSigkillResume:
    """Real SIGKILL mid-sweep, resumed via the CLI (the CI smoke, in pytest)."""

    def test_sigkill_resume_byte_identity(self, swept, tmp_path):
        repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(repo_src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC.to_dict()))
        manifest_path = tmp_path / "manifest.json"

        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.sweep",
                "run",
                str(spec_path),
                "--manifest",
                str(manifest_path),
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it; still valid
                try:
                    manifest = SweepManifest.load(str(manifest_path))
                except (OSError, ValueError):
                    time.sleep(0.02)
                    continue
                if manifest.counts()["done"] >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("sweep never settled 2 scenarios")
        finally:
            if process.poll() is None:
                os.kill(process.pid, signal.SIGKILL)
            process.wait()

        resumed = SweepManifest.load(str(manifest_path))
        assert not resumed.complete or process.returncode == 0
        run_sweep(resumed, str(manifest_path), SweepOptions(jobs=2))
        assert resumed.to_json() == swept.to_json()
        assert build_report(resumed).to_json() == build_report(swept).to_json()
