"""Manifest round trips, loud-failure paths, and executor settlement."""

import json
import os
import time

import pytest

from repro.sweep.cache import ScenarioCache
from repro.sweep.executor import SweepOptions, run_sweep
from repro.sweep.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_VERSION,
    SweepManifest,
)
from repro.sweep.spec import SweepSpec


def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        workloads=("webserver",),
        sampling=("interrupt:100",),
        seeds=(0, 1),
        requests=3,
        concurrency=2,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestManifestDocument:
    def test_plan_is_all_pending(self):
        manifest = SweepManifest.plan(tiny_spec())
        assert manifest.pending_ids() == manifest.order
        assert not manifest.complete
        assert manifest.counts()["planned"] == 2

    def test_round_trip_bytes(self):
        manifest = SweepManifest.plan(tiny_spec())
        clone = SweepManifest.from_json(manifest.to_json())
        assert clone.to_json() == manifest.to_json()

    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "m.json")
        manifest = SweepManifest.plan(tiny_spec())
        manifest.save(path)
        assert SweepManifest.load(path).to_json() == manifest.to_json()
        # atomic save leaves no temp droppings
        assert os.listdir(tmp_path) == ["m.json"]

    def test_foreign_format_is_loud(self):
        with pytest.raises(ValueError, match="not a repro-sweep-manifest"):
            SweepManifest.from_json(json.dumps({"format": "something-else"}))

    def test_future_version_is_loud(self):
        payload = json.loads(SweepManifest.plan(tiny_spec()).to_json())
        payload["version"] = MANIFEST_VERSION + 1
        with pytest.raises(ValueError, match="unsupported"):
            SweepManifest.from_json(json.dumps(payload))

    def test_tampered_spec_is_loud(self):
        payload = json.loads(SweepManifest.plan(tiny_spec()).to_json())
        payload["spec"]["seeds"] = [5, 6]  # spec_key now stale
        with pytest.raises(ValueError, match="spec_key"):
            SweepManifest.from_json(json.dumps(payload))

    def test_malformed_json_is_loud(self):
        with pytest.raises(ValueError, match="malformed"):
            SweepManifest.from_json("{nope")

    def test_format_constants(self):
        payload = json.loads(SweepManifest.plan(tiny_spec()).to_json())
        assert payload["format"] == MANIFEST_FORMAT
        assert payload["version"] == MANIFEST_VERSION


class TestExecutorSettlement:
    def test_serial_run_settles_everything(self, tmp_path):
        path = str(tmp_path / "m.json")
        manifest = SweepManifest.plan(tiny_spec())
        run_sweep(manifest, path)
        assert manifest.complete
        assert manifest.counts()["done"] == 2
        # saved after each settlement: on-disk copy is the final state
        assert SweepManifest.load(path).to_json() == manifest.to_json()

    def test_stop_after_leaves_rest_pending(self):
        manifest = SweepManifest.plan(tiny_spec())
        run_sweep(manifest, options=SweepOptions(stop_after=1))
        counts = manifest.counts()
        assert counts["done"] == 1 and counts["pending"] == 1

    def test_failure_is_quarantined_not_fatal(self, monkeypatch):
        manifest = SweepManifest.plan(tiny_spec())
        doomed = manifest.order[0]
        from repro.sweep import executor as executor_module

        real = executor_module.run_scenario
        calls = []

        def flaky(scenario):
            calls.append(scenario.scenario_id)
            if scenario.scenario_id == doomed:
                raise RuntimeError("injected failure")
            return real(scenario)

        monkeypatch.setattr(executor_module, "run_scenario", flaky)
        run_sweep(manifest, options=SweepOptions(retries=1))
        entry = manifest.scenarios[doomed]
        assert entry["status"] == "quarantined"
        assert entry["attempts"] == 2  # first try + one retry
        assert "injected failure" in entry["error"]
        # the rest of the sweep still ran
        assert manifest.counts()["done"] == 1
        assert calls.count(doomed) == 2

    def test_retry_recovers_flaky_scenario(self, monkeypatch):
        manifest = SweepManifest.plan(tiny_spec())
        flaky_id = manifest.order[0]
        from repro.sweep import executor as executor_module

        real = executor_module.run_scenario
        failed = []

        def once(scenario):
            if scenario.scenario_id == flaky_id and not failed:
                failed.append(True)
                raise RuntimeError("transient")
            return real(scenario)

        monkeypatch.setattr(executor_module, "run_scenario", once)
        run_sweep(manifest, options=SweepOptions(retries=1))
        assert manifest.complete
        assert manifest.scenarios[flaky_id]["status"] == "done"
        assert manifest.scenarios[flaky_id]["attempts"] == 2

    def test_release_quarantined_returns_to_pending(self, monkeypatch):
        manifest = SweepManifest.plan(tiny_spec())
        from repro.sweep import executor as executor_module

        monkeypatch.setattr(
            executor_module,
            "run_scenario",
            lambda s: (_ for _ in ()).throw(RuntimeError("down")),
        )
        run_sweep(manifest, options=SweepOptions(retries=0))
        assert manifest.counts()["quarantined"] == 2
        assert manifest.release_quarantined() == manifest.order
        assert manifest.pending_ids() == manifest.order

    def test_timeout_quarantines_hung_scenario(self, monkeypatch):
        manifest = SweepManifest.plan(tiny_spec())
        from repro.sweep import executor as executor_module

        real = executor_module.run_scenario
        hung = manifest.order[0]

        def slow(scenario):
            if scenario.scenario_id == hung:
                time.sleep(60.0)
            return real(scenario)

        # fork workers inherit the patched module by address space
        monkeypatch.setattr(executor_module, "run_scenario", slow)
        run_sweep(
            manifest,
            options=SweepOptions(jobs=2, timeout_s=1.0, retries=0),
        )
        entry = manifest.scenarios[hung]
        assert entry["status"] == "quarantined"
        assert "timeout" in entry["error"]
        assert manifest.counts()["done"] == 1


class TestScenarioCache:
    def test_hits_skip_execution_and_preserve_bytes(self, tmp_path, monkeypatch):
        cache_path = str(tmp_path / "scenarios.json")
        first = SweepManifest.plan(tiny_spec())
        run_sweep(first, options=SweepOptions(cache=ScenarioCache(cache_path)))

        from repro.sweep import executor as executor_module

        def explode(scenario):
            raise AssertionError("cache miss: scenario executed")

        monkeypatch.setattr(executor_module, "run_scenario", explode)
        second = SweepManifest.plan(tiny_spec())
        cache = ScenarioCache(cache_path)
        run_sweep(second, options=SweepOptions(cache=cache))
        assert second.to_json() == first.to_json()
        assert cache.hits == 2

    def test_corrupt_cache_starts_empty(self, tmp_path):
        cache_path = tmp_path / "scenarios.json"
        cache_path.write_text("{broken")
        assert len(ScenarioCache(str(cache_path))) == 0
