"""Golden conformance corpus: pinned scenario documents per workload.

A mismatch means the simulator, metric registration, online pipeline, or
result serialization changed behavior.  If the change is deliberate,
regenerate the corpus and review the diff:

    python -m repro.sweep --regen-golden
"""

import difflib
import json
import os

import pytest

from repro.sweep.golden import (
    ATTRIBUTION_GOLDEN_MIXES,
    attribution_golden_path,
    attribution_golden_scenario,
    golden_path,
    golden_scenario,
)
from repro.sweep.scenario import result_to_json, run_scenario
from repro.workloads.registry import SERVER_APPS

pytestmark = pytest.mark.sweep

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden")


def _pretty(text: str):
    return json.dumps(json.loads(text), indent=2, sort_keys=True).splitlines(
        keepends=True
    )


class TestGoldenCorpus:
    def test_corpus_covers_every_workload(self):
        for workload in SERVER_APPS:
            assert os.path.exists(golden_path(workload, GOLDEN_DIR)), (
                f"missing golden file for {workload!r}; regenerate with "
                "'python -m repro.sweep --regen-golden'"
            )

    @pytest.mark.parametrize("workload", SERVER_APPS)
    def test_scenario_matches_pinned_bytes(self, workload):
        path = golden_path(workload, GOLDEN_DIR)
        with open(path) as fh:
            expected = fh.read()
        actual = result_to_json(run_scenario(golden_scenario(workload))) + "\n"
        if actual == expected:
            return
        diff = "".join(
            difflib.unified_diff(
                _pretty(expected),
                _pretty(actual),
                fromfile=f"golden/{os.path.basename(path)} (pinned)",
                tofile="recomputed",
                n=3,
            )
        )
        pytest.fail(
            f"golden conformance mismatch for workload {workload!r}.\n"
            "If this behavior change is intentional, regenerate with\n"
            "    python -m repro.sweep --regen-golden\n"
            "and commit the diff.\n\n" + diff
        )

    def test_golden_scenarios_cover_faults_and_placement(self):
        # The corpus must keep exercising fault injection (tpcc) and
        # multi-machine tier placement (rubis), not just clean runs.
        assert golden_scenario("tpcc").faults != "none"
        assert golden_scenario("rubis").placement.startswith("cluster:")


class TestAttributionGoldenCorpus:
    def test_corpus_covers_every_taxonomy_kind(self):
        from repro.faults.taxonomy import FAULT_TAXONOMY

        for kind in FAULT_TAXONOMY:
            assert kind in ATTRIBUTION_GOLDEN_MIXES
            assert os.path.exists(attribution_golden_path(kind, GOLDEN_DIR)), (
                f"missing attribution golden for {kind!r}; regenerate with "
                "'python -m repro.sweep --regen-golden'"
            )

    def test_composed_mix_is_pinned(self):
        # The composed schedule keeps exercising concurrent clauses, an
        # activation window, and a correlated burst.
        spec = ATTRIBUTION_GOLDEN_MIXES["mix"]
        assert "+" in spec and "@" in spec and "*" in spec

    @pytest.mark.parametrize("name", sorted(ATTRIBUTION_GOLDEN_MIXES))
    def test_attribution_matches_pinned_bytes(self, name):
        path = attribution_golden_path(name, GOLDEN_DIR)
        with open(path) as fh:
            expected = fh.read()
        document = run_scenario(attribution_golden_scenario(name))
        assert document["online"]["attribution"] is not None
        actual = result_to_json(document) + "\n"
        if actual == expected:
            return
        diff = "".join(
            difflib.unified_diff(
                _pretty(expected),
                _pretty(actual),
                fromfile=f"golden/{os.path.basename(path)} (pinned)",
                tofile="recomputed",
                n=3,
            )
        )
        pytest.fail(
            f"attribution golden mismatch for fault mix {name!r}.\n"
            "If this behavior change is intentional, regenerate with\n"
            "    python -m repro.sweep --regen-golden\n"
            "and commit the diff.\n\n" + diff
        )
