"""SweepSpec expansion, include/exclude pruning, and scenario identity."""

import pytest

from repro.sweep.spec import (
    Scenario,
    SweepSpec,
    parse_placement,
)


def small_spec(**overrides):
    base = dict(
        name="unit",
        workloads=("webserver", "tpcc"),
        sampling=("interrupt:100", "syscall:80,400"),
        seeds=(0, 1),
        faults=("none", "lock_stall:0.25"),
        placements=("single",),
        requests=5,
        concurrency=4,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestExpansion:
    def test_full_cross_product(self):
        assert len(small_spec().expand()) == 2 * 2 * 2 * 2

    def test_order_is_axis_major(self):
        ids = [s.scenario_id for s in small_spec().expand()]
        # workload is the outermost axis, placement the innermost.
        assert ids[0].startswith("webserver~interrupt:100~seed0~none")
        assert ids[-1].startswith("tpcc~syscall:80,400~seed1~lock_stall:0.25")
        assert ids == sorted(set(ids), key=ids.index)  # unique, stable

    def test_expansion_is_deterministic(self):
        a = [s.scenario_id for s in small_spec().expand()]
        b = [s.scenario_id for s in small_spec().expand()]
        assert a == b

    def test_exclude_prunes_matches(self):
        spec = small_spec(
            exclude=({"workload": "webserver", "faults": "lock_stall:0.25"},)
        )
        ids = [s.scenario_id for s in spec.expand()]
        assert len(ids) == 12
        assert not any("webserver" in i and "lock_stall" in i for i in ids)

    def test_include_keeps_only_matches(self):
        spec = small_spec(include=({"workload": "tpcc"},))
        assert all(s.workload == "tpcc" for s in spec.expand())
        assert len(spec.expand()) == 8

    def test_include_then_exclude(self):
        spec = small_spec(
            include=({"workload": "tpcc"},),
            exclude=({"seed": 1},),
        )
        scenarios = spec.expand()
        assert len(scenarios) == 4
        assert all(s.workload == "tpcc" and s.seed == 0 for s in scenarios)

    def test_everything_pruned_is_loud(self):
        with pytest.raises(ValueError, match="zero scenarios"):
            small_spec(include=({"workload": "tpcc"}, ),
                       exclude=({"workload": "tpcc"},))

    def test_settings_propagate_to_scenarios(self):
        spec = small_spec(requests=7, online=True, train=3)
        for scenario in spec.expand():
            assert (scenario.requests, scenario.online, scenario.train) == (7, True, 3)


class TestValidation:
    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            small_spec(workloads=("webserver", "nope"))

    def test_bad_sampling_spec(self):
        with pytest.raises(ValueError, match="sampling"):
            small_spec(sampling=("interrupt:100", "wat:1"))

    def test_bad_fault_spec(self):
        with pytest.raises(ValueError):
            small_spec(faults=("none", "bogus_fault:0.5"))

    def test_duplicate_axis_values(self):
        with pytest.raises(ValueError, match="duplicates"):
            small_spec(seeds=(1, 1))

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="empty"):
            small_spec(workloads=())

    def test_rule_with_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown axes"):
            small_spec(include=({"flavor": "spicy"},))

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep spec fields"):
            SweepSpec.from_dict({"name": "x", "workloads": ["tpcc"],
                                 "sampling": ["ctx"], "seeds": [0],
                                 "shards": 4})

    def test_round_trips_through_dict(self):
        spec = small_spec(include=({"workload": "tpcc"},))
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_key == spec.spec_key


class TestScenarioIdentity:
    def test_id_is_readable_and_unique(self):
        scenario = Scenario(workload="tpcc", sampling="interrupt:100", seed=3)
        assert scenario.scenario_id == "tpcc~interrupt:100~seed3~none~single"

    def test_content_key_covers_settings_not_just_axes(self):
        a = Scenario(workload="tpcc", sampling="ctx", seed=0, requests=5)
        b = Scenario(workload="tpcc", sampling="ctx", seed=0, requests=6)
        assert a.scenario_id == b.scenario_id  # same grid point...
        assert a.content_key != b.content_key  # ...different run settings

    def test_content_key_is_stable(self):
        a = Scenario(workload="tpcc", sampling="ctx", seed=0)
        b = Scenario.from_dict(a.to_dict())
        assert a.content_key == b.content_key

    def test_scenario_validates_eagerly(self):
        with pytest.raises(ValueError, match="requests"):
            Scenario(workload="tpcc", sampling="ctx", seed=0, requests=0)
        with pytest.raises(ValueError, match="cores"):
            Scenario(workload="tpcc", sampling="ctx", seed=0, cores=2)


class TestPlacement:
    def test_single(self):
        assert parse_placement("single") == (1, None)

    def test_cluster(self):
        machines, placement = parse_placement("cluster:2:mysql=1,tomcat=0")
        assert machines == 2
        assert placement == {"mysql": 1, "tomcat": 0}

    @pytest.mark.parametrize(
        "text",
        [
            "cluster",           # no machine count
            "cluster:1:a=0",     # not actually a cluster
            "cluster:2",         # no assignments
            "cluster:2:a=5",     # machine out of range
            "cluster:2:a=0,a=1", # tier assigned twice
            "ring:3:a=0",        # unknown shape
        ],
    )
    def test_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            parse_placement(text)
