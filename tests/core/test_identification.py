"""Tests for the end-to-end online identification pipeline."""

import numpy as np
import pytest

from repro.core.identification import OnlineIdentifier


class TestLifecycle:
    def test_unfitted_rejects_identify(self):
        ident = OnlineIdentifier()
        with pytest.raises(RuntimeError):
            ident.identify([0.01])

    def test_fit_sets_median_threshold(self, web_run):
        ident = OnlineIdentifier(window_instructions=10_000).fit(web_run.traces)
        cpu_times = [t.cpu_time_us() for t in web_run.traces]
        assert ident.threshold_us == pytest.approx(np.median(cpu_times))
        assert ident.is_fitted

    def test_explicit_threshold_kept(self, web_run):
        ident = OnlineIdentifier(
            window_instructions=10_000, threshold_us=123.0
        ).fit(web_run.traces)
        assert ident.threshold_us == 123.0

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            OnlineIdentifier().fit([])

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            OnlineIdentifier(window_instructions=0)


class TestIdentification:
    @pytest.fixture()
    def fitted(self, web_run):
        half = len(web_run.traces) // 2
        ident = OnlineIdentifier(window_instructions=10_000)
        return ident.fit(web_run.traces[:half]), web_run.traces[half:]

    def test_identify_returns_full_record(self, fitted):
        ident, test_traces = fitted
        pattern = ident.pattern_of(test_traces[0])
        result = ident.identify(pattern[:3])
        assert result.windows_used == 3
        assert result.predicted_cpu_time_us > 0
        assert result.matched_label in ("class0", "class1", "class2", "class3")

    def test_identify_trace_prefix(self, fitted):
        ident, test_traces = fitted
        result = ident.identify_trace_prefix(test_traces[0], 30_000)
        assert result.windows_used == 3

    def test_full_pattern_beats_chance(self, fitted):
        ident, test_traces = fitted
        errors = ident.evaluate(test_traces, prefix_windows=[30])
        assert errors[0] < 0.45

    def test_evaluate_prefix_validation(self, fitted):
        ident, test_traces = fitted
        with pytest.raises(ValueError):
            ident.evaluate(test_traces, prefix_windows=[0])

    def test_average_method_supported(self, web_run):
        ident = OnlineIdentifier(
            window_instructions=10_000, method="average"
        ).fit(web_run.traces)
        pattern = ident.pattern_of(web_run.traces[0])
        assert ident.identify(pattern[:2]).predicted_cpu_time_us > 0


class TestNoEvidence:
    """Regression: an empty partial pattern is valid online input (a request
    that has not executed a full window yet), not an error."""

    @pytest.fixture()
    def fitted(self, web_run):
        return OnlineIdentifier(window_instructions=10_000).fit(web_run.traces)

    def test_empty_pattern_returns_defined_identification(self, fitted):
        result = fitted.identify([])
        assert result.has_evidence is False
        assert result.windows_used == 0
        assert result.matched_label is None
        # Falls back to the no-information prior: CPU time at the
        # population threshold, classified cheap.
        assert result.predicted_cpu_time_us == fitted.threshold_us
        assert result.predicted_expensive is False
        assert np.isfinite(result.predicted_cpu_time_us)

    def test_empty_ndarray_equivalent(self, fitted):
        assert fitted.identify(np.array([])).has_evidence is False

    def test_nonempty_pattern_has_evidence(self, fitted, web_run):
        pattern = fitted.pattern_of(web_run.traces[0])
        assert fitted.identify(pattern[:1]).has_evidence is True

    def test_match_returns_none_on_empty(self, fitted):
        assert fitted.match([]) is None

    def test_match_scores_best_and_runner_up(self, fitted, web_run):
        pattern = fitted.pattern_of(web_run.traces[0])
        match = fitted.match(pattern[:3])
        assert match.distance <= match.runner_up_distance
        assert match.margin >= 0.0
        assert match.signature.label == fitted.identify(pattern[:3]).matched_label

    def test_state_round_trip_preserves_decisions(self, fitted, web_run):
        restored = OnlineIdentifier.from_state(fitted.to_state())
        assert restored.threshold_us == fitted.threshold_us
        for trace in web_run.traces[:5]:
            pattern = fitted.pattern_of(trace)[:4]
            assert (
                restored.identify(pattern).matched_label
                == fitted.identify(pattern).matched_label
            )


class TestCrossKindDiscrimination:
    def test_tpcc_kinds_identified(self, tpcc_run):
        """With the CPI metric, the matched label usually recovers the
        transaction type — the classification power behind Figure 10."""
        traces = tpcc_run.traces
        half = len(traces) // 2
        ident = OnlineIdentifier(
            metric="cpi", window_instructions=100_000
        ).fit(traces[:half])
        hits = 0
        total = 0
        for trace in traces[half:]:
            pattern = ident.pattern_of(trace)
            result = ident.identify(pattern)
            total += 1
            hits += result.matched_label == trace.spec.kind
        assert hits / total > 0.6
