"""Tests for online signature identification (Section 4.4)."""

import numpy as np
import pytest

from repro.core.signatures import (
    RecentPastPredictor,
    SignatureBank,
    prediction_error_curve,
)


def make_bank(method="variation", penalty=1.0):
    bank = SignatureBank(penalty=penalty, method=method)
    bank.add([1.0, 1.0, 1.0, 1.0], cpu_time_us=100.0, label="flat")
    bank.add([1.0, 5.0, 1.0, 5.0], cpu_time_us=900.0, label="spiky")
    return bank


class TestSignatureBank:
    def test_identify_full_pattern(self):
        bank = make_bank()
        assert bank.identify([1.0, 5.0, 1.0, 5.0]).label == "spiky"
        assert bank.identify([1.1, 0.9, 1.0, 1.0]).label == "flat"

    def test_identify_partial_prefix(self):
        """Identification uses only the observed prefix."""
        bank = make_bank()
        assert bank.identify([1.0, 4.8]).label == "spiky"

    def test_predict_cpu_above(self):
        bank = make_bank()
        assert bank.predict_cpu_above([1.0, 5.0], threshold_us=500.0)
        assert not bank.predict_cpu_above([1.0, 1.0], threshold_us=500.0)

    def test_average_method_ignores_pattern(self):
        bank = make_bank(method="average")
        # Average of [3, 3] equals the spiky signature's prefix mean (3.0),
        # not the flat one's (1.0).
        assert bank.identify([3.0, 3.0]).label == "spiky"

    def test_variation_method_separates_equal_averages(self):
        bank = SignatureBank(penalty=1.0, method="variation")
        bank.add([0.0, 6.0], cpu_time_us=1.0, label="spiky")
        bank.add([3.0, 3.0], cpu_time_us=2.0, label="flat")
        # Equal averages; only the variation pattern distinguishes them.
        assert bank.identify([0.1, 5.9]).label == "spiky"

    def test_empty_bank_raises(self):
        bank = SignatureBank(penalty=1.0)
        with pytest.raises(ValueError):
            bank.identify([1.0])

    def test_empty_pattern_raises(self):
        with pytest.raises(ValueError):
            make_bank().identify([])

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=1.0, method="magic")

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=-1.0)

    def test_empty_signature_rejected(self):
        with pytest.raises(ValueError):
            make_bank().add([], cpu_time_us=1.0)

    def test_len(self):
        assert len(make_bank()) == 2


class TestRecentPastPredictor:
    def test_none_before_observations(self):
        assert RecentPastPredictor().predict_cpu_above(10.0) is None

    def test_window_slides(self):
        p = RecentPastPredictor(window=2)
        p.observe_completion(100.0)
        p.observe_completion(100.0)
        p.observe_completion(1.0)
        # Window holds [100, 1] -> mean 50.5
        assert p.predict_cpu_above(40.0) is True
        assert p.predict_cpu_above(60.0) is False

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RecentPastPredictor(window=0)


class TestPredictionErrorCurve:
    def test_perfect_identification_zero_error(self):
        bank = make_bank()
        patterns = [np.array([1.0, 1.0, 1.0, 1.0]), np.array([1.0, 5.0, 1.0, 5.0])]
        cpu = [100.0, 900.0]
        errors = prediction_error_curve(bank, patterns, cpu, 500.0, [2, 4])
        assert np.all(errors == 0.0)

    def test_error_declines_with_progress(self):
        bank = SignatureBank(penalty=1.0)
        bank.add([1.0, 1.0, 9.0, 9.0], cpu_time_us=900.0)
        bank.add([1.0, 1.0, 1.0, 1.0], cpu_time_us=100.0)
        # Test patterns identical preludes, divergent tails.
        patterns = [np.array([1.0, 1.0, 9.0, 9.0]), np.array([1.0, 1.0, 1.0, 1.0])]
        cpu = [900.0, 100.0]
        errors = prediction_error_curve(bank, patterns, cpu, 500.0, [1, 4])
        assert errors[1] <= errors[0]
        assert errors[1] == 0.0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            prediction_error_curve(make_bank(), [np.array([1.0])], [], 1.0, [1])

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            prediction_error_curve(
                make_bank(), [np.array([1.0])], [1.0], 1.0, [0]
            )
