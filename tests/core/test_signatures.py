"""Tests for online signature identification (Section 4.4)."""

import numpy as np
import pytest

from repro.core.signatures import (
    RecentPastPredictor,
    SignatureBank,
    prediction_error_curve,
)


def make_bank(method="variation", penalty=1.0):
    bank = SignatureBank(penalty=penalty, method=method)
    bank.add([1.0, 1.0, 1.0, 1.0], cpu_time_us=100.0, label="flat")
    bank.add([1.0, 5.0, 1.0, 5.0], cpu_time_us=900.0, label="spiky")
    return bank


class TestSignatureBank:
    def test_identify_full_pattern(self):
        bank = make_bank()
        assert bank.identify([1.0, 5.0, 1.0, 5.0]).label == "spiky"
        assert bank.identify([1.1, 0.9, 1.0, 1.0]).label == "flat"

    def test_identify_partial_prefix(self):
        """Identification uses only the observed prefix."""
        bank = make_bank()
        assert bank.identify([1.0, 4.8]).label == "spiky"

    def test_predict_cpu_above(self):
        bank = make_bank()
        assert bank.predict_cpu_above([1.0, 5.0], threshold_us=500.0)
        assert not bank.predict_cpu_above([1.0, 1.0], threshold_us=500.0)

    def test_average_method_ignores_pattern(self):
        bank = make_bank(method="average")
        # Average of [3, 3] equals the spiky signature's prefix mean (3.0),
        # not the flat one's (1.0).
        assert bank.identify([3.0, 3.0]).label == "spiky"

    def test_variation_method_separates_equal_averages(self):
        bank = SignatureBank(penalty=1.0, method="variation")
        bank.add([0.0, 6.0], cpu_time_us=1.0, label="spiky")
        bank.add([3.0, 3.0], cpu_time_us=2.0, label="flat")
        # Equal averages; only the variation pattern distinguishes them.
        assert bank.identify([0.1, 5.9]).label == "spiky"

    def test_empty_bank_raises(self):
        bank = SignatureBank(penalty=1.0)
        with pytest.raises(ValueError):
            bank.identify([1.0])

    def test_empty_pattern_raises(self):
        with pytest.raises(ValueError):
            make_bank().identify([])

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=1.0, method="magic")

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=-1.0)

    def test_empty_signature_rejected(self):
        with pytest.raises(ValueError):
            make_bank().add([], cpu_time_us=1.0)

    def test_len(self):
        assert len(make_bank()) == 2

    def test_vectorized_sweep_matches_l1_distance(self):
        """The streaming fast path must agree with Equation 2 exactly,
        including the penalty for partials outrunning short signatures."""
        from repro.core.distances import l1_distance

        rng = np.random.default_rng(5)
        bank = SignatureBank(penalty=0.37)
        signatures = [rng.uniform(0, 4, size=n) for n in (3, 7, 12, 12, 5)]
        for i, values in enumerate(signatures):
            bank.add(values, cpu_time_us=float(i))
        for w in (1, 3, 5, 7, 12, 20):
            partial = rng.uniform(0, 4, size=w)
            expected = [
                l1_distance(partial, s[:w], penalty=0.37) for s in signatures
            ]
            got = bank._variation_distances(partial)
            np.testing.assert_allclose(got, expected, rtol=1e-12)
            match = bank.match(partial)
            assert match.index == int(np.argmin(expected))
            assert match.distance == got[match.index]


class TestNearestLabel:
    def test_agrees_with_match_small_bank(self):
        """The pure-Python streaming sweep picks the same winner as match()."""
        rng = np.random.default_rng(7)
        bank = SignatureBank(penalty=0.41)
        for i, n in enumerate((3, 7, 12, 12, 5)):
            bank.add(rng.uniform(0, 4, size=n), cpu_time_us=1.0, label=f"s{i}")
        for w in (1, 4, 9, 15):
            partial = list(rng.uniform(0, 4, size=w))
            assert bank.nearest_label(partial) == bank.match(partial).signature.label

    def test_agrees_with_match_above_numpy_threshold(self):
        """Wide banks route through the vectorized sweep — same winner."""
        rng = np.random.default_rng(8)
        bank = SignatureBank(penalty=0.2)
        for i in range(40):
            bank.add(rng.uniform(0, 4, size=80), cpu_time_us=1.0, label=f"s{i}")
        partial = rng.uniform(0, 4, size=60)   # 40 * 60 > 2048
        assert bank.nearest_label(partial) == bank.match(partial).signature.label

    def test_average_method_delegates(self):
        bank = make_bank(method="average")
        assert bank.nearest_label([3.0, 3.0]) == "spiky"

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=1.0).nearest_label([1.0])
        with pytest.raises(ValueError):
            make_bank().nearest_label([])


class TestPrefixRows:
    def test_incremental_sweep_reproduces_nearest_label(self):
        """A caller-maintained running distance finds the same winner."""
        rng = np.random.default_rng(9)
        bank = SignatureBank(penalty=0.3)
        for i, n in enumerate((4, 6, 9)):
            bank.add(rng.uniform(0, 2, size=n), cpu_time_us=1.0, label=f"s{i}")
        rows, penalty = bank.prefix_rows()
        assert penalty == 0.3
        dists = [0.0] * len(rows)
        partial = []
        for w, x in enumerate(rng.uniform(0, 2, size=11)):
            partial.append(float(x))
            for i, (values, length, _) in enumerate(rows):
                dists[i] += abs(x - values[w]) if w < length else penalty
            best = min(range(len(rows)), key=lambda i: dists[i])
            assert rows[best][2] == bank.nearest_label(partial)

    def test_empty_bank_raises(self):
        with pytest.raises(ValueError):
            SignatureBank(penalty=1.0).prefix_rows()


class TestRecentPastPredictor:
    def test_none_before_observations(self):
        assert RecentPastPredictor().predict_cpu_above(10.0) is None

    def test_window_slides(self):
        p = RecentPastPredictor(window=2)
        p.observe_completion(100.0)
        p.observe_completion(100.0)
        p.observe_completion(1.0)
        # Window holds [100, 1] -> mean 50.5
        assert p.predict_cpu_above(40.0) is True
        assert p.predict_cpu_above(60.0) is False

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RecentPastPredictor(window=0)


class TestPredictionErrorCurve:
    def test_perfect_identification_zero_error(self):
        bank = make_bank()
        patterns = [np.array([1.0, 1.0, 1.0, 1.0]), np.array([1.0, 5.0, 1.0, 5.0])]
        cpu = [100.0, 900.0]
        errors = prediction_error_curve(bank, patterns, cpu, 500.0, [2, 4])
        assert np.all(errors == 0.0)

    def test_error_declines_with_progress(self):
        bank = SignatureBank(penalty=1.0)
        bank.add([1.0, 1.0, 9.0, 9.0], cpu_time_us=900.0)
        bank.add([1.0, 1.0, 1.0, 1.0], cpu_time_us=100.0)
        # Test patterns identical preludes, divergent tails.
        patterns = [np.array([1.0, 1.0, 9.0, 9.0]), np.array([1.0, 1.0, 1.0, 1.0])]
        cpu = [900.0, 100.0]
        errors = prediction_error_curve(bank, patterns, cpu, 500.0, [1, 4])
        assert errors[1] <= errors[0]
        assert errors[1] == 0.0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            prediction_error_curve(make_bank(), [np.array([1.0])], [], 1.0, [1])

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            prediction_error_curve(
                make_bank(), [np.array([1.0])], [1.0], 1.0, [0]
            )
