"""Tests for transparent stage identification."""

import numpy as np
import pytest

from repro.core.stagedetect import (
    DetectedStage,
    detect_change_points,
    identify_stages,
    stage_agreement,
)


class TestChangePoints:
    def test_clean_level_shift_found(self):
        values = np.concatenate([np.full(10, 1.0), np.full(10, 5.0)])
        cuts = detect_change_points(values, min_segment=3)
        assert cuts == [10]

    def test_constant_series_no_cuts(self):
        assert detect_change_points(np.full(20, 2.0)) == []

    def test_too_short_series(self):
        assert detect_change_points([1.0, 5.0], min_segment=3) == []

    def test_multiple_shifts(self):
        values = np.concatenate(
            [np.full(8, 1.0), np.full(8, 6.0), np.full(8, 1.0)]
        )
        cuts = detect_change_points(values, min_segment=3)
        assert len(cuts) == 2
        assert abs(cuts[0] - 8) <= 1 and abs(cuts[1] - 16) <= 1

    def test_refractory_gap(self):
        values = np.concatenate([np.full(6, 0.0), np.full(6, 10.0)])
        cuts = detect_change_points(values, min_segment=4)
        # Only one cut despite several windows near the shift.
        assert len(cuts) == 1

    def test_noise_does_not_trigger(self):
        rng = np.random.default_rng(0)
        values = 2.0 + 0.05 * rng.standard_normal(40)
        assert detect_change_points(values, min_segment=3, threshold=3.0) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            detect_change_points([1.0], min_segment=0)
        with pytest.raises(ValueError):
            detect_change_points([1.0], threshold=0.0)


class TestIdentifyStages:
    def test_web_request_stages_recovered(self, web_run):
        """A web request's header phase (high CPI) must appear as its own
        detected stage."""
        trace = max(web_run.traces, key=lambda t: t.total_instructions)
        stages = identify_stages(trace, window_instructions=10_000, threshold=1.0)
        assert len(stages) >= 2
        # Stages tile the window axis.
        assert stages[0].start_window == 0
        for a, b in zip(stages[:-1], stages[1:]):
            assert a.end_window == b.start_window
        # The stages differ in hardware characteristics.
        cpis = [s.mean_cpi for s in stages]
        assert max(cpis) > 1.3 * min(cpis)

    def test_annotations_positive(self, tpch_run):
        trace = tpch_run.traces[0]
        stages = identify_stages(trace, window_instructions=1_000_000)
        for stage in stages:
            assert stage.mean_cpi > 0
            assert stage.mean_l2_refs_per_ins >= 0
            assert 0 <= stage.mean_l2_miss_ratio <= 1
            assert stage.length_windows > 0

    def test_unknown_metric_rejected(self, web_run):
        with pytest.raises(ValueError):
            identify_stages(web_run.traces[0], 10_000, metric="ipc")


class TestStageAgreement:
    def make_stages(self, cuts, n=20):
        bounds = [0] + list(cuts) + [n]
        return [
            DetectedStage(a, b, 1.0, 0.0, 0.0)
            for a, b in zip(bounds[:-1], bounds[1:])
        ]

    def test_perfect_match(self):
        stages = self.make_stages([5, 10])
        recall, precision = stage_agreement(stages, [5, 10])
        assert recall == 1.0 and precision == 1.0

    def test_tolerance_window(self):
        stages = self.make_stages([6])
        recall, _ = stage_agreement(stages, [5], tolerance_windows=1)
        assert recall == 1.0
        recall, _ = stage_agreement(stages, [5], tolerance_windows=0)
        assert recall == 0.0

    def test_spurious_cuts_hurt_precision(self):
        stages = self.make_stages([5, 12])
        recall, precision = stage_agreement(stages, [5])
        assert recall == 1.0
        assert precision == 0.5

    def test_no_true_boundaries(self):
        stages = self.make_stages([])
        assert stage_agreement(stages, []) == (1.0, 1.0)
