"""Metamorphic invariances of the paper's analysis measures.

The modeling stack makes claims that must hold regardless of input
framing: penalty-DTW is a symmetric measure, shifting both series by a
constant cannot change their distance, relabeling/permuting the inputs of
k-medoids permutes its partition, and reordering the requests inside an
anomaly-detection window permutes scores without changing them.  Each is
checked with hypothesis over *simulator-generated* counter sequences
(plus the synthetic draws hypothesis itself adds), because the simulator
produces series shapes — unequal lengths, flat regions, bursty spikes —
that synthetic strategies undersample.

Float discipline: permutations and shifts reorder float reductions, so
comparisons use tight ``isclose`` tolerances rather than bit equality
(only the sweep's differential suite demands bytes).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anomaly import detect_by_centroid_distance
from repro.core.clustering import distance_matrix, k_medoids
from repro.core.distances import l1_distance
from repro.core.dtw import dtw_distance
from tests.conftest import run_small

REL_TOL = 1e-9
ABS_TOL = 1e-9


def _series_pool():
    """Per-request CPI window series from a real (simulated) tpcc run."""
    result = run_small("tpcc", num_requests=16, seed=42)
    pool = []
    for trace in result.traces:
        values = np.asarray(
            trace.series("cpi", window_instructions=50_000).values, dtype=float
        )
        if len(values) >= 2:
            pool.append(values)
    assert len(pool) >= 8, "simulator pool too small for metamorphic tests"
    return pool


POOL = _series_pool()

indices = st.integers(0, len(POOL) - 1)
penalties = st.floats(0.0, 5.0, allow_nan=False)
shifts = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


class TestPenaltyDtwInvariances:
    @given(indices, indices, penalties)
    @settings(max_examples=80, deadline=None)
    def test_symmetric(self, i, j, penalty):
        forward = dtw_distance(POOL[i], POOL[j], asynchrony_penalty=penalty)
        backward = dtw_distance(POOL[j], POOL[i], asynchrony_penalty=penalty)
        assert math.isclose(forward, backward, rel_tol=REL_TOL, abs_tol=ABS_TOL)

    @given(indices, indices, penalties, shifts)
    @settings(max_examples=80, deadline=None)
    def test_shift_consistent(self, i, j, penalty, shift):
        # |(x+c) - (y+c)| == |x - y| elementwise, and the asynchrony
        # penalty depends only on alignment, so a common shift is inert.
        base = dtw_distance(POOL[i], POOL[j], asynchrony_penalty=penalty)
        shifted = dtw_distance(
            POOL[i] + shift, POOL[j] + shift, asynchrony_penalty=penalty
        )
        assert math.isclose(shifted, base, rel_tol=1e-7, abs_tol=1e-7)

    @given(indices, penalties)
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, i, penalty):
        assert dtw_distance(POOL[i], POOL[i], asynchrony_penalty=penalty) == 0.0


#: One fixed matrix over the pool: the permutation tests only reindex it,
#: so every hypothesis example reuses these exact float entries.
MATRIX = distance_matrix(POOL, lambda a, b: l1_distance(a, b, penalty=0.5))


def _partition(labels, to_original):
    """Cluster assignment as a set of frozensets of *original* indices."""
    groups = {}
    for position, label in enumerate(labels):
        groups.setdefault(int(label), set()).add(int(to_original[position]))
    return {frozenset(members) for members in groups.values()}


class TestKMedoidsPermutationInvariance:
    @given(st.permutations(range(len(POOL))), st.integers(2, 3))
    @settings(max_examples=40, deadline=None)
    def test_partition_invariant_up_to_relabeling(self, perm, k):
        perm = np.asarray(perm)
        # position[i] = where original item i landed after permuting
        position = np.empty(len(perm), dtype=int)
        position[perm] = np.arange(len(perm))

        base = k_medoids(MATRIX, k, initial_medoids=list(range(k)))
        permuted_matrix = MATRIX[np.ix_(perm, perm)]
        permuted = k_medoids(
            permuted_matrix, k, initial_medoids=[position[m] for m in range(k)]
        )

        assert _partition(permuted.labels, perm) == _partition(
            base.labels, np.arange(len(POOL))
        )
        assert math.isclose(
            permuted.total_cost, base.total_cost, rel_tol=REL_TOL, abs_tol=ABS_TOL
        )
        # medoids name the same original items
        assert {int(perm[m]) for m in permuted.medoids} == set(
            int(m) for m in base.medoids
        )

    def test_initial_medoids_validation(self):
        with pytest.raises(ValueError, match="length"):
            k_medoids(MATRIX, 2, initial_medoids=[0])
        with pytest.raises(ValueError, match="distinct"):
            k_medoids(MATRIX, 2, initial_medoids=[1, 1])
        with pytest.raises(ValueError, match="index"):
            k_medoids(MATRIX, 2, initial_medoids=[0, len(POOL)])


class TestAnomalyReorderInvariance:
    @given(st.permutations(range(len(POOL))))
    @settings(max_examples=40, deadline=None)
    def test_scores_invariant_under_request_reordering(self, perm):
        distance = lambda a, b: l1_distance(a, b, penalty=0.5)
        base = detect_by_centroid_distance(
            {"window": list(range(len(POOL)))}, POOL, distance
        )
        reordered = detect_by_centroid_distance(
            {"window": list(perm)}, POOL, distance
        )
        assert len(base) == len(reordered) == 1
        # Reordering the window's member list must not change which
        # request is anomalous, which is the reference, or the score.
        assert reordered[0].anomaly_index == base[0].anomaly_index
        assert reordered[0].reference_index == base[0].reference_index
        assert math.isclose(
            reordered[0].score, base[0].score, rel_tol=REL_TOL, abs_tol=ABS_TOL
        )
