"""Tests for k-medoids classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import (
    KMedoidsResult,
    distance_matrix,
    divergence_from_centroid,
    k_medoids,
)


def blob_matrix(rng, centers, per_cluster=8, spread=0.2):
    """1-D blobs -> pairwise distance matrix and true labels."""
    points = []
    labels = []
    for label, center in enumerate(centers):
        points.extend(center + spread * rng.standard_normal(per_cluster))
        labels.extend([label] * per_cluster)
    points = np.array(points)
    matrix = np.abs(points[:, None] - points[None, :])
    return points, matrix, np.array(labels)


class TestDistanceMatrix:
    def test_symmetric_from_callable(self):
        items = [1.0, 4.0, 6.0]
        matrix = distance_matrix(items, lambda a, b: abs(a - b))
        assert matrix[0, 1] == matrix[1, 0] == 3.0
        assert np.all(np.diag(matrix) == 0)

    def test_asymmetric_mode(self):
        items = [1.0, 2.0]
        matrix = distance_matrix(items, lambda a, b: a - b, symmetric=False)
        assert matrix[0, 1] == -1.0
        assert matrix[1, 0] == 1.0


class TestKMedoids:
    def test_recovers_well_separated_clusters(self, rng):
        points, matrix, truth = blob_matrix(rng, centers=[0.0, 10.0, 20.0])
        result = k_medoids(matrix, k=3, rng=rng)
        # Same-truth points share a cluster label.
        for label in range(3):
            members = result.labels[truth == label]
            assert len(set(members.tolist())) == 1

    def test_medoids_are_members(self, rng):
        _, matrix, _ = blob_matrix(rng, centers=[0.0, 5.0])
        result = k_medoids(matrix, k=2, rng=rng)
        assert all(0 <= m < matrix.shape[0] for m in result.medoids)

    def test_labels_point_to_nearest_medoid(self, rng):
        _, matrix, _ = blob_matrix(rng, centers=[0.0, 5.0, 9.0])
        result = k_medoids(matrix, k=3, rng=rng)
        for i in range(matrix.shape[0]):
            assigned = result.medoids[result.labels[i]]
            best = result.medoids[np.argmin(matrix[i, result.medoids])]
            assert matrix[i, assigned] == pytest.approx(matrix[i, best])

    def test_medoid_minimizes_within_cluster_sum(self, rng):
        """The centroid-request definition from Section 4.2."""
        _, matrix, _ = blob_matrix(rng, centers=[0.0, 8.0])
        result = k_medoids(matrix, k=2, rng=rng)
        for cluster, medoid in enumerate(result.medoids):
            members = result.members(cluster)
            sums = matrix[np.ix_(members, members)].sum(axis=1)
            assert matrix[medoid, members].sum() == pytest.approx(sums.min())

    def test_k_equals_n(self, rng):
        matrix = np.abs(np.subtract.outer(np.arange(4.0), np.arange(4.0)))
        result = k_medoids(matrix, k=4, rng=rng)
        assert result.total_cost == 0.0

    def test_k_one(self, rng):
        matrix = np.abs(np.subtract.outer(np.arange(5.0), np.arange(5.0)))
        result = k_medoids(matrix, k=1, rng=rng)
        assert np.all(result.labels == 0)
        assert result.medoids[0] == 2  # the geometric median of 0..4

    def test_invalid_k(self, rng):
        matrix = np.zeros((3, 3))
        with pytest.raises(ValueError):
            k_medoids(matrix, k=0, rng=rng)
        with pytest.raises(ValueError):
            k_medoids(matrix, k=4, rng=rng)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ValueError):
            k_medoids(np.zeros((2, 3)), k=1, rng=rng)

    def test_duplicate_points_handled(self, rng):
        matrix = np.zeros((6, 6))
        result = k_medoids(matrix, k=3, rng=rng)
        assert len(set(result.medoids.tolist())) == 3

    def test_deterministic_given_rng(self):
        rng = np.random.default_rng(7)
        _, matrix, _ = blob_matrix(rng, centers=[0.0, 5.0, 11.0])
        r1 = k_medoids(matrix, k=3, rng=np.random.default_rng(1))
        r2 = k_medoids(matrix, k=3, rng=np.random.default_rng(1))
        assert np.array_equal(r1.labels, r2.labels)

    @given(st.integers(2, 5), st.integers(6, 20))
    @settings(max_examples=30, deadline=None)
    def test_total_cost_nonincreasing_vs_k1(self, k, n):
        rng = np.random.default_rng(n * 13 + k)
        points = rng.random(n) * 10
        matrix = np.abs(points[:, None] - points[None, :])
        many = k_medoids(matrix, k=min(k, n), rng=np.random.default_rng(0))
        one = k_medoids(matrix, k=1, rng=np.random.default_rng(0))
        assert many.total_cost <= one.total_cost + 1e-9


class TestDivergence:
    def test_zero_when_properties_match_centroids(self):
        result = KMedoidsResult(
            medoids=np.array([0, 1]),
            labels=np.array([0, 1, 0, 1]),
            iterations=1,
            total_cost=0.0,
        )
        properties = np.array([2.0, 4.0, 2.0, 4.0])
        assert divergence_from_centroid(properties, result) == 0.0

    def test_known_value(self):
        result = KMedoidsResult(
            medoids=np.array([0]),
            labels=np.array([0, 0]),
            iterations=1,
            total_cost=0.0,
        )
        properties = np.array([2.0, 3.0])
        # |3-2|/2 averaged over both members = 0.25
        assert divergence_from_centroid(properties, result) == pytest.approx(0.25)

    def test_zero_centroid_value_rejected(self):
        result = KMedoidsResult(
            medoids=np.array([0]),
            labels=np.array([0]),
            iterations=1,
            total_cost=0.0,
        )
        with pytest.raises(ValueError):
            divergence_from_centroid(np.array([0.0]), result)
