"""Tests for behavior-transition-signal training (Section 3.2, Table 2)."""

import numpy as np
import pytest

from repro.core.transitions import TransitionSignalTrainer


class TestOnlineStats:
    def test_mean_and_std_match_numpy(self, rng):
        trainer = TransitionSignalTrainer()
        changes = rng.standard_normal(200) * 2.0 + 0.5
        for change in changes:
            trainer.observe("writev", 0.0, change)
        signal = trainer.signals(min_occurrences=1)[0]
        assert signal.mean_change == pytest.approx(changes.mean())
        assert signal.std_change == pytest.approx(changes.std(ddof=1), rel=1e-6)
        assert signal.occurrences == 200

    def test_direction(self):
        trainer = TransitionSignalTrainer()
        trainer.observe("up", 1.0, 3.0)
        trainer.observe("down", 3.0, 1.0)
        signals = {s.name: s for s in trainer.signals(min_occurrences=1)}
        assert signals["up"].direction == "increase"
        assert signals["down"].direction == "decrease"

    def test_min_occurrences_filter(self):
        trainer = TransitionSignalTrainer()
        for _ in range(4):
            trainer.observe("rare", 0.0, 1.0)
        assert trainer.signals(min_occurrences=5) == []
        assert len(trainer.signals(min_occurrences=4)) == 1

    def test_sorted_by_significance(self):
        trainer = TransitionSignalTrainer()
        for _ in range(5):
            trainer.observe("weak", 0.0, 0.1)
            trainer.observe("strong", 0.0, -5.0)
        names = [s.name for s in trainer.signals()]
        assert names == ["strong", "weak"]

    def test_select_triggers_top_k(self):
        trainer = TransitionSignalTrainer()
        for name, change in [("a", 5.0), ("b", 3.0), ("c", 1.0)]:
            for _ in range(5):
                trainer.observe(name, 0.0, change)
        assert trainer.select_triggers(top=2) == ("a", "b")

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TransitionSignalTrainer(window_us=0.0)


class TestTrainOnTrace:
    def test_recovers_phase_transition_from_web_trace(self, web_run):
        """The writev entry must show a CPI increase on real traces."""
        trainer = TransitionSignalTrainer(window_us=10.0)
        used = 0
        for trace in web_run.traces:
            used += trainer.train_on_trace(trace)
        assert used > 0
        signals = {s.name: s for s in trainer.signals(min_occurrences=5)}
        assert "writev" in signals
        assert signals["writev"].direction == "increase"
        assert signals["writev"].mean_change > 1.0

    def test_min_gap_filters_dense_occurrences(self, web_run):
        trace = web_run.traces[0]
        dense = TransitionSignalTrainer()
        sparse = TransitionSignalTrainer()
        n_dense = dense.train_on_trace(trace)
        n_sparse = sparse.train_on_trace(trace, min_occurrence_gap_us=50.0)
        assert n_sparse <= n_dense

    def test_unsupported_metric_rejected(self, web_run):
        trainer = TransitionSignalTrainer(metric="branch_mispredicts")
        with pytest.raises(ValueError):
            trainer.train_on_trace(web_run.traces[0])
