"""Tests for silhouette scoring and cluster-count selection."""

import numpy as np
import pytest

from repro.core.clustering import choose_k, k_medoids, silhouette_score


def blobs(rng, centers, per=8, spread=0.15):
    points = np.concatenate(
        [c + spread * rng.standard_normal(per) for c in centers]
    )
    return points, np.abs(points[:, None] - points[None, :])


class TestSilhouette:
    def test_well_separated_clusters_score_high(self, rng):
        _, matrix = blobs(rng, [0.0, 10.0, 20.0])
        result = k_medoids(matrix, k=3, rng=rng)
        assert silhouette_score(matrix, result) > 0.8

    def test_wrong_k_scores_lower(self, rng):
        _, matrix = blobs(rng, [0.0, 10.0, 20.0])
        right = k_medoids(matrix, k=3, rng=np.random.default_rng(1))
        wrong = k_medoids(matrix, k=6, rng=np.random.default_rng(1))
        assert silhouette_score(matrix, right) > silhouette_score(matrix, wrong)

    def test_single_cluster_rejected(self, rng):
        _, matrix = blobs(rng, [0.0])
        result = k_medoids(matrix, k=1, rng=rng)
        with pytest.raises(ValueError):
            silhouette_score(matrix, result)

    def test_bounded(self, rng):
        points = rng.random(20)
        matrix = np.abs(points[:, None] - points[None, :])
        result = k_medoids(matrix, k=4, rng=rng)
        score = silhouette_score(matrix, result)
        assert -1.0 <= score <= 1.0


class TestChooseK:
    def test_recovers_true_cluster_count(self, rng):
        _, matrix = blobs(rng, [0.0, 10.0, 20.0, 30.0])
        result = choose_k(matrix, k_range=range(2, 9), rng=rng)
        assert len(np.unique(result.labels)) == 4

    def test_two_blobs(self, rng):
        _, matrix = blobs(rng, [0.0, 50.0], per=6)
        result = choose_k(matrix, k_range=range(2, 6), rng=rng)
        assert len(np.unique(result.labels)) == 2

    def test_empty_range_rejected(self, rng):
        _, matrix = blobs(rng, [0.0, 1.0], per=2)
        with pytest.raises(ValueError):
            choose_k(matrix, k_range=range(50, 51), rng=rng)
