"""Tests for dynamic time warping with asynchrony penalty."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dtw import dtw_distance

value_lists = st.lists(
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
penalties = st.floats(0.0, 10.0, allow_nan=False)


def dtw_reference(x, y, p):
    """Straightforward O(mn) dynamic program, for cross-checking the
    vectorized implementation."""
    m, n = len(x), len(y)
    d = np.full((m, n), np.inf)
    d[0][0] = abs(x[0] - y[0])
    for j in range(1, n):
        d[0][j] = d[0][j - 1] + abs(x[0] - y[j]) + p
    for i in range(1, m):
        d[i][0] = d[i - 1][0] + abs(x[i] - y[0]) + p
        for j in range(1, n):
            d[i][j] = abs(x[i] - y[j]) + min(
                d[i - 1][j - 1], d[i - 1][j] + p, d[i][j - 1] + p
            )
    return float(d[m - 1][n - 1])


class TestAgainstReference:
    @given(value_lists, value_lists, penalties)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, x, y, p):
        fast = dtw_distance(x, y, asynchrony_penalty=p)
        slow = dtw_reference(x, y, p)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-9)

    def test_known_small_example(self):
        # x = [0, 1], y = [0, 0, 1]: one asynchronous step absorbs the
        # extra 0 at no metric cost.
        assert dtw_distance([0, 1], [0, 0, 1]) == pytest.approx(0.0)
        assert dtw_distance([0, 1], [0, 0, 1], asynchrony_penalty=2.0) == (
            pytest.approx(2.0)
        )


class TestProperties:
    @given(value_lists, penalties)
    @settings(max_examples=60, deadline=None)
    def test_identical_sequences_zero(self, x, p):
        assert dtw_distance(x, x, asynchrony_penalty=p) == pytest.approx(
            0.0, abs=1e-9
        )

    @given(value_lists, value_lists, penalties)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y, p):
        assert dtw_distance(x, y, p) == pytest.approx(
            dtw_distance(y, x, p), rel=1e-9, abs=1e-9
        )

    @given(value_lists, value_lists)
    @settings(max_examples=60, deadline=None)
    def test_nonnegative(self, x, y):
        assert dtw_distance(x, y) >= 0.0

    @given(value_lists, value_lists, penalties, penalties)
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_penalty(self, x, y, p1, p2):
        lo, hi = sorted((p1, p2))
        assert dtw_distance(x, y, hi) >= dtw_distance(x, y, lo) - 1e-9


class TestTimeShifting:
    def test_plain_dtw_absorbs_shift(self):
        """A shifted peak costs plain DTW nothing but costs L1 a lot."""
        base = np.zeros(20)
        base[10] = 5.0
        shifted = np.zeros(20)
        shifted[12] = 5.0
        assert dtw_distance(base, shifted) == pytest.approx(0.0)

    def test_penalty_charges_for_shift(self):
        base = np.zeros(20)
        base[10] = 5.0
        shifted = np.zeros(20)
        shifted[12] = 5.0
        d = dtw_distance(base, shifted, asynchrony_penalty=1.0)
        assert d > 0.0
        # Far cheaper than the naive element-wise difference (10.0).
        assert d < 10.0

    def test_no_cost_shifting_underestimates(self):
        """The paper's criticism of plain DTW: genuinely different
        sequences can be warped together almost for free."""
        # Two peaks vs one peak: every warp step pays the metric difference
        # at the pointer pair, so one 5-vs-0 mismatch (cost 5) is
        # unavoidable; the penalty additionally charges the two
        # asynchronous steps the unequal lengths force.
        a = np.array([0.0, 5.0, 0.0, 5.0, 0.0])
        b = np.array([0.0, 5.0, 0.0])
        plain = dtw_distance(a, b)
        assert plain == pytest.approx(5.0)
        penalized = dtw_distance(a, b, asynchrony_penalty=4.0)
        assert penalized == pytest.approx(5.0 + 2 * 4.0)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0], [1.0], asynchrony_penalty=-1.0)

    def test_single_elements(self):
        assert dtw_distance([2.0], [5.0]) == pytest.approx(3.0)

    def test_large_sequences_fast(self):
        rng = np.random.default_rng(0)
        x = rng.random(500)
        y = rng.random(500)
        d = dtw_distance(x, y, asynchrony_penalty=0.5)
        assert np.isfinite(d)
