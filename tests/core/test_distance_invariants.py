"""Property/invariant tests for the Section 4.1 differencing measures.

Randomized series from a seeded generator drive metric-space style
invariants: non-negativity, identity, symmetry, and the measure-specific
bounds the paper's classification quality results rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distances import (
    average_metric_distance,
    l1_distance,
    levenshtein_distance,
    unequal_length_penalty,
)
from repro.core.dtw import dtw_distance

SYSCALLS = np.array(["read", "write", "poll", "futex", "open", "close"])


def _random_series(rng, max_len=40, min_len=1):
    length = int(rng.integers(min_len, max_len + 1))
    return rng.uniform(0.0, 10.0, size=length)


def _cases(seed, n):
    rng = np.random.default_rng(seed)
    return [
        (
            _random_series(rng),
            _random_series(rng),
            float(rng.uniform(0.0, 5.0)),
        )
        for _ in range(n)
    ]


class TestL1Distance:
    @pytest.mark.parametrize("x,y,penalty", _cases(seed=101, n=25))
    def test_non_negative_and_symmetric(self, x, y, penalty):
        d = l1_distance(x, y, penalty=penalty)
        assert d >= 0.0
        assert d == pytest.approx(l1_distance(y, x, penalty=penalty))

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=102, n=10))
    def test_identity(self, x, y, penalty):
        assert l1_distance(x, x, penalty=penalty) == 0.0

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=103, n=10))
    def test_length_mismatch_charges_penalty(self, x, y, penalty):
        base = l1_distance(x, y, penalty=0.0)
        charged = l1_distance(x, y, penalty=penalty)
        surplus = abs(len(x) - len(y))
        assert charged == pytest.approx(base + surplus * penalty)

    def test_rejects_negative_penalty_and_empty(self):
        with pytest.raises(ValueError):
            l1_distance([1.0], [1.0], penalty=-0.1)
        with pytest.raises(ValueError):
            l1_distance([], [1.0], penalty=0.0)


class TestAverageMetricDistance:
    @pytest.mark.parametrize("x,y,_", _cases(seed=104, n=15))
    def test_metric_properties(self, x, y, _):
        d = average_metric_distance(x, y)
        assert d >= 0.0
        assert d == pytest.approx(average_metric_distance(y, x))
        assert average_metric_distance(x, x) == 0.0

    @pytest.mark.parametrize("x,y,_", _cases(seed=105, n=15))
    def test_never_exceeds_l1_of_means_bound(self, x, y, _):
        # Collapsing to averages can only lose variation detail: the
        # average distance is bounded by the max pairwise value spread.
        spread = max(x.max(), y.max()) - min(x.min(), y.min())
        assert average_metric_distance(x, y) <= spread + 1e-12


class TestDtwDistance:
    @pytest.mark.parametrize("x,y,penalty", _cases(seed=106, n=25))
    def test_non_negative_and_symmetric(self, x, y, penalty):
        d = dtw_distance(x, y, asynchrony_penalty=penalty)
        assert d >= 0.0
        assert d == pytest.approx(dtw_distance(y, x, asynchrony_penalty=penalty))

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=107, n=10))
    def test_identity(self, x, y, penalty):
        assert dtw_distance(x, x, asynchrony_penalty=penalty) == pytest.approx(0.0)

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=108, n=25))
    def test_penalty_is_monotone(self, x, y, penalty):
        """Charging asynchronous steps can only increase the distance."""
        plain = dtw_distance(x, y, asynchrony_penalty=0.0)
        charged = dtw_distance(x, y, asynchrony_penalty=penalty)
        assert charged >= plain - 1e-9

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=109, n=25))
    def test_bounded_by_l1_on_equal_lengths(self, x, y, penalty):
        """The all-synchronous path is one warp path, so DTW <= its cost."""
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        synchronous_cost = l1_distance(x, y, penalty=0.0)
        assert dtw_distance(x, y, asynchrony_penalty=penalty) <= (
            synchronous_cost + 1e-9
        )

    @pytest.mark.parametrize("x,y,penalty", _cases(seed=110, n=10))
    def test_matches_reference_dp(self, x, y, penalty):
        """The vectorized recurrence equals the textbook O(m*n) DP."""
        x, y = x[:12], y[:12]
        m, n = len(x), len(y)
        dp = np.full((m, n), np.inf)
        for i in range(m):
            for j in range(n):
                cost = abs(x[i] - y[j])
                if i == 0 and j == 0:
                    dp[i, j] = cost
                    continue
                best = np.inf
                if i > 0 and j > 0:
                    best = min(best, dp[i - 1, j - 1])
                if i > 0:
                    best = min(best, dp[i - 1, j] + penalty)
                if j > 0:
                    best = min(best, dp[i, j - 1] + penalty)
                dp[i, j] = cost + best
        assert dtw_distance(x, y, asynchrony_penalty=penalty) == pytest.approx(
            float(dp[-1, -1])
        )

    def test_rejects_negative_penalty_and_empty(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0], [1.0], asynchrony_penalty=-1.0)
        with pytest.raises(ValueError):
            dtw_distance([], [1.0])


def _syscall_sequences(seed, n):
    rng = np.random.default_rng(seed)
    return [
        (
            list(rng.choice(SYSCALLS, size=int(rng.integers(0, 15)))),
            list(rng.choice(SYSCALLS, size=int(rng.integers(0, 15)))),
        )
        for _ in range(n)
    ]


class TestLevenshtein:
    @pytest.mark.parametrize("a,b", _syscall_sequences(seed=111, n=25))
    def test_bounds(self, a, b):
        d = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @pytest.mark.parametrize("a,b", _syscall_sequences(seed=112, n=15))
    def test_identity_and_symmetry(self, a, b):
        assert levenshtein_distance(a, a) == 0
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @pytest.mark.parametrize("a,b", _syscall_sequences(seed=113, n=15))
    def test_triangle_inequality(self, a, b):
        rng = np.random.default_rng(hash((len(a), len(b))) % (2**32))
        c = list(rng.choice(SYSCALLS, size=int(rng.integers(0, 15))))
        assert levenshtein_distance(a, b) <= (
            levenshtein_distance(a, c) + levenshtein_distance(c, b)
        )


class TestUnequalLengthPenalty:
    def test_penalty_within_observed_range(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(1.0, 3.0, size=500)
        penalty = unequal_length_penalty(values, rng)
        assert 0.0 <= penalty <= values.max() - values.min()

    def test_deterministic_given_rng_seed(self):
        values = np.linspace(0.0, 1.0, 200)
        a = unequal_length_penalty(values, np.random.default_rng(3))
        b = unequal_length_penalty(values, np.random.default_rng(3))
        assert a == b

    def test_needs_two_values(self):
        with pytest.raises(ValueError):
            unequal_length_penalty([1.0], np.random.default_rng(0))
