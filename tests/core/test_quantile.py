"""Tests for the P-square online quantile estimator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantile import OnlineQuantile


class TestBasics:
    def test_none_before_observations(self):
        assert OnlineQuantile(q=0.8).estimate() is None

    def test_small_sample_exact(self):
        est = OnlineQuantile(q=0.5)
        for v in (3.0, 1.0, 2.0):
            est.observe(v)
        assert est.estimate() in (1.0, 2.0, 3.0)

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            OnlineQuantile(q=0.0)
        with pytest.raises(ValueError):
            OnlineQuantile(q=1.0)

    def test_count(self):
        est = OnlineQuantile()
        for _ in range(12):
            est.observe(1.0)
        assert est.count == 12


class TestAccuracy:
    @pytest.mark.parametrize("q", [0.2, 0.5, 0.8, 0.95])
    def test_uniform_distribution(self, q):
        rng = np.random.default_rng(7)
        est = OnlineQuantile(q=q)
        data = rng.uniform(0.0, 1.0, 5000)
        for v in data:
            est.observe(v)
        assert est.estimate() == pytest.approx(q, abs=0.05)

    def test_normal_distribution_p80(self):
        rng = np.random.default_rng(8)
        est = OnlineQuantile(q=0.8)
        data = rng.standard_normal(5000) * 2.0 + 10.0
        for v in data:
            est.observe(v)
        assert est.estimate() == pytest.approx(np.percentile(data, 80), rel=0.03)

    def test_heavy_tailed_distribution(self):
        rng = np.random.default_rng(9)
        est = OnlineQuantile(q=0.8)
        data = rng.exponential(1.0, 5000)
        for v in data:
            est.observe(v)
        assert est.estimate() == pytest.approx(np.percentile(data, 80), rel=0.1)

    def test_adapts_to_level_shift(self):
        est = OnlineQuantile(q=0.8)
        rng = np.random.default_rng(10)
        for v in rng.uniform(0, 1, 500):
            est.observe(v)
        for v in rng.uniform(10, 11, 3000):
            est.observe(v)
        assert est.estimate() > 9.0

    def test_constant_stream(self):
        est = OnlineQuantile(q=0.8)
        for _ in range(100):
            est.observe(5.0)
        assert est.estimate() == pytest.approx(5.0)

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_estimate_within_observed_range(self, values):
        est = OnlineQuantile(q=0.8)
        for v in values:
            est.observe(v)
        assert min(values) - 1e-9 <= est.estimate() <= max(values) + 1e-9


class TestEdgeCases:
    """Empty, single-observation, and duplicate-heavy streams (the inputs
    the contention scheduler's adaptive threshold actually feeds it)."""

    def test_empty_estimator_reports_none_and_zero_count(self):
        est = OnlineQuantile(q=0.8)
        assert est.estimate() is None
        assert est.count == 0

    def test_single_observation_is_the_estimate(self):
        est = OnlineQuantile(q=0.8)
        est.observe(0.042)
        assert est.estimate() == 0.042
        assert est.count == 1

    def test_duplicate_heavy_sorted_stream_stays_in_range(self):
        # All duplicates first is the P-square worst case: the estimate
        # drifts but must remain inside the observed value range.
        est = OnlineQuantile(q=0.8)
        for v in [0.0] * 900 + [1.0] * 100:
            est.observe(v)
        assert 0.0 <= est.estimate() <= 1.0

    def test_duplicate_heavy_shuffled_stream_tracks_mass(self):
        rng = np.random.default_rng(17)
        values = np.array([0.0] * 900 + [1.0] * 100)
        rng.shuffle(values)
        est = OnlineQuantile(q=0.8)
        for v in values:
            est.observe(float(v))
        # 80th percentile of 90% zeros is zero; interleaved duplicates
        # must keep the estimate near the duplicate mass.
        assert est.estimate() == pytest.approx(0.0, abs=0.05)

    def test_all_identical_then_one_outlier(self):
        est = OnlineQuantile(q=0.8)
        for _ in range(50):
            est.observe(3.0)
        est.observe(100.0)
        assert 3.0 <= est.estimate() <= 100.0

    def test_alternating_duplicates(self):
        est = OnlineQuantile(q=0.5)
        for _ in range(200):
            est.observe(1.0)
            est.observe(2.0)
        assert 1.0 <= est.estimate() <= 2.0


class TestPreWarmupNearestRank:
    """Before the five-marker warm-up the estimate is the nearest-rank
    order statistic (1-based rank ceil(q*n)), matching the post-warmup
    convention — not the off-by-one int(q*n) index."""

    def test_median_of_two(self):
        est = OnlineQuantile(q=0.5)
        est.observe(1.0)
        est.observe(9.0)
        # ceil(0.5 * 2) = rank 1 -> the lower value, not the upper.
        assert est.estimate() == 1.0

    def test_median_of_four(self):
        est = OnlineQuantile(q=0.5)
        for v in (4.0, 1.0, 3.0, 2.0):
            est.observe(v)
        assert est.estimate() == 2.0

    def test_low_quantile_of_four(self):
        est = OnlineQuantile(q=0.25)
        for v in (4.0, 1.0, 3.0, 2.0):
            est.observe(v)
        assert est.estimate() == 1.0

    def test_high_quantile_of_four(self):
        est = OnlineQuantile(q=0.8)
        for v in (4.0, 1.0, 3.0, 2.0):
            est.observe(v)
        # ceil(0.8 * 4) = rank 4.
        assert est.estimate() == 4.0

    @given(
        st.lists(
            st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=4,
        ),
        st.floats(0.05, 0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_nearest_rank_definition(self, values, q):
        import math

        est = OnlineQuantile(q=q)
        for v in values:
            est.observe(v)
        ordered = sorted(values)
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        assert est.estimate() == ordered[rank - 1]
