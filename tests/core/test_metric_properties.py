"""Deeper property tests on the differencing measures and series math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import l1_distance, levenshtein_distance
from repro.core.dtw import dtw_distance
from repro.core.timeseries import MetricSeries

tokens = st.lists(st.sampled_from("abcd"), min_size=0, max_size=10)
values = st.lists(
    st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)


class TestLevenshteinMetricAxioms:
    """Unit-cost edit distance is a true metric on token sequences."""

    @given(tokens, tokens, tokens)
    @settings(max_examples=80, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        ab = levenshtein_distance(a, b)
        bc = levenshtein_distance(b, c)
        ac = levenshtein_distance(a, c)
        assert ac <= ab + bc

    @given(tokens, tokens)
    @settings(max_examples=50, deadline=None)
    def test_identity_of_indiscernibles(self, a, b):
        distance = levenshtein_distance(a, b)
        if a == b:
            assert distance == 0
        else:
            assert distance > 0

    @given(tokens, tokens)
    @settings(max_examples=50, deadline=None)
    def test_length_difference_lower_bound(self, a, b):
        assert levenshtein_distance(a, b) >= abs(len(a) - len(b))


class TestDtwBounds:
    @given(values, st.data())
    @settings(max_examples=60, deadline=None)
    def test_dtw_bounded_by_synchronous_path(self, x, data):
        """For equal-length sequences the all-synchronous path is valid,
        so DTW never exceeds the element-wise L1 sum."""
        y = data.draw(
            st.lists(
                st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False),
                min_size=len(x),
                max_size=len(x),
            )
        )
        sync_cost = float(np.abs(np.asarray(x) - np.asarray(y)).sum())
        assert dtw_distance(x, y, asynchrony_penalty=3.0) <= sync_cost + 1e-9

    @given(values, values)
    @settings(max_examples=60, deadline=None)
    def test_dtw_lower_bound_endpoint_costs(self, x, y):
        """Every warp path starts at (0,0) and ends at (m,n)."""
        lower = abs(x[0] - y[0])
        assert dtw_distance(x, y) >= lower - 1e-9

    @given(values, values, st.floats(0.0, 5.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_penalized_dtw_at_most_l1(self, x, y, p):
        """With the same per-step penalty, DTW minimizes over a superset of
        the L1 alignment, so it can never exceed Equation 2's L1 distance
        when the penalty per surplus element matches."""
        l1 = l1_distance(x, y, penalty=p)
        # L1's surplus elements correspond to |m-n| asynchronous steps plus
        # the element-wise prefix; the DTW path set includes that path with
        # cost <= l1 + |m-n| * max-value slack.  Use the strict equal-length
        # case for exactness.
        if len(x) == len(y):
            assert dtw_distance(x, y, asynchrony_penalty=p) <= l1 + 1e-9


class TestSeriesRoundTrips:
    @given(values, st.data())
    @settings(max_examples=50, deadline=None)
    def test_prefix_total_length(self, vals, data):
        lengths = data.draw(
            st.lists(
                st.floats(0.5, 10.0, allow_nan=False),
                min_size=len(vals),
                max_size=len(vals),
            )
        )
        series = MetricSeries(values=np.array(vals), lengths=np.array(lengths))
        cut = data.draw(st.floats(0.1, float(sum(lengths))))
        prefix = series.prefix(cut)
        assert prefix.total_length == pytest.approx(min(cut, series.total_length))

    @given(values, st.data())
    @settings(max_examples=50, deadline=None)
    def test_resample_conserves_mass_on_covered_span(self, vals, data):
        lengths = data.draw(
            st.lists(
                st.floats(1.0, 10.0, allow_nan=False),
                min_size=len(vals),
                max_size=len(vals),
            )
        )
        series = MetricSeries(values=np.array(vals), lengths=np.array(lengths))
        window = float(series.total_length)  # one window covering all
        resampled = series.resample(window)
        assert resampled.size == 1
        assert resampled[0] == pytest.approx(series.mean(), rel=1e-9, abs=1e-9)


class TestTraceWindowConsistency:
    def test_window_metrics_match_overall(self, tpcc_run):
        """Windowed counters aggregate back to whole-trace values, up to
        the trailing partial window that window_counters drops by design."""
        window = 25_000
        for trace in tpcc_run.traces[:5]:
            win = trace.window_counters(window)
            covered = win["instructions"].sum()
            assert covered == pytest.approx(
                (trace.total_instructions // window) * window
            )
            assert trace.total_cycles - win["cycles"].sum() >= -1e-6
            # The uncovered remainder is less than one window's worth.
            max_period_cpi = float(
                np.max(trace.cycles / np.maximum(trace.instructions, 1.0))
            )
            assert trace.total_cycles - win["cycles"].sum() <= (
                window * max_period_cpi + 1e-6
            )
            overall_cpi = win["cycles"].sum() / covered
            assert overall_cpi == pytest.approx(trace.overall_cpi(), rel=0.1)

    def test_series_mean_matches_overall_metric(self, tpcc_run):
        trace = tpcc_run.traces[0]
        series = trace.series("l2_refs_per_ins", 25_000)
        assert series.mean() == pytest.approx(
            trace.overall("l2_refs_per_ins"), rel=0.05
        )
