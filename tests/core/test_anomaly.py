"""Tests for anomaly detection (Section 4.3)."""

import numpy as np
import pytest

from repro.core.anomaly import (
    detect_by_centroid_distance,
    detect_multi_metric_pairs,
    group_centroid,
)


def l1(a, b):
    return float(np.abs(np.asarray(a) - np.asarray(b)).sum())


class TestGroupCentroid:
    def test_median_like_point(self):
        points = np.array([0.0, 1.0, 2.0, 10.0])
        matrix = np.abs(points[:, None] - points[None, :])
        assert group_centroid(matrix) == 1

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            group_centroid(np.zeros((2, 3)))


class TestCentroidDistanceDetection:
    def make_group(self):
        # Five similar sequences plus one clear outlier.
        normal = [np.array([1.0, 2.0, 1.0]) + 0.01 * k for k in range(5)]
        outlier = np.array([8.0, 9.0, 8.0])
        return normal + [outlier]

    def test_flags_the_outlier(self):
        sequences = self.make_group()
        cases = detect_by_centroid_distance(
            {"g": range(len(sequences))}, sequences, l1
        )
        assert cases[0].anomaly_index == 5

    def test_reference_is_centroid(self):
        sequences = self.make_group()
        cases = detect_by_centroid_distance(
            {"g": range(len(sequences))}, sequences, l1
        )
        assert cases[0].reference_index in range(5)

    def test_small_groups_skipped(self):
        sequences = self.make_group()[:3]
        cases = detect_by_centroid_distance(
            {"g": range(3)}, sequences, l1, min_group_size=4
        )
        assert cases == []

    def test_top_per_group(self):
        sequences = self.make_group()
        cases = detect_by_centroid_distance(
            {"g": range(len(sequences))}, sequences, l1, top_per_group=3
        )
        assert len(cases) == 3
        scores = [c.score for c in cases]
        assert scores == sorted(scores, reverse=True)

    def test_multiple_groups(self):
        sequences = self.make_group() + self.make_group()
        groups = {"a": range(6), "b": range(6, 12)}
        cases = detect_by_centroid_distance(groups, sequences, l1)
        assert {c.group for c in cases} == {"a", "b"}


class TestMultiMetricDetection:
    def test_finds_same_work_different_cpi_pair(self):
        refs = [
            np.array([1.0, 1.0]),   # A
            np.array([1.0, 1.05]),  # B: same reference stream as A
            np.array([9.0, 9.0]),   # C: different work
        ]
        cpi = [
            np.array([2.0, 2.0]),   # A: normal
            np.array([6.0, 6.0]),   # B: suffers contention
            np.array([2.0, 2.0]),   # C
        ]
        cases = detect_multi_metric_pairs(
            refs, cpi, ref_distance=l1, cpi_distance=l1,
            ref_similarity_quantile=40.0, top_pairs=1,
        )
        case = cases[0]
        assert {case.anomaly_index, case.reference_index} == {0, 1}
        # The higher-CPI member is the anomaly.
        assert case.anomaly_index == 1

    def test_no_candidates_empty(self):
        assert detect_multi_metric_pairs([], [], l1, l1) == []

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            detect_multi_metric_pairs([np.array([1.0])], [], l1, l1)

    def test_candidate_pairs_respected(self):
        refs = [np.array([1.0]), np.array([1.0]), np.array([1.0])]
        cpi = [np.array([1.0]), np.array([9.0]), np.array([5.0])]
        cases = detect_multi_metric_pairs(
            refs, cpi, l1, l1,
            ref_similarity_quantile=100.0,
            candidate_pairs=[(0, 1)],
            top_pairs=5,
        )
        assert len(cases) == 1
        assert {cases[0].anomaly_index, cases[0].reference_index} == {0, 1}
