"""Tests for online behavior predictors (EWMA / vaEWMA, Section 5.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import (
    Ewma,
    LastValue,
    RunningAverage,
    VaEwma,
    evaluate_predictor,
)

value_seqs = st.lists(
    st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=20,
)


class TestLastValue:
    def test_predicts_last(self):
        p = LastValue()
        assert p.predict() is None
        p.observe(3.0)
        p.observe(7.0)
        assert p.predict() == 7.0

    def test_reset(self):
        p = LastValue()
        p.observe(1.0)
        p.reset()
        assert p.predict() is None


class TestRunningAverage:
    def test_weighted_average(self):
        p = RunningAverage()
        p.observe(1.0, length=3.0)
        p.observe(5.0, length=1.0)
        assert p.predict() == pytest.approx(2.0)

    def test_none_before_observation(self):
        assert RunningAverage().predict() is None

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            RunningAverage().observe(1.0, length=0.0)


class TestEwma:
    def test_equation_four(self):
        p = Ewma(alpha=0.5)
        p.observe(10.0)
        p.observe(20.0)
        # E = 0.5*10 + 0.5*20
        assert p.predict() == pytest.approx(15.0)

    def test_first_observation_initializes(self):
        p = Ewma(alpha=0.9)
        p.observe(4.0)
        assert p.predict() == 4.0

    def test_high_alpha_is_stable(self):
        stable = Ewma(alpha=0.9)
        agile = Ewma(alpha=0.1)
        for predictor in (stable, agile):
            predictor.observe(0.0)
            predictor.observe(100.0)
        assert stable.predict() < agile.predict()

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.2, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha=alpha)


class TestVaEwma:
    def test_reduces_to_ewma_at_unit_lengths(self):
        """Equation 5 with t_k = t_hat is exactly Equation 4."""
        ewma = Ewma(alpha=0.6)
        va = VaEwma(alpha=0.6, unit_length=1.0)
        rng = np.random.default_rng(0)
        for value in rng.random(50):
            ewma.observe(value)
            va.observe(value, length=1.0)
            assert va.predict() == pytest.approx(ewma.predict())

    def test_long_observation_ages_more(self):
        """A long sample displaces more history than a short one."""
        short = VaEwma(alpha=0.6, unit_length=1.0)
        long = VaEwma(alpha=0.6, unit_length=1.0)
        for p in (short, long):
            p.observe(0.0, length=1.0)
        short.observe(10.0, length=1.0)
        long.observe(10.0, length=5.0)
        assert long.predict() > short.predict()

    def test_matches_equation_six_expansion(self):
        """The incremental form (Eq. 5) equals the expanded form (Eq. 6)."""
        alpha, t_hat = 0.7, 2.0
        observations = [(3.0, 1.0), (5.0, 4.0), (2.0, 0.5), (8.0, 2.0)]
        p = VaEwma(alpha=alpha, unit_length=t_hat)
        for value, length in observations:
            p.observe(value, length)
        # Expanded: weight of O_i is alpha^(sum_{j>i} t_j/t_hat)*(1-alpha^(t_i/t_hat)),
        # except the first observation which seeds the estimate.
        expected = observations[0][0]
        for value, length in observations[1:]:
            aging = alpha ** (length / t_hat)
            expected = aging * expected + (1 - aging) * value
        assert p.predict() == pytest.approx(expected)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VaEwma(alpha=1.2)
        with pytest.raises(ValueError):
            VaEwma(unit_length=0.0)
        with pytest.raises(ValueError):
            VaEwma().observe(1.0, length=-1.0)

    @given(value_seqs)
    @settings(max_examples=50, deadline=None)
    def test_estimate_within_observed_range(self, values):
        p = VaEwma(alpha=0.5, unit_length=1.0)
        for v in values:
            p.observe(v, length=1.0)
        assert min(values) - 1e-9 <= p.predict() <= max(values) + 1e-9


class TestEvaluatePredictor:
    def test_perfect_on_constant_series(self):
        rmse = evaluate_predictor(LastValue(), [5.0] * 10)
        assert rmse == pytest.approx(0.0)

    def test_last_value_on_alternating_series(self):
        values = [0.0, 1.0] * 5
        rmse = evaluate_predictor(LastValue(), values)
        assert rmse == pytest.approx(1.0)

    def test_average_beats_last_on_noise_around_mean(self):
        rng = np.random.default_rng(1)
        values = 5.0 + rng.standard_normal(200)
        avg_err = evaluate_predictor(RunningAverage(), values)
        last_err = evaluate_predictor(LastValue(), values)
        assert avg_err < last_err

    def test_vaewma_beats_average_on_level_shifts(self):
        """The paper's motivation: adapting filters track behavior changes."""
        values = np.concatenate([np.full(50, 1.0), np.full(50, 10.0)])
        va_err = evaluate_predictor(VaEwma(alpha=0.6), values)
        avg_err = evaluate_predictor(RunningAverage(), values)
        assert va_err < avg_err

    def test_warmup_requires_enough_samples(self):
        with pytest.raises(ValueError):
            evaluate_predictor(LastValue(), [1.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictor(LastValue(), [1.0, 2.0], lengths=[1.0])
