"""Tests for the parallel + cached pairwise-distance engine.

The engine's contract is strict: whatever the jobs/cache configuration,
the returned matrices are bit-identical to the plain serial double loop.
"""

import json
import os

import numpy as np
import pytest

from repro.core.distances import l1_distance
from repro.core.distengine import (
    MIN_PARALLEL_PAIRS,
    DistanceCache,
    DistanceEngine,
    default_cache_path,
    sequence_key,
)
from repro.core.dtw import dtw_distance


def serial_reference(items, distance, symmetric=True):
    """The pre-engine double loop, kept verbatim as the oracle."""
    n = len(items)
    matrix = np.zeros((n, n))
    for i in range(n):
        start = i + 1 if symmetric else 0
        for j in range(start, n):
            if i == j:
                continue
            d = float(distance(items[i], items[j]))
            matrix[i, j] = d
            if symmetric:
                matrix[j, i] = d
    return matrix


def make_series(n, rng, min_len=20, max_len=60):
    return [
        rng.normal(2.0, 0.5, size=rng.integers(min_len, max_len))
        for _ in range(n)
    ]


class TestBitIdentity:
    def test_serial_engine_matches_reference(self):
        rng = np.random.default_rng(0)
        items = make_series(12, rng)
        fn = lambda a, b: dtw_distance(a, b, asynchrony_penalty=0.3)
        engine = DistanceEngine(jobs=1)
        assert np.array_equal(engine.matrix(items, fn), serial_reference(items, fn))

    def test_parallel_engine_matches_reference(self):
        rng = np.random.default_rng(1)
        # Enough pairs to clear MIN_PARALLEL_PAIRS and actually fork.
        items = make_series(16, rng)
        assert 16 * 15 // 2 >= MIN_PARALLEL_PAIRS
        fn = lambda a, b: dtw_distance(a, b, asynchrony_penalty=0.3)
        engine = DistanceEngine(jobs=4, chunk_pairs=7)
        assert np.array_equal(engine.matrix(items, fn), serial_reference(items, fn))

    def test_parallel_non_symmetric_matches_reference(self):
        rng = np.random.default_rng(2)
        items = make_series(14, rng)
        # Deliberately order-sensitive: d(a, b) != d(b, a).
        fn = lambda a, b: float(a.sum() - 0.5 * b.sum())
        engine = DistanceEngine(jobs=3, chunk_pairs=5)
        assert np.array_equal(
            engine.matrix(items, fn, symmetric=False),
            serial_reference(items, fn, symmetric=False),
        )

    def test_cached_engine_matches_reference(self, tmp_path):
        rng = np.random.default_rng(3)
        items = make_series(10, rng)
        fn = lambda a, b: l1_distance(a, b, penalty=0.7)
        cache = DistanceCache(path=str(tmp_path / "d.json"))
        engine = DistanceEngine(jobs=1, cache=cache)
        expected = serial_reference(items, fn)
        assert np.array_equal(
            engine.matrix(items, fn, distance_key="l1:p=0.7"), expected
        )
        # Second pass is served from the cache, still bit-identical.
        assert np.array_equal(
            engine.matrix(items, fn, distance_key="l1:p=0.7"), expected
        )

    def test_empty_and_singleton(self):
        engine = DistanceEngine(jobs=2)
        fn = lambda a, b: abs(a - b)
        assert engine.matrix([], fn).shape == (0, 0)
        assert np.array_equal(engine.matrix([1.0], fn), np.zeros((1, 1)))


class TestCaching:
    def test_second_call_computes_nothing(self):
        rng = np.random.default_rng(4)
        items = make_series(8, rng)
        calls = []

        def fn(a, b):
            calls.append(1)
            return l1_distance(a, b, penalty=0.2)

        engine = DistanceEngine(jobs=1, cache=DistanceCache())
        engine.matrix(items, fn, distance_key="l1:p=0.2")
        first = len(calls)
        assert first == 8 * 7 // 2
        engine.matrix(items, fn, distance_key="l1:p=0.2")
        assert len(calls) == first

    def test_no_distance_key_disables_caching(self):
        items = [np.array([1.0]), np.array([2.0])]
        calls = []

        def fn(a, b):
            calls.append(1)
            return float(abs(a[0] - b[0]))

        engine = DistanceEngine(jobs=1, cache=DistanceCache())
        engine.matrix(items, fn)
        engine.matrix(items, fn)
        assert len(calls) == 2

    def test_symmetric_cache_is_unordered(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0])
        cache = DistanceCache()
        engine = DistanceEngine(jobs=1, cache=cache)
        fn = lambda x, y: l1_distance(x, y, penalty=1.0)
        d_ab = engine.matrix([a, b], fn, distance_key="k")[0, 1]
        d_ba = engine.matrix([b, a], fn, distance_key="k")[0, 1]
        assert d_ab == d_ba
        assert len(cache) == 1

    def test_non_symmetric_cache_is_ordered(self):
        a, b = np.array([1.0, 2.0]), np.array([3.0])
        cache = DistanceCache()
        engine = DistanceEngine(jobs=1, cache=cache)
        fn = lambda x, y: float(x.sum() - y.sum())
        matrix = engine.matrix([a, b], fn, symmetric=False, distance_key="k")
        assert matrix[0, 1] == -matrix[1, 0]
        assert len(cache) == 2

    def test_distinct_keys_do_not_collide(self):
        items = [np.array([0.0, 4.0]), np.array([1.0])]
        cache = DistanceCache()
        engine = DistanceEngine(jobs=1, cache=cache)
        d1 = engine.matrix(
            items, lambda a, b: l1_distance(a, b, penalty=0.0), distance_key="l1:p=0"
        )[0, 1]
        d2 = engine.matrix(
            items, lambda a, b: l1_distance(a, b, penalty=9.0), distance_key="l1:p=9"
        )[0, 1]
        assert d1 != d2

    def test_disk_roundtrip_serves_every_pair(self, tmp_path):
        rng = np.random.default_rng(5)
        items = make_series(9, rng)
        path = str(tmp_path / "cache" / "distances.json")
        fn = lambda a, b: dtw_distance(a, b, asynchrony_penalty=0.1)
        warm = DistanceEngine(jobs=1, cache=DistanceCache(path=path))
        expected = warm.matrix(items, fn, distance_key="dtw:p=0.1")
        assert os.path.exists(path)

        def poisoned(a, b):
            raise AssertionError("cache miss: distance recomputed")

        cold = DistanceEngine(jobs=1, cache=DistanceCache(path=path))
        assert np.array_equal(
            cold.matrix(items, poisoned, distance_key="dtw:p=0.1"), expected
        )

    def test_corrupt_cache_file_starts_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        cache = DistanceCache(path=str(path))
        assert len(cache) == 0

    def test_default_cache_path_layout(self):
        assert default_cache_path().endswith(
            os.path.join("results", ".cache", "distances.json")
        )


class TestPairAPIs:
    def test_pair_distances_explicit_list(self):
        items = [np.array([float(i)]) for i in range(5)]
        pairs = [(0, 4), (1, 3), (2, 2)]
        engine = DistanceEngine(jobs=1)
        fn = lambda a, b: float(abs(a[0] - b[0]))
        assert np.array_equal(
            engine.pair_distances(items, pairs, fn), np.array([4.0, 2.0, 0.0])
        )

    def test_one_to_many_matches_loop(self):
        rng = np.random.default_rng(6)
        probe = rng.normal(size=10)
        others = make_series(7, rng, min_len=5, max_len=15)
        fn = lambda a, b: l1_distance(a, b, penalty=0.4)
        engine = DistanceEngine(jobs=1)
        expected = np.array([float(fn(probe, o)) for o in others])
        assert np.array_equal(engine.one_to_many(probe, others, fn), expected)


class TestSequenceKey:
    def test_content_determines_key(self):
        a = np.array([1.0, 2.0, 3.0])
        assert sequence_key(a) == sequence_key(a.copy())
        assert sequence_key(a) != sequence_key(np.array([1.0, 2.0, 3.5]))

    def test_dtype_and_shape_matter(self):
        assert sequence_key(np.array([1, 2])) != sequence_key(np.array([1.0, 2.0]))
        flat = np.arange(4.0)
        assert sequence_key(flat) != sequence_key(flat.reshape(2, 2))

    def test_token_sequences(self):
        assert sequence_key(["read", "write"]) == sequence_key(("read", "write"))
        assert sequence_key(["read", "write"]) != sequence_key(["write", "read"])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            sequence_key(object())


class TestValidation:
    def test_bad_jobs(self):
        with pytest.raises(ValueError):
            DistanceEngine(jobs=0)

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            DistanceEngine(chunk_pairs=0)
