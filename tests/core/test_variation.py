"""Tests for inter/intra-request variation measurement (Figure 3)."""

import numpy as np
import pytest

from repro.core.variation import (
    captured_variation,
    inter_request_variation,
    variation_report,
)


class TestOnRealTraces:
    def test_intra_exceeds_inter_for_web(self, web_run):
        """The paper's core Figure 3 finding for non-TPCH applications."""
        inter = inter_request_variation(web_run.traces, "cpi")
        intra = captured_variation(web_run.traces, "cpi")
        assert intra > 1.5 * inter

    def test_all_metrics_computable(self, web_run):
        report = variation_report(
            web_run.traces, ("cpi", "l2_refs_per_ins", "l2_miss_ratio")
        )
        for metric, values in report.items():
            assert values["inter_request"] >= 0
            assert values["with_intra_request"] >= 0

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            inter_request_variation([], "cpi")
        with pytest.raises(ValueError):
            captured_variation([], "cpi")

    def test_single_request_inter_near_zero(self, tpch_run):
        single = tpch_run.traces[:1]
        assert inter_request_variation(single, "cpi") == pytest.approx(0.0, abs=1e-9)
        # ... but its intra-request variation is real.
        assert captured_variation(single, "cpi") > 0.01
