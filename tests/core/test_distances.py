"""Tests for the non-DTW differencing measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distances import (
    average_metric_distance,
    l1_distance,
    levenshtein_distance,
    unequal_length_penalty,
)

value_lists = st.lists(
    st.floats(-50, 50, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=15,
)
token_lists = st.lists(st.sampled_from("abcde"), min_size=0, max_size=12)


def levenshtein_reference(a, b):
    """Textbook recursive edit distance with memoization."""
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def rec(i, j):
        if i == 0:
            return j
        if j == 0:
            return i
        return min(
            rec(i - 1, j - 1) + (a[i - 1] != b[j - 1]),
            rec(i - 1, j) + 1,
            rec(i, j - 1) + 1,
        )

    return rec(len(a), len(b))


class TestL1:
    def test_equal_length_sum_of_abs_diffs(self):
        assert l1_distance([1, 2, 3], [2, 2, 5], penalty=9.0) == pytest.approx(3.0)

    def test_length_penalty_applied_per_surplus_element(self):
        # Common prefix differs by 0; 2 surplus elements x penalty 3.
        assert l1_distance([1.0], [1.0, 5.0, 7.0], penalty=3.0) == pytest.approx(6.0)

    def test_identical_zero(self):
        assert l1_distance([1, 2], [1, 2], penalty=1.0) == 0.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            l1_distance([1.0], [1.0], penalty=-1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            l1_distance([], [], penalty=1.0)

    @given(value_lists, value_lists, st.floats(0, 10, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, x, y, p):
        assert l1_distance(x, y, p) == pytest.approx(l1_distance(y, x, p))

    @given(value_lists, st.floats(0, 10, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, x, p):
        assert l1_distance(x, x, p) == 0.0


class TestAverageMetric:
    def test_known_value(self):
        assert average_metric_distance([1.0, 3.0], [4.0]) == pytest.approx(2.0)

    def test_insensitive_to_pattern(self):
        """The prior-work signature's blind spot: different patterns with
        equal averages are indistinguishable."""
        spiky = [0.0, 10.0]
        flat = [5.0, 5.0]
        assert average_metric_distance(spiky, flat) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_metric_distance([], [1.0])


class TestLevenshtein:
    @given(token_lists, token_lists)
    @settings(max_examples=120, deadline=None)
    def test_matches_reference(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_reference(
            tuple(a), tuple(b)
        )

    def test_known_example(self):
        assert levenshtein_distance(list("kitten"), list("sitting")) == 3

    def test_empty_cases(self):
        assert levenshtein_distance([], ["a", "b"]) == 2
        assert levenshtein_distance(["a"], []) == 1
        assert levenshtein_distance([], []) == 0

    def test_arbitrary_tokens(self):
        a = ["writev", "read", "poll"]
        b = ["writev", "poll"]
        assert levenshtein_distance(a, b) == 1

    @given(token_lists, token_lists)
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(token_lists)
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(token_lists, token_lists)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))


class TestUnequalLengthPenalty:
    def test_constant_values_zero_penalty(self, rng):
        assert unequal_length_penalty([2.0] * 10, rng) == 0.0

    def test_captures_peak_difference(self, rng):
        values = np.concatenate([np.ones(99), [100.0]])
        p = unequal_length_penalty(values, rng, n_pairs=50_000)
        assert p > 50.0  # 99-percentile pair difference sees the peak

    def test_requires_two_values(self, rng):
        with pytest.raises(ValueError):
            unequal_length_penalty([1.0], rng)

    def test_samples_distinct_pairs_only(self, rng):
        # Regression: with the pool [0, 1] every *distinct* ordered pair
        # differs by exactly 1, so any percentile of the pair-difference
        # distribution is exactly 1.0.  Sampling that allowed i == j drew
        # an artificial zero difference half the time here, collapsing
        # the median (and deflating high percentiles on small pools).
        assert unequal_length_penalty([0.0, 1.0], rng, q=50.0) == 1.0
        assert unequal_length_penalty([0.0, 1.0], rng) == 1.0  # q=99

    def test_deterministic_given_rng_state(self):
        values = np.random.default_rng(3).normal(size=200)
        first = unequal_length_penalty(values, np.random.default_rng(7))
        second = unequal_length_penalty(values, np.random.default_rng(7))
        assert first == second
