"""Property and fuzz tests for the pruned + batched DTW kernel layer.

The exactness contracts under test (see :mod:`repro.core.kernels`):

* every lower bound is admissible — ``lb <= true penalty-DTW distance``
  for arbitrary sequence pairs and penalties;
* the pruned and batched kernels agree with a brute-force O(m*n)
  reference DP, and are *bit-identical* to :func:`repro.core.dtw.
  dtw_distance` wherever they return a finite distance;
* :func:`argmin_distance` returns exactly what a naive full scan with
  ``np.argmin`` returns — index (first-minimum tie-breaking included)
  and distance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distengine import DistanceEngine
from repro.core.dtw import dtw_distance
from repro.core.kernels import (
    KERNELS_ENV,
    PaddedBank,
    PenaltyDtw,
    PrefixL1Sweeper,
    argmin_distance,
    dtw_distance_pruned,
    dtw_one_to_many,
    kernels_enabled,
    l1_prefix_distances,
    lb_one_to_many,
    lb_penalty_dtw,
)

value_lists = st.lists(
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=12,
)
penalties = st.floats(0.0, 10.0, allow_nan=False)
banks = st.lists(value_lists, min_size=1, max_size=8)


def dtw_reference(x, y, p):
    """Brute-force O(mn) dynamic program (independent of repro.core.dtw)."""
    m, n = len(x), len(y)
    d = np.full((m, n), np.inf)
    d[0][0] = abs(x[0] - y[0])
    for j in range(1, n):
        d[0][j] = d[0][j - 1] + abs(x[0] - y[j]) + p
    for i in range(1, m):
        d[i][0] = d[i - 1][0] + abs(x[i] - y[0]) + p
        for j in range(1, n):
            d[i][j] = abs(x[i] - y[j]) + min(
                d[i - 1][j - 1], d[i - 1][j] + p, d[i][j - 1] + p
            )
    return float(d[m - 1][n - 1])


def random_bank(rng, n_rows=30, min_len=3, max_len=40):
    return [
        rng.normal(2.0, 1.0, size=int(rng.integers(min_len, max_len + 1)))
        for _ in range(n_rows)
    ]


class TestLowerBounds:
    @given(value_lists, value_lists, penalties)
    @settings(max_examples=150, deadline=None)
    def test_admissible_against_reference(self, x, y, p):
        assert lb_penalty_dtw(x, y, p) <= dtw_reference(x, y, p) + 1e-9

    @given(value_lists, banks, penalties)
    @settings(max_examples=60, deadline=None)
    def test_vectorized_matches_scalar(self, x, rows, p):
        bounds = lb_one_to_many(x, PaddedBank(rows), p)
        expected = [lb_penalty_dtw(x, row, p) for row in rows]
        assert np.array_equal(bounds, np.array(expected))

    def test_single_element_pair_has_no_last_term(self):
        # One-cell warp path: first and last cell coincide.
        assert lb_penalty_dtw([3.0], [5.0], 10.0) == 2.0
        assert dtw_distance([3.0], [5.0], asynchrony_penalty=10.0) == 2.0

    def test_length_gap_term(self):
        # Identical constant values: the whole bound is the length gap.
        assert lb_penalty_dtw([1.0] * 5, [1.0] * 2, 3.0) == 9.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            lb_penalty_dtw([1.0], [1.0], -0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lb_penalty_dtw([], [1.0], 0.0)


class TestPrunedSerial:
    @given(value_lists, value_lists, penalties)
    @settings(max_examples=100, deadline=None)
    def test_no_cutoff_bit_identical(self, x, y, p):
        assert dtw_distance_pruned(x, y, p) == dtw_distance(
            x, y, asynchrony_penalty=p
        )

    @given(value_lists, value_lists, penalties, st.floats(0, 200))
    @settings(max_examples=100, deadline=None)
    def test_cutoff_exact(self, x, y, p, cutoff):
        true = dtw_distance(x, y, asynchrony_penalty=p)
        pruned = dtw_distance_pruned(x, y, p, cutoff=cutoff)
        if true <= cutoff:
            assert pruned == true  # bit-identical, cutoff ties included
        else:
            assert pruned == np.inf

    def test_cutoff_equal_to_distance_is_kept(self):
        d = dtw_distance([0.0, 4.0], [1.0, 2.0], asynchrony_penalty=0.5)
        assert dtw_distance_pruned([0.0, 4.0], [1.0, 2.0], 0.5, cutoff=d) == d

    def test_abandons_below_distance(self):
        assert (
            dtw_distance_pruned([0.0, 4.0], [1.0, 2.0], 0.5, cutoff=0.5)
            == np.inf
        )


class TestBatchedOneToMany:
    @given(value_lists, banks, penalties)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_serial_loop(self, x, rows, p):
        batched = dtw_one_to_many(x, rows, p)
        serial = np.array(
            [dtw_distance(x, row, asynchrony_penalty=p) for row in rows]
        )
        assert np.array_equal(batched, serial)

    @given(value_lists, banks, penalties, st.floats(0, 100))
    @settings(max_examples=80, deadline=None)
    def test_cutoff_reports_inf_only_above(self, x, rows, p, cutoff):
        batched = dtw_one_to_many(x, rows, p, cutoff=cutoff)
        for got, row in zip(batched, rows):
            true = dtw_distance(x, row, asynchrony_penalty=p)
            if true <= cutoff:
                assert got == true
            else:
                assert got == np.inf

    def test_large_random_bank_bit_identical(self):
        rng = np.random.default_rng(42)
        rows = random_bank(rng, n_rows=50)
        for p in (0.0, 0.3, 2.0):
            query = rng.normal(2.0, 1.0, size=25)
            batched = dtw_one_to_many(query, rows, p)
            serial = np.array(
                [dtw_distance(query, r, asynchrony_penalty=p) for r in rows]
            )
            assert np.array_equal(batched, serial)

    def test_compaction_path_bit_identical(self):
        # A tight cutoff forces mass abandonment, exercising the
        # survivor-compaction branch.
        rng = np.random.default_rng(3)
        rows = random_bank(rng, n_rows=64)
        query = np.asarray(rows[17])
        cutoff = dtw_distance(query, rows[17]) + 1e-9
        batched = dtw_one_to_many(query, rows, 0.4, cutoff=cutoff)
        assert batched[17] == 0.0
        for got, row in zip(batched, rows):
            true = dtw_distance(query, row, asynchrony_penalty=0.4)
            assert got == (true if true <= cutoff else np.inf)


class TestArgminDistance:
    @given(value_lists, banks, penalties)
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_full_scan(self, x, rows, p):
        index, distance = argmin_distance(x, rows, p)
        naive = np.array(
            [dtw_distance(x, row, asynchrony_penalty=p) for row in rows]
        )
        assert index == int(np.argmin(naive))
        assert distance == naive[index]

    @given(st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_block_size_does_not_change_answer(self, block_size):
        rng = np.random.default_rng(11)
        rows = random_bank(rng, n_rows=40)
        query = rng.normal(2.0, 1.0, size=30)
        naive = np.array(
            [dtw_distance(query, r, asynchrony_penalty=0.4) for r in rows]
        )
        index, distance = argmin_distance(
            query, rows, 0.4, block_size=block_size
        )
        assert index == int(np.argmin(naive))
        assert distance == naive[index]

    def test_tie_returns_first_index(self):
        # Rows 1 and 3 are identical, both at distance zero from the query.
        rows = [[5.0, 5.0], [1.0, 2.0], [9.0], [1.0, 2.0]]
        index, distance = argmin_distance([1.0, 2.0], rows, 0.7)
        assert (index, distance) == (1, 0.0)

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            argmin_distance([1.0], [[1.0]], 0.0, block_size=0)


class TestPaddedBank:
    def test_rejects_empty_bank(self):
        with pytest.raises(ValueError):
            PaddedBank([])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            PaddedBank([[1.0], []])

    def test_rejects_multidimensional(self):
        with pytest.raises(ValueError):
            PaddedBank([np.zeros((2, 2))])

    def test_padding_and_lengths(self):
        bank = PaddedBank([[1.0, 2.0, 3.0], [4.0]])
        assert len(bank) == 2
        assert list(bank.lengths) == [3, 1]
        assert np.array_equal(bank.matrix, [[1.0, 2.0, 3.0], [4.0, 0.0, 0.0]])

    def test_subset_copies_rows(self):
        bank = PaddedBank([[1.0, 2.0], [3.0], [4.0, 5.0]])
        sub = bank.subset(np.array([2, 0]))
        assert np.array_equal(sub.matrix, [[4.0, 5.0], [1.0, 2.0]])
        assert list(sub.lengths) == [2, 2]


class TestPenaltyDtw:
    def test_callable_equals_dtw_distance(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=12)
        y = rng.normal(size=9)
        kernel = PenaltyDtw(0.6)
        assert kernel(x, y) == dtw_distance(x, y, asynchrony_penalty=0.6)

    def test_distance_key_round_trips_penalty(self):
        assert PenaltyDtw(0.4).distance_key == f"dtw:p={0.4!r}"
        assert PenaltyDtw(0.0).distance_key != PenaltyDtw(0.5).distance_key

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            PenaltyDtw(-0.1)

    def test_argmin_method(self):
        rows = [[1.0, 5.0], [2.0, 2.0]]
        assert PenaltyDtw(0.2).argmin([2.0, 2.0], rows) == (1, 0.0)


class TestEngineRouting:
    def _matrix(self, items, kernel):
        return DistanceEngine().matrix(items, kernel)

    def test_batched_matrix_bit_identical_to_serial_callable(self):
        rng = np.random.default_rng(9)
        items = random_bank(rng, n_rows=12)
        kernel = PenaltyDtw(0.4)
        batched = self._matrix(items, kernel)
        serial = self._matrix(
            items, lambda a, b: dtw_distance(a, b, asynchrony_penalty=0.4)
        )
        assert np.array_equal(batched, serial)

    def test_toggle_disables_routing_with_identical_results(self, monkeypatch):
        rng = np.random.default_rng(10)
        items = random_bank(rng, n_rows=10)
        kernel = PenaltyDtw(0.3)
        monkeypatch.setenv(KERNELS_ENV, "0")
        assert not kernels_enabled()
        off = self._matrix(items, kernel)
        monkeypatch.setenv(KERNELS_ENV, "1")
        assert kernels_enabled()
        on = self._matrix(items, kernel)
        assert np.array_equal(on, off)


class TestL1PrefixKernels:
    @given(banks, value_lists, penalties)
    @settings(max_examples=60, deadline=None)
    def test_prefix_distances_match_scalar_l1(self, rows, partial, p):
        from repro.core.distances import l1_distance

        bank = PaddedBank(rows)
        got = l1_prefix_distances(bank, partial, p)
        partial = np.asarray(partial, dtype=float)
        expected = [
            l1_distance(partial, np.asarray(row)[: partial.size], p)
            for row in rows
        ]
        assert got == pytest.approx(expected, abs=1e-12)

    @given(banks, value_lists, penalties)
    @settings(max_examples=60, deadline=None)
    def test_sweeper_start_equals_incremental_extend(self, rows, pattern, p):
        sweeper = PrefixL1Sweeper(PaddedBank(rows), p)
        rebuilt = sweeper.start(pattern)
        incremental = np.zeros(len(rows))
        for w, value in enumerate(pattern):
            sweeper.extend(incremental, w, float(value))
        assert np.array_equal(rebuilt, incremental)

    def test_extend_beyond_bank_width_charges_penalty(self):
        sweeper = PrefixL1Sweeper(PaddedBank([[1.0, 2.0]]), 3.0)
        distances = sweeper.start([1.0, 2.0, 9.0])
        assert distances[0] == 3.0  # exact prefix + one surplus window

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            PrefixL1Sweeper(PaddedBank([[1.0]]), -1.0)
