"""Tests for period-weighted metric series."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeseries import MetricSeries


def series(values, lengths=None):
    values = np.asarray(values, dtype=float)
    if lengths is None:
        lengths = np.ones_like(values)
    return MetricSeries(values=values, lengths=np.asarray(lengths, dtype=float))


class TestConstruction:
    def test_basic(self):
        s = series([1.0, 2.0], [1.0, 3.0])
        assert len(s) == 2
        assert s.total_length == 4.0

    def test_mean_weighted(self):
        s = series([1.0, 3.0], [3.0, 1.0])
        assert s.mean() == pytest.approx(1.5)

    def test_cov_delegates_to_equation_one(self):
        s = series([1.0, 3.0])
        assert s.coefficient_of_variation() == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series([])

    def test_nonpositive_lengths_rejected(self):
        with pytest.raises(ValueError):
            series([1.0], [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MetricSeries(values=np.array([1.0]), lengths=np.array([1.0, 2.0]))


class TestPrefix:
    def test_exact_cut(self):
        s = series([1.0, 2.0, 3.0], [10.0, 10.0, 10.0])
        p = s.prefix(20.0)
        assert len(p) == 2
        assert p.total_length == pytest.approx(20.0)

    def test_straddling_period_truncated(self):
        s = series([1.0, 2.0], [10.0, 10.0])
        p = s.prefix(15.0)
        assert len(p) == 2
        assert p.lengths[1] == pytest.approx(5.0)

    def test_longer_than_series_returns_all(self):
        s = series([1.0, 2.0], [10.0, 10.0])
        assert s.prefix(100.0) is s

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            series([1.0]).prefix(0.0)


class TestResample:
    def test_uniform_series_unchanged(self):
        s = series([2.0] * 10, [5.0] * 10)
        resampled = s.resample(10.0)
        assert np.allclose(resampled, 2.0)

    def test_mass_conserved_on_aligned_windows(self):
        s = series([1.0, 3.0], [10.0, 10.0])
        resampled = s.resample(5.0)
        assert resampled.sum() * 5.0 == pytest.approx(1.0 * 10 + 3.0 * 10)

    def test_window_averages_overlapping_periods(self):
        s = series([0.0, 10.0], [5.0, 5.0])
        resampled = s.resample(10.0)
        assert resampled[0] == pytest.approx(5.0)

    def test_short_trailing_window_dropped(self):
        s = series([1.0, 100.0], [10.0, 1.0])
        resampled = s.resample(10.0)
        assert len(resampled) == 1  # 1-length tail < 25% of window

    def test_substantial_trailing_window_kept(self):
        s = series([1.0, 100.0], [10.0, 5.0])
        resampled = s.resample(10.0)
        assert len(resampled) == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            series([1.0]).resample(0.0)

    @given(
        st.lists(st.floats(0.1, 10.0, allow_nan=False), min_size=1, max_size=10),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_resampled_values_within_range(self, values, data):
        lengths = data.draw(
            st.lists(
                st.floats(0.5, 20.0, allow_nan=False),
                min_size=len(values),
                max_size=len(values),
            )
        )
        s = series(values, lengths)
        resampled = s.resample(data.draw(st.floats(0.5, 30.0)))
        assert np.all(resampled >= min(values) - 1e-9)
        assert np.all(resampled <= max(values) + 1e-9)
