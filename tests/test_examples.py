"""Every shipped example must run end to end (they are documentation)."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def load_module(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_present(self):
        names = {p.stem for p in EXAMPLES}
        assert {
            "quickstart",
            "request_classification",
            "adaptive_scheduling",
            "online_prediction",
            "capacity_planning",
            "distributed_tiers",
            "serve_fleet",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_runs(self, path, capsys):
        module = load_module(path)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
