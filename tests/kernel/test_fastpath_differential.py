"""Differential spine: fastpath vs. reference must be byte-identical.

Every test here runs the same configuration through
:class:`~repro.kernel.fastpath.FastpathSimulator` and
:class:`~repro.kernel.fastpath.ReferenceSimulator` and demands that
*everything observable* matches to the byte: the serialized JSONL event
stream, every per-request counter array (compensated and raw), wall
cycles, shed counts, sampler tallies, and the open-system latency
records.  The fast path is an optimization, not a model change — any
single-bit divergence is a bug, so no tolerances appear anywhere in
this file.

The grid deliberately crosses the axes that exercise different parts of
the hot path: all registry workloads (single- and multi-tier), all four
sampling techniques (interrupt rows, ratecall rows, the trigger
predicate), open- vs. closed-loop arrivals, non-trivial dispatch, the
contention-easing scheduler (resched events), bounded-admission
overload (shedding), and distributed tier placement (network hand-off
events).  The workload grid additionally crosses the generation fast
path (``REPRO_GEN_FASTPATH`` on/off), so every cell is checked with
both the batched and the reference request synthesizers.
"""

import itertools
import json

import pytest

from repro.hardware.platform import cluster_machine
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.fastpath import (
    FASTPATH_ENV,
    FastpathSimulator,
    ReferenceSimulator,
    fastpath_enabled,
)
from repro.kernel.sampling import SamplingMode, SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import TraceCollector, events_to_jsonl
from repro.traffic import (
    JoinShortestQueue,
    LeastOutstandingWork,
    OnOffArrivals,
    PoissonArrivals,
    RandomDispatch,
    TrafficConfig,
)
from repro.workloads.genfast import (
    GEN_FASTPATH_ENV,
    FastTpccWorkload,
    gen_fastpath_enabled,
)
from repro.workloads.registry import (
    available_workloads,
    make_faulted_workload,
    make_workload,
)
from repro.workloads.tpcc import TpccWorkload

TRACE_FIELDS = (
    "start",
    "end",
    "core",
    "cycles",
    "instructions",
    "l2_refs",
    "l2_misses",
    "raw_cycles",
    "raw_instructions",
    "raw_l2_refs",
    "raw_l2_misses",
)

SAMPLING_POLICIES = {
    "cs_only": SamplingPolicy(mode=SamplingMode.CONTEXT_SWITCH_ONLY),
    "interrupt": SamplingPolicy.interrupt(50.0),
    "syscall": SamplingPolicy.syscall_triggered(80.0, 400.0),
    "transition": SamplingPolicy.transition_signal(
        80.0, 400.0, {"read", "stat", "write"}
    ),
}


def _run(sim_cls, workload_name, config_factory, faults=None, **config_kwargs):
    collector = TraceCollector(capacity=500_000)
    config_kwargs.setdefault("num_requests", 20)
    config_kwargs.setdefault("seed", 7)
    if config_factory is not None:
        # Fresh stateful objects (schedulers learn across runs) so the
        # reference run never sees state the fastpath run accumulated.
        config_kwargs.update(config_factory())
    config = SimConfig(collector=collector, **config_kwargs)
    workload = (
        make_faulted_workload(workload_name, faults)
        if faults
        else make_workload(workload_name)
    )
    result = sim_cls(workload, config).run()
    return result, collector


def _latency_fingerprint(store):
    """Exact (not summarized) view of the latency store."""
    if store is None:
        return None
    records = [
        (r.request_id, r.kind, r.tenant, r.arrival_cycle, r.start_cycle,
         r.completion_cycle)
        for r in store.records
    ]
    return records, store.shed, json.dumps(store.summary(), sort_keys=True)


def assert_identical(workload_name, config_factory=None, faults=None,
                     **config_kwargs):
    fast, fast_col = _run(
        FastpathSimulator, workload_name, config_factory, faults=faults,
        **config_kwargs
    )
    ref, ref_col = _run(
        ReferenceSimulator, workload_name, config_factory, faults=faults,
        **config_kwargs
    )

    fast_jsonl = events_to_jsonl(fast_col.events, dropped=fast_col.dropped)
    ref_jsonl = events_to_jsonl(ref_col.events, dropped=ref_col.dropped)
    if fast_jsonl != ref_jsonl:
        # Don't hand pytest two multi-megabyte strings to diff; report
        # the first diverging line instead.
        for lineno, (fast_line, ref_line) in enumerate(
            zip(fast_jsonl.splitlines(), ref_jsonl.splitlines()), start=1
        ):
            if fast_line != ref_line:
                pytest.fail(
                    f"{workload_name}: event JSONL diverged at line {lineno}:\n"
                    f"  fastpath:  {fast_line}\n  reference: {ref_line}"
                )
        pytest.fail(
            f"{workload_name}: event JSONL diverged in length "
            f"({len(fast_jsonl)} vs {len(ref_jsonl)} bytes)"
        )
    assert fast.wall_cycles == ref.wall_cycles
    assert fast.requests_shed == ref.requests_shed
    assert fast.sampler_stats.as_dict() == ref.sampler_stats.as_dict()
    assert fast.timeline_cycles.tobytes() == ref.timeline_cycles.tobytes()
    assert fast.busy_cycles_per_core.tobytes() == ref.busy_cycles_per_core.tobytes()
    assert _latency_fingerprint(fast.latency) == _latency_fingerprint(ref.latency)
    assert len(fast.traces) == len(ref.traces)
    for fast_trace, ref_trace in zip(fast.traces, ref.traces):
        assert fast_trace.spec.request_id == ref_trace.spec.request_id
        assert fast_trace.arrival_cycle == ref_trace.arrival_cycle
        assert fast_trace.completion_cycle == ref_trace.completion_cycle
        assert fast_trace.syscall_events == ref_trace.syscall_events
        for field in TRACE_FIELDS:
            assert getattr(fast_trace, field).tobytes() == (
                getattr(ref_trace, field).tobytes()
            ), f"{workload_name}: trace field {field!r} diverged"
    return fast, ref


@pytest.fixture(params=("gen_fast", "gen_ref"))
def gen_mode(request, monkeypatch):
    """Run the decorated test under both generation fast-path routings.

    ``_run`` constructs workloads through :func:`make_workload`, which
    reads ``REPRO_GEN_FASTPATH`` at construction time, so pinning the
    env var here routes every workload the test builds.
    """
    monkeypatch.setenv(
        GEN_FASTPATH_ENV, "1" if request.param == "gen_fast" else "0"
    )
    return request.param


class TestWorkloadSamplingGrid:
    """All registry workloads x all four sampling techniques x both
    generation routings."""

    @pytest.mark.parametrize(
        "workload,policy",
        list(itertools.product(available_workloads(), SAMPLING_POLICIES)),
        ids=lambda value: str(value),
    )
    def test_byte_identical(self, workload, policy, gen_mode):
        assert_identical(workload, sampling=SAMPLING_POLICIES[policy])


#: One spec per taxonomy kind plus a composed schedule (concurrent
#: clauses, an activation window, a correlated burst) — the fault layer
#: rewrites request specs before simulation, so every kind must survive
#: both simulator implementations and both generation routings.
FAULT_SPECS = (
    "lock_stall:0.4",
    "lock_convoy:0.4",
    "cache_thrash:0.35",
    "membw_saturation:0.35",
    "gc_pause:0.3",
    "slowdown:0.4",
    "slow_replica:0.4",
    "gray_degradation:0.5",
    "cache_thrash:0.3+gc_pause:0.2@0-10*2",
)


class TestFaultedWorkloadGrid:
    """Every fault kind (and a composed schedule) x both simulator
    implementations x both generation routings: byte-identical."""

    @pytest.mark.parametrize("faults", FAULT_SPECS, ids=lambda s: s)
    def test_byte_identical(self, faults, gen_mode):
        fast, ref = assert_identical(
            "tpcc", faults=faults, sampling=SAMPLING_POLICIES["interrupt"]
        )
        # The schedule must actually have injected something.
        assert any(
            trace.spec.metadata.get("injected_fault") is not None
            for trace in fast.traces
        )


class TestTrafficLayer:
    """Open-loop arrivals, non-trivial dispatch, overload shedding."""

    def test_poisson_jsq_overload_sheds_identically(self, gen_mode):
        traffic = TrafficConfig(
            arrivals=PoissonArrivals(rate_per_s=20_000.0),
            dispatch=JoinShortestQueue(),
            admission_limit=6,
        )
        fast, ref = assert_identical(
            "webserver", traffic=traffic, num_requests=40, concurrency=6
        )
        # The scenario must actually exercise the shedding path.
        assert fast.requests_shed > 0
        assert fast.requests_shed == ref.requests_shed

    def test_onoff_random_dispatch(self):
        traffic = TrafficConfig(
            arrivals=OnOffArrivals(
                rate_on_per_s=8_000.0,
                rate_off_per_s=200.0,
                on_ms=2.0,
                off_ms=2.0,
            ),
            dispatch=RandomDispatch(),
        )
        assert_identical(
            "tpcc",
            traffic=traffic,
            sampling=SAMPLING_POLICIES["syscall"],
            num_requests=24,
        )

    def test_least_outstanding_work_dispatch(self):
        traffic = TrafficConfig(
            arrivals=PoissonArrivals(rate_per_s=4_000.0),
            dispatch=LeastOutstandingWork(),
        )
        assert_identical("webwork", traffic=traffic, num_requests=24)

    def test_legacy_arrival_rate_shorthand(self):
        assert_identical("mbench_data", arrival_rate_per_s=5_000.0)


class TestSchedulerAndPlacement:
    """Resched events and cross-machine stage hand-offs."""

    def test_contention_easing_scheduler(self):
        assert_identical(
            "webserver",
            config_factory=lambda: {
                "scheduler": ContentionEasingScheduler(resched_interval_us=500.0)
            },
            sampling=SAMPLING_POLICIES["interrupt"],
        )

    def test_adaptive_contention_scheduler(self):
        assert_identical(
            "webwork",
            config_factory=lambda: {
                "scheduler": ContentionEasingScheduler(
                    adaptive_threshold=True, adaptive_warmup=20
                )
            },
            num_requests=12,
        )

    def test_distributed_tier_placement(self):
        assert_identical(
            "rubis",
            machine=cluster_machine(2, 4),
            tier_placement={"mysql": 1, "jboss": 1},
            network_delay_us=80.0,
            num_requests=12,
        )

    def test_high_usage_timeline(self):
        assert_identical("tpcc", high_usage_mpi_threshold=0.004)


class TestRouting:
    """The environment kill switch routes construction, not behavior."""

    def _construct(self):
        return ServerSimulator(make_workload("mbench_spin"), SimConfig(num_requests=2))

    def test_default_routes_to_fastpath(self, monkeypatch):
        monkeypatch.delenv(FASTPATH_ENV, raising=False)
        assert fastpath_enabled()
        assert type(self._construct()) is FastpathSimulator

    def test_kill_switch_routes_to_base(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "0")
        assert not fastpath_enabled()
        assert type(self._construct()) is ServerSimulator

    def test_reference_subclass_always_bypasses(self, monkeypatch):
        monkeypatch.setenv(FASTPATH_ENV, "1")
        sim = ReferenceSimulator(make_workload("mbench_spin"), SimConfig(num_requests=2))
        assert type(sim) is ReferenceSimulator

    def test_env_positions_agree_end_to_end(self, monkeypatch):
        """Plain construction under both env positions, identical output."""
        outputs = {}
        for value in ("1", "0"):
            monkeypatch.setenv(FASTPATH_ENV, value)
            collector = TraceCollector(capacity=100_000)
            config = SimConfig(num_requests=10, seed=3, collector=collector)
            result = ServerSimulator(make_workload("tpcc"), config).run()
            outputs[value] = (
                events_to_jsonl(collector.events, dropped=collector.dropped),
                result.wall_cycles,
                tuple(t.cycles.tobytes() for t in result.traces),
            )
        assert outputs["1"] == outputs["0"]


class TestGenerationRouting:
    """``REPRO_GEN_FASTPATH`` routes workload construction, not behavior."""

    def test_default_routes_to_fast_generator(self, monkeypatch):
        monkeypatch.delenv(GEN_FASTPATH_ENV, raising=False)
        assert gen_fastpath_enabled()
        assert type(make_workload("tpcc")) is FastTpccWorkload

    def test_kill_switch_routes_to_reference_generator(self, monkeypatch):
        monkeypatch.setenv(GEN_FASTPATH_ENV, "0")
        assert not gen_fastpath_enabled()
        assert type(make_workload("tpcc")) is TpccWorkload

    def test_all_four_env_corners_agree_end_to_end(self, monkeypatch):
        """Both kill switches, all four positions, identical bytes.

        The two fast paths compose: either may be disabled
        independently and the observable output must not move.
        """
        outputs = {}
        for sim_env, gen_env in itertools.product(("1", "0"), repeat=2):
            monkeypatch.setenv(FASTPATH_ENV, sim_env)
            monkeypatch.setenv(GEN_FASTPATH_ENV, gen_env)
            collector = TraceCollector(capacity=100_000)
            config = SimConfig(num_requests=10, seed=3, collector=collector)
            result = ServerSimulator(make_workload("tpcc"), config).run()
            outputs[(sim_env, gen_env)] = (
                events_to_jsonl(collector.events, dropped=collector.dropped),
                result.wall_cycles,
                tuple(t.cycles.tobytes() for t in result.traces),
            )
        baseline = outputs[("1", "1")]
        for corner, value in outputs.items():
            assert value == baseline, f"env corner {corner} diverged"
