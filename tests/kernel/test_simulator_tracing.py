"""Simulator event emission: coverage, span consistency, zero observer effect."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.trace import TraceCollector
from tests.conftest import run_small


@pytest.fixture(scope="module")
def traced_run():
    collector = TraceCollector()
    result = run_small("tpcc", num_requests=12, seed=11, collector=collector)
    return result, collector


def test_run_boundaries_present(traced_run):
    _, collector = traced_run
    starts = collector.events_of_kind("run_start")
    ends = collector.events_of_kind("run_end")
    assert len(starts) == 1 and len(ends) == 1
    assert starts[0].seq == 0
    assert starts[0].data["workload"] == "tpcc"
    assert starts[0].data["seed"] == 11
    assert "policy" in starts[0].data["scheduler"]
    assert ends[0].data["completed"] == 12


def test_every_request_has_a_complete_span(traced_run):
    result, collector = traced_run
    spans = collector.request_spans()
    assert set(spans) == {t.spec.request_id for t in result.traces}
    for span in spans.values():
        assert span.complete
        assert span.latency_cycles > 0
        assert span.dispatches >= 1
        assert span.samples >= 1


def test_event_stream_is_causally_ordered(traced_run):
    _, collector = traced_run
    events = collector.events
    assert [e.seq for e in events] == list(range(len(events)))
    cycles = [e.cycle for e in events]
    assert all(b >= a for a, b in zip(cycles, cycles[1:]))
    for rid, span in collector.request_spans().items():
        assert span.admitted_cycle <= span.completed_cycle


def test_span_syscalls_match_trace_records(traced_run):
    result, collector = traced_run
    spans = collector.request_spans()
    for trace in result.traces:
        rid = trace.spec.request_id
        assert spans[rid].syscalls == len(trace.syscall_events)


def test_sample_events_match_sampler_stats(traced_run):
    result, collector = traced_run
    # "sample" events cover the non-mandatory samples; mandatory
    # context-switch samples surface as task_switched_out events instead.
    stats = result.sampler_stats
    assert len(collector.events_of_kind("sample")) == (
        stats.in_kernel_samples + stats.interrupt_samples
    )


def test_tracing_has_no_observer_effect():
    """A traced run and an untraced run produce identical simulations."""
    baseline = run_small("webserver", num_requests=10, seed=21)
    traced = run_small(
        "webserver", num_requests=10, seed=21, collector=TraceCollector()
    )
    np.testing.assert_array_equal(
        baseline.request_cpis(), traced.request_cpis()
    )
    assert baseline.wall_cycles == traced.wall_cycles
    np.testing.assert_array_equal(
        baseline.busy_cycles_per_core, traced.busy_cycles_per_core
    )


def test_contention_scheduler_emits_scheduling_events():
    from repro.kernel.contention import ContentionEasingScheduler

    collector = TraceCollector()
    run_small(
        "tpcc",
        num_requests=16,
        seed=9,
        collector=collector,
        scheduler=ContentionEasingScheduler(
            high_usage_threshold=0.005, adaptive_threshold=True
        ),
    )
    # Resched timers fire under the contention policy; preemption decisions
    # must leave a trace even if avoidance never triggers on a small run.
    kinds = {e.kind for e in collector.events}
    assert "task_dispatched" in kinds
    assert "task_switched_out" in kinds


def test_ring_capacity_respected_during_run():
    collector = TraceCollector(capacity=50)
    run_small("webserver", num_requests=10, seed=2, collector=collector)
    assert len(collector) == 50
    assert collector.dropped == collector.emitted - 50
    # The newest events survive: the run_end record is retained.
    assert collector.events[-1].kind == "run_end"
