"""Integration tests for the server-system simulator."""

import numpy as np
import pytest

from repro.hardware.platform import serial_machine
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.sampling import SamplingMode, SamplingPolicy
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.simulator import ServerSimulator, SimConfig, run_workload
from repro.workloads.registry import make_workload

from tests.conftest import run_small


class TestClosedLoop:
    def test_completes_requested_count(self, web_run):
        assert len(web_run.traces) == 40

    def test_unique_request_ids(self, web_run):
        ids = [t.spec.request_id for t in web_run.traces]
        assert sorted(ids) == list(range(40))

    def test_wall_clock_positive_and_monotone(self, web_run):
        assert web_run.wall_cycles > 0
        for trace in web_run.traces:
            assert trace.completion_cycle <= web_run.wall_cycles
            assert np.all(trace.end >= trace.start)

    def test_busy_cycles_bounded_by_wall(self, web_run):
        assert np.all(web_run.busy_cycles_per_core <= web_run.wall_cycles + 1)

    def test_concurrency_respected(self):
        run = run_small("webserver", num_requests=10, concurrency=2)
        # With 2 clients, no more than 2 requests are in flight at any
        # instant (probe midpoints of every request's lifetime).
        intervals = [(t.arrival_cycle, t.completion_cycle) for t in run.traces]
        for s, e in intervals:
            midpoint = (s + e) / 2.0
            in_flight = sum(1 for s2, e2 in intervals if s2 <= midpoint < e2)
            assert in_flight <= 2


class TestInstructionConservation:
    def test_trace_instructions_close_to_spec(self, web_run):
        for trace in web_run.traces:
            spec_ins = trace.spec.total_instructions
            # Compensated counters exclude sampling costs but keep the
            # refill-transient instructions (real re-execution effects).
            assert trace.total_instructions >= spec_ins * 0.99
            assert trace.total_instructions <= spec_ins * 1.35

    def test_serial_uncontended_cpi_matches_solo(self, web_serial_run):
        for trace in web_serial_run.traces:
            solo = trace.spec.solo_cpi(220.0)
            assert trace.overall_cpi() == pytest.approx(solo, rel=0.08)


class TestContentionIntegration:
    def test_multicore_raises_cpi_for_cache_heavy_app(self):
        serial = run_small("tpch", num_requests=4, seed=3, cores=1)
        multi = run_small("tpch", num_requests=8, seed=3)
        assert multi.request_cpis().mean() > 1.2 * serial.request_cpis().mean()

    def test_webwork_insensitive(self):
        serial = run_small("webwork", num_requests=3, seed=3, cores=1)
        multi = run_small("webwork", num_requests=6, seed=3)
        ratio = multi.request_cpis().mean() / serial.request_cpis().mean()
        assert 0.9 < ratio < 1.15


class TestSampling:
    def test_interrupt_sample_rate(self):
        run = run_small(
            "tpcc",
            num_requests=20,
            sampling=SamplingPolicy.interrupt(100.0),
        )
        busy_us = run.busy_cycles_per_core.sum() / 3000.0
        expected = busy_us / 100.0
        produced = run.sampler_stats.interrupt_samples
        assert produced == pytest.approx(expected, rel=0.35)

    def test_context_switch_samples_at_least_per_request(self, web_run):
        assert web_run.sampler_stats.context_switch_samples >= len(web_run.traces)

    def test_syscall_mode_prefers_in_kernel(self):
        run = run_small(
            "webserver",
            num_requests=20,
            sampling=SamplingPolicy.syscall_triggered(
                t_syscall_min_us=8.0, t_backup_int_us=60.0
            ),
        )
        stats = run.sampler_stats
        assert stats.in_kernel_samples > 2 * stats.interrupt_samples

    def test_backup_interrupt_covers_syscall_free_runs(self):
        run = run_small(
            "webwork",
            num_requests=2,
            sampling=SamplingPolicy.syscall_triggered(
                t_syscall_min_us=100.0, t_backup_int_us=300.0
            ),
        )
        # WeBWorK's ~0.5ms syscall gaps exceed 300us: backups must fire.
        assert run.sampler_stats.interrupt_samples > 0

    def test_context_switch_only_mode(self):
        run = run_small(
            "webserver",
            num_requests=10,
            sampling=SamplingPolicy(mode=SamplingMode.CONTEXT_SWITCH_ONLY),
        )
        assert run.sampler_stats.interrupt_samples == 0
        assert run.sampler_stats.in_kernel_samples == 0
        assert all(t.num_periods >= 1 for t in run.traces)

    def test_transition_mode_samples_only_triggers(self):
        run = run_small(
            "webserver",
            num_requests=20,
            sampling=SamplingPolicy.transition_signal(
                t_syscall_min_us=2.0,
                t_backup_int_us=1_000_000.0,
                triggers=("writev",),
            ),
        )
        # Roughly one writev per request -> about one in-kernel sample each.
        assert 0 < run.sampler_stats.in_kernel_samples <= 4 * 20

    def test_observer_effect_raw_exceeds_compensated(self):
        run = run_small(
            "webserver",
            num_requests=10,
            sampling=SamplingPolicy.interrupt(10.0),
        )
        for trace in run.traces:
            assert trace.raw_instructions.sum() > trace.instructions.sum()
            assert trace.raw_cycles.sum() > trace.cycles.sum()


class TestRequestPropagation:
    def test_rubis_spans_tiers(self):
        run = run_small("rubis", num_requests=6, seed=9)
        for trace in run.traces:
            names = [name for _, name in trace.syscall_events]
            assert "write" in names  # socket op at a tier hand-off
            assert trace.num_periods >= len(trace.spec.stages)

    def test_rubis_instruction_conservation_across_tiers(self):
        run = run_small("rubis", num_requests=6, seed=9)
        for trace in run.traces:
            assert trace.total_instructions >= trace.spec.total_instructions * 0.99


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_small("tpcc", num_requests=12, seed=42)
        b = run_small("tpcc", num_requests=12, seed=42)
        assert np.allclose(a.request_cpis(), b.request_cpis())
        assert a.wall_cycles == b.wall_cycles

    def test_different_seed_differs(self):
        a = run_small("tpcc", num_requests=12, seed=42)
        b = run_small("tpcc", num_requests=12, seed=43)
        assert not np.allclose(a.request_cpis(), b.request_cpis())


class TestSchedulers:
    def test_short_quantum_increases_switches(self):
        long_q = run_small(
            "tpch", num_requests=4, seed=2,
            scheduler=RoundRobinScheduler(),
        )
        sched = RoundRobinScheduler()
        sched.quantum_us = 5_000.0
        short_q = run_small("tpch", num_requests=4, seed=2, scheduler=sched)
        assert (
            short_q.sampler_stats.context_switch_samples
            > long_q.sampler_stats.context_switch_samples
        )

    def test_contention_easing_runs_and_reduces_co_high(self):
        threshold = 0.008
        base = run_small(
            "tpch", num_requests=12, seed=3,
            scheduler=RoundRobinScheduler(),
            high_usage_mpi_threshold=threshold,
        )
        eased = run_small(
            "tpch", num_requests=12, seed=3,
            scheduler=ContentionEasingScheduler(high_usage_threshold=threshold),
            high_usage_mpi_threshold=threshold,
        )
        assert len(eased.traces) == 12
        assert (
            eased.high_usage_fractions()[">=3"]
            <= base.high_usage_fractions()[">=3"] + 0.05
        )

    def test_timeline_accounts_all_time(self):
        run = run_small(
            "tpch", num_requests=6, seed=4, high_usage_mpi_threshold=0.01
        )
        assert run.timeline_cycles.sum() == pytest.approx(run.wall_cycles, rel=0.01)

    def test_timeline_empty_without_threshold(self, web_run):
        assert web_run.timeline_cycles.sum() == 0.0


class TestRunWorkload:
    def test_by_name(self):
        result = run_workload("webserver", num_requests=5, seed=1)
        assert result.workload_name == "webserver"
        assert len(result.traces) == 5

    def test_by_instance(self):
        result = run_workload(make_workload("tpcc"), num_requests=5, seed=1)
        assert result.workload_name == "tpcc"

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServerSimulator(make_workload("tpcc"), SimConfig(concurrency=0))
        with pytest.raises(ValueError):
            ServerSimulator(
                make_workload("tpcc"), SimConfig(num_requests=0)
            )

    def test_serial_machine_runs(self):
        config = SimConfig(machine=serial_machine(), concurrency=1, num_requests=3)
        result = ServerSimulator(make_workload("webserver"), config).run()
        assert len(result.traces) == 3
        assert np.all(np.array([t.core for t in result.traces[0:1]][0]) == 0)
