"""Tests for open-loop (Poisson) request arrivals."""

import numpy as np
import pytest

from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload


def open_loop_run(rate, num_requests=40, seed=1, app="tpcc"):
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(100.0),
        num_requests=num_requests,
        seed=seed,
        arrival_rate_per_s=rate,
    )
    return ServerSimulator(make_workload(app), config).run()


class TestOpenLoop:
    def test_all_requests_complete(self):
        run = open_loop_run(400.0)
        assert len(run.traces) == 40

    def test_arrivals_follow_the_rate(self):
        run = open_loop_run(500.0, num_requests=80)
        arrivals = np.sort([t.arrival_cycle for t in run.traces])
        span_s = (arrivals[-1] - arrivals[0]) / 3e9
        measured_rate = (len(arrivals) - 1) / span_s
        assert measured_rate == pytest.approx(500.0, rel=0.35)

    def test_arrivals_independent_of_completions(self):
        """Unlike the closed loop, arrival times never exceed the drawn
        schedule regardless of service backlog."""
        light = open_loop_run(100.0, num_requests=30, seed=3)
        heavy = open_loop_run(2000.0, num_requests=30, seed=3)
        # Same seed -> same workload mix; heavy load compresses arrivals.
        assert max(t.arrival_cycle for t in heavy.traces) < max(
            t.arrival_cycle for t in light.traces
        )

    def test_latency_grows_with_load(self):
        def mean_latency(rate):
            run = open_loop_run(rate, num_requests=60, seed=5)
            return np.mean(
                [t.completion_cycle - t.arrival_cycle for t in run.traces]
            )

        assert mean_latency(2500.0) > mean_latency(100.0)

    def test_queueing_when_overloaded(self):
        """Far beyond capacity, requests visibly queue (latency >> CPU)."""
        run = open_loop_run(8000.0, num_requests=50, seed=7)
        latencies = np.array(
            [(t.completion_cycle - t.arrival_cycle) / 3000.0 for t in run.traces]
        )
        cpu_times = np.array([t.cpu_time_us() for t in run.traces])
        assert latencies.mean() > 2.0 * cpu_times.mean()

    def test_closed_loop_unaffected(self):
        config = SimConfig(
            sampling=SamplingPolicy.interrupt(100.0),
            num_requests=10,
            concurrency=4,
            seed=1,
        )
        run = ServerSimulator(make_workload("tpcc"), config).run()
        # Closed loop keeps only `concurrency` in flight.
        intervals = [(t.arrival_cycle, t.completion_cycle) for t in run.traces]
        for s, e in intervals:
            mid = (s + e) / 2
            in_flight = sum(1 for s2, e2 in intervals if s2 <= mid < e2)
            assert in_flight <= 4

    def test_deterministic(self):
        a = open_loop_run(300.0, seed=9)
        b = open_loop_run(300.0, seed=9)
        assert np.allclose(a.request_cpis(), b.request_cpis())
