"""Event-loop ordering contracts: tie-breaking and arrival batching.

These pin two behaviors the traffic layer depends on:

* same-timestamp events settle by the explicit, documented key
  ``(time, _EVENT_PRIORITY[kind], core_id)``;
* arrival-heap batching compares timestamps exactly, with no absolute
  epsilon whose meaning would depend on the run's time magnitude.
"""

import numpy as np
import pytest

from repro.kernel.simulator import (
    _EVENT_PRIORITY,
    ServerSimulator,
    SimConfig,
)
from repro.traffic import PoissonArrivals, TrafficConfig
from repro.workloads.registry import make_workload


def make_sim(**overrides):
    defaults = dict(
        num_requests=8,
        concurrency=4,
        seed=0,
        traffic=TrafficConfig(arrivals=PoissonArrivals(1000.0)),
    )
    defaults.update(overrides)
    return ServerSimulator(make_workload("tpcc"), SimConfig(**defaults))


class TestTieBreakKey:
    def test_priority_order_is_documented_and_total(self):
        assert _EVENT_PRIORITY == {
            "arrival": 0,
            "phase_end": 1,
            "quantum_end": 2,
            "resched": 3,
            "interrupt": 4,
            "ratecall": 5,
        }
        assert sorted(_EVENT_PRIORITY.values()) == list(range(6))

    def test_arrival_wins_same_timestamp_core_events(self):
        """An arrival at exactly a core's phase_end time fires first."""
        sim = make_sim()
        sim._pending_arrivals.clear()
        sim._defer_admission(100.0)
        sim.cores[0].task = object()
        sim.cores[0].phase_end = 100.0
        t, core_id, kind = sim._next_event()
        assert (t, core_id, kind) == (100.0, -1, "arrival")

    def test_core_ties_break_to_lowest_core_id(self):
        sim = make_sim()
        # Two idle-free cores with identical synthetic interrupt times.
        sim._pending_arrivals.clear()
        for cid in (2, 1):
            sim.runqueues[cid].append(None)  # placeholder; dispatch not used
        sim.cores[1].task = object()
        sim.cores[2].task = object()
        sim.cores[1].next_interrupt = 500.0
        sim.cores[2].next_interrupt = 500.0
        t, core_id, kind = sim._next_event()
        assert (t, core_id, kind) == (500.0, 1, "interrupt")

    def test_kind_priority_beats_core_id(self):
        """phase_end on a high core outranks quantum_end on a low core."""
        sim = make_sim()
        sim._pending_arrivals.clear()
        sim.cores[0].task = object()
        sim.cores[3].task = object()
        sim.cores[0].quantum_end = 500.0
        sim.cores[3].phase_end = 500.0
        t, core_id, kind = sim._next_event()
        assert (t, core_id, kind) == (500.0, 3, "phase_end")

    def test_full_run_is_deterministic(self):
        a = make_sim(seed=13).run()
        b = make_sim(seed=13).run()
        assert a.wall_cycles == b.wall_cycles
        assert np.array_equal(a.request_cpis(), b.request_cpis())


class TestArrivalBatching:
    """Exact-timestamp batching, independent of time magnitude."""

    def test_exact_ties_pop_together(self):
        sim = make_sim()
        sim._pending_arrivals.clear()
        t0 = 1e6
        sim._defer_admission(t0)
        sim._defer_admission(t0)
        sim._defer_admission(np.nextafter(t0, np.inf))
        sim.now = t0
        sim._on_arrival(-1)
        assert sim._admitted == 2
        assert len(sim._pending_arrivals) == 1

    def test_large_now_regression(self):
        """Beyond ~2^33 cycles the old ``now + 1e-9`` slack was a no-op
        (1e-9 < one ULP), so batching depended on magnitude.  With exact
        comparison the behavior at 2^40 matches the behavior at 10."""
        for magnitude in (10.0, 2.0**40):
            sim = make_sim()
            sim._pending_arrivals.clear()
            later = np.nextafter(magnitude, np.inf)
            assert later > magnitude  # distinct floats at both magnitudes
            sim._defer_admission(magnitude)
            sim._defer_admission(later)
            sim.now = magnitude
            sim._on_arrival(-1)
            assert sim._admitted == 1, magnitude
            assert sim._pending_arrivals[0][0] == later

    def test_no_epsilon_slack_at_small_now(self):
        """An arrival 1e-10 cycles in the future is *not* part of the
        current batch (the old epsilon would have popped it)."""
        sim = make_sim()
        sim._pending_arrivals.clear()
        sim._defer_admission(5.0 + 1e-10)
        sim.now = 5.0
        sim._on_arrival(-1)
        assert sim._admitted == 0
        assert len(sim._pending_arrivals) == 1

    def test_heap_orders_equal_times_by_insertion(self):
        sim = make_sim()
        sim._pending_arrivals.clear()
        sim._defer_admission(7.0, tenant=0)
        sim._defer_admission(7.0, tenant=1)
        first = sim._pending_arrivals[0]
        assert first[0] == 7.0
        assert first[4] == 0  # FIFO within a timestamp via the seq field
