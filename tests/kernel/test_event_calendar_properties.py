"""Property-based lockdown of the fastpath event calendar.

The fast path replaces the reference event scan — a per-core walk over
five timer attributes picking the minimum ``(time, kind_priority,
core_id)`` key — with a flat argmin over a ``(5, ncores)`` deadline
matrix whose C-order flattening encodes the same key.  These tests pin
the equivalence two ways:

* **poke tests** drive the two selectors directly over adversarial
  deadline matrices (dense ties, infinities, idle cores, pending
  arrivals at equal timestamps) and demand tuple-identical picks;
* **checked runs** subclass the fastpath simulator so *every* event
  selection during a real simulation is double-checked against the
  reference scan, along with time monotonicity and request
  conservation.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.fastpath import FastpathSimulator
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.traffic import PoissonArrivals, RandomDispatch, TrafficConfig
from repro.workloads.registry import make_workload
from tests.kernel.test_simulator_properties import RandomWorkload

_INF = math.inf

#: A deliberately tiny value pool so drawn deadlines collide constantly:
#: ties across kinds and cores are exactly where a wrong flattening
#: order would diverge from the reference scan's documented key.
TIE_PRONE_TIMES = [0.0, 1.0, 1.0, 2.0, 2.5, 1e6, 1e6 + 0.5]

deadline = st.one_of(
    st.just(_INF),
    st.sampled_from(TIE_PRONE_TIMES),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
)

#: None = idle core (all timers infinite, no task); otherwise the five
#: timer rows (phase_end, quantum_end, resched, interrupt, ratecall).
core_column = st.one_of(
    st.none(),
    st.tuples(deadline, deadline, deadline, deadline, deadline),
)

calendar = st.tuples(
    st.lists(core_column, min_size=4, max_size=4),
    st.lists(st.sampled_from(TIE_PRONE_TIMES), min_size=0, max_size=2),
)


def _make_sim():
    return FastpathSimulator(
        make_workload("mbench_spin"), SimConfig(num_requests=1, seed=0)
    )


class TestNextEventEquivalence:
    """Flat argmin == reference scan, for arbitrary calendar states."""

    @given(calendar)
    @settings(max_examples=400, deadline=None)
    def test_poked_calendar_matches_reference_scan(self, poke):
        columns, arrivals = poke
        sim = _make_sim()
        for cid, column in enumerate(columns):
            core = sim.cores[cid]
            if column is None:
                core.task = None
                sim._dl[:, cid] = _INF
            else:
                # The reference scan only looks at busy cores; the
                # calendar instead relies on idle columns being all-INF.
                core.task = object()
                for row, value in enumerate(column):
                    sim._dl[row, cid] = value
        sim._pending_arrivals = [(t, None) for t in sorted(arrivals)]

        fast = FastpathSimulator._next_event(sim)
        ref = ServerSimulator._next_event(sim)
        assert fast == ref

    @given(calendar)
    @settings(max_examples=100, deadline=None)
    def test_selected_time_is_the_global_minimum(self, poke):
        columns, arrivals = poke
        sim = _make_sim()
        finite = list(arrivals)
        for cid, column in enumerate(columns):
            core = sim.cores[cid]
            if column is None:
                core.task = None
                sim._dl[:, cid] = _INF
            else:
                core.task = object()
                for row, value in enumerate(column):
                    sim._dl[row, cid] = value
                finite.extend(v for v in column if v < _INF)
        sim._pending_arrivals = [(t, None) for t in sorted(arrivals)]

        t, _, kind = FastpathSimulator._next_event(sim)
        if not finite:
            assert t == _INF and kind == "none"
        else:
            assert t == min(finite)


class CheckedSimulator(FastpathSimulator):
    """Fastpath run whose every event pick is audited against the scan."""

    def __init__(self, workload, config):
        super().__init__(workload, config)
        self.audited_events = 0
        self._last_time = -_INF

    def _next_event(self):
        fast = FastpathSimulator._next_event(self)
        ref = ServerSimulator._next_event(self)
        assert fast == ref, f"event {self.audited_events}: {fast} != {ref}"
        assert fast[0] >= self._last_time, "event time went backwards"
        self._last_time = fast[0]
        self.audited_events += 1
        return fast


def _checked_run(seed, multi_tier=False, **overrides):
    workload = RandomWorkload(seed, multi_tier=multi_tier)
    config = SimConfig(
        sampling=overrides.pop("sampling", SamplingPolicy.interrupt(50.0)),
        num_requests=overrides.pop("num_requests", 6),
        concurrency=4,
        seed=seed,
        **overrides,
    )
    sim = CheckedSimulator(workload, config)
    return sim, sim.run()


class TestCheckedRuns:
    """Every event of a real run, audited against the reference scan."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_closed_loop(self, seed):
        sim, result = _checked_run(seed)
        assert sim.audited_events > 0
        assert len(result.traces) + result.requests_shed == 6

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_syscall_sampling_ratecall_rows(self, seed):
        sim, result = _checked_run(
            seed, sampling=SamplingPolicy.syscall_triggered(40.0, 200.0)
        )
        assert sim.audited_events > 0
        assert len(result.traces) + result.requests_shed == 6

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_multi_tier(self, seed):
        sim, result = _checked_run(seed, multi_tier=True)
        assert len(result.traces) + result.requests_shed == 6

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_open_loop_overload_conserves_requests(self, seed):
        traffic = TrafficConfig(
            arrivals=PoissonArrivals(rate_per_s=50_000.0),
            dispatch=RandomDispatch(),
            admission_limit=3,
        )
        sim, result = _checked_run(seed, num_requests=10, traffic=traffic)
        assert sim.audited_events > 0
        # Termination conservation: every requested unit is accounted as
        # either a completed trace or a shed arrival.
        assert len(result.traces) + result.requests_shed == 10
        store = result.latency
        assert store.shed == result.requests_shed
        assert store.completed == len(result.traces)
