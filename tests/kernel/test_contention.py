"""Tests for the contention-easing scheduler policy (Section 5.2)."""

import pytest

from repro.hardware.cpu import PhaseBehavior
from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.task import Task
from repro.workloads.base import Phase, RequestSpec, single_stage

B = PhaseBehavior(1.0, 0.01, 0.2, 0.3)


def make_task(task_id):
    spec = RequestSpec(
        request_id=task_id,
        app="t",
        kind="k",
        stages=single_stage("t", [Phase(name="p", instructions=1000, behavior=B)]),
    )
    return Task(task_id=task_id, request=spec, stage_index=0, home_core=0)


def make_sched(threshold=0.01):
    return ContentionEasingScheduler(high_usage_threshold=threshold)


def feed(sched, task, mpi, cycles=3_000_000.0):
    """Feed one observation with the given misses-per-instruction."""
    instructions = 1_000_000.0
    sched.on_sample(task, instructions, mpi * instructions, cycles)


class TestPrediction:
    def test_unobserved_task_assumed_low(self):
        sched = make_sched()
        assert not sched.predicted_high(make_task(1))

    def test_high_after_high_samples(self):
        sched = make_sched(threshold=0.01)
        task = make_task(1)
        feed(sched, task, mpi=0.05)
        assert sched.predicted_high(task)

    def test_low_after_low_samples(self):
        sched = make_sched(threshold=0.01)
        task = make_task(1)
        feed(sched, task, mpi=0.001)
        assert not sched.predicted_high(task)

    def test_prediction_adapts(self):
        sched = make_sched(threshold=0.01)
        task = make_task(1)
        feed(sched, task, mpi=0.05)
        for _ in range(8):
            feed(sched, task, mpi=0.001)
        assert not sched.predicted_high(task)

    def test_zero_sample_ignored(self):
        sched = make_sched()
        task = make_task(1)
        sched.on_sample(task, 0.0, 0.0, 0.0)
        assert not sched.predicted_high(task)


class TestPickPolicy:
    def setup_method(self):
        self.sched = make_sched(threshold=0.01)
        self.high = make_task(10)
        feed(self.sched, self.high, mpi=0.05)
        self.low = make_task(11)
        feed(self.sched, self.low, mpi=0.001)
        self.other_high = make_task(12)
        feed(self.sched, self.other_high, mpi=0.05)

    def test_normal_when_no_other_core_high(self):
        idx = self.sched.pick(0, [self.high, self.low], {0: None, 1: self.low})
        assert idx == 0  # paper step 1: schedule normally

    def test_avoids_high_when_other_core_high(self):
        idx = self.sched.pick(
            0, [self.high, self.low], {0: None, 1: self.other_high}
        )
        assert idx == 1  # closest-to-head non-high request

    def test_gives_up_when_all_high(self):
        idx = self.sched.pick(0, [self.high], {0: None, 1: self.other_high})
        assert idx == 0
        assert self.sched.stats["gave_up"] == 1

    def test_empty_queue(self):
        assert self.sched.pick(0, [], {0: None, 1: self.other_high}) is None

    def test_own_core_state_ignored(self):
        """Only *other* cores' high usage matters (paper step 1)."""
        idx = self.sched.pick(0, [self.high], {0: self.other_high, 1: self.low})
        assert idx == 0


class TestPreemptPolicy:
    def setup_method(self):
        self.sched = make_sched(threshold=0.01)
        self.high = make_task(20)
        feed(self.sched, self.high, mpi=0.05)
        self.low = make_task(21)
        feed(self.sched, self.low, mpi=0.001)
        self.other_high = make_task(22)
        feed(self.sched, self.other_high, mpi=0.05)

    def test_keeps_current_when_others_low(self):
        assert (
            self.sched.should_preempt(0, self.high, [self.low], {1: self.low})
            is None
        )

    def test_keeps_low_current(self):
        assert (
            self.sched.should_preempt(
                0, self.low, [self.low], {1: self.other_high}
            )
            is None
        )

    def test_preempts_high_current_for_low_alternative(self):
        idx = self.sched.should_preempt(
            0, self.high, [self.low], {1: self.other_high}
        )
        assert idx == 0
        assert self.sched.stats["preemptions"] == 1

    def test_gives_up_without_low_alternative(self):
        another_high = make_task(23)
        feed(self.sched, another_high, mpi=0.06)
        idx = self.sched.should_preempt(
            0, self.high, [another_high], {1: self.other_high}
        )
        assert idx is None

    def test_empty_queue_keeps_current(self):
        assert (
            self.sched.should_preempt(0, self.high, [], {1: self.other_high})
            is None
        )


class TestConfiguration:
    def test_paper_defaults(self):
        sched = ContentionEasingScheduler()
        assert sched.alpha == 0.6
        assert sched.resched_interval_us == 5_000.0  # at most every 5 ms

    def test_predictor_reused_per_task(self):
        sched = make_sched()
        task = make_task(1)
        p1 = sched._predictor(task)
        p2 = sched._predictor(task)
        assert p1 is p2
