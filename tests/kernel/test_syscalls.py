"""Tests for the syscall stream model and next-distance analysis."""

import numpy as np
import pytest

from repro.hardware.cpu import PhaseBehavior
from repro.kernel.syscalls import (
    next_rate_syscall_cycles,
    next_syscall_distance_cdf,
    sample_next_syscall_distance,
)
from repro.workloads.base import Phase, RequestSpec, Stage, single_stage

B = PhaseBehavior(1.0, 0.0, 0.0, 0.0)


def spec_with(phases, stages=None):
    if stages is None:
        stages = single_stage("t", phases)
    return RequestSpec(request_id=0, app="x", kind="k", stages=stages)


class TestNextRateSyscall:
    def test_zero_rate_infinite(self, rng):
        assert next_rate_syscall_cycles(rng, 0.0, 1.0) == float("inf")

    def test_mean_matches_rate(self, rng):
        draws = [next_rate_syscall_cycles(rng, 1 / 1000, 2.0) for _ in range(4000)]
        # mean cycles = cpi / rate = 2000
        assert np.mean(draws) == pytest.approx(2000, rel=0.1)


class TestSampleDistance:
    def test_rate_phase_short_distances(self, rng):
        spec = spec_with(
            [
                Phase(
                    name="p",
                    instructions=1_000_000,
                    behavior=B,
                    syscall_rate_per_ins=1 / 1000,
                    syscall_pool=("read",),
                )
            ]
        )
        distances = [
            sample_next_syscall_distance(spec, rng)[0] for _ in range(300)
        ]
        assert np.mean(distances) < 3000

    def test_syscall_free_request_ends_at_completion(self, rng):
        spec = spec_with([Phase(name="p", instructions=50_000, behavior=B)])
        d_ins, d_us = sample_next_syscall_distance(spec, rng)
        assert 0 <= d_ins <= 50_000
        assert d_us == pytest.approx(d_ins / 3000.0, rel=1e-6)

    def test_stops_at_entry_syscall(self, rng):
        spec = spec_with(
            [
                Phase(name="a", instructions=10_000, behavior=B),
                Phase(name="b", instructions=90_000, behavior=B, entry_syscall="read"),
            ]
        )
        # From a fixed instant inside phase a, the walk must stop at the
        # entry syscall of phase b (distance = remainder of phase a).
        d_ins, _ = sample_next_syscall_distance(spec, rng, position=4_000.0)
        assert d_ins == pytest.approx(6_000.0)

    def test_stops_at_tier_boundary(self, rng):
        stages = (
            Stage(tier="a", phases=(Phase(name="p1", instructions=10_000, behavior=B),)),
            Stage(tier="b", phases=(Phase(name="p2", instructions=90_000, behavior=B),)),
        )
        spec = spec_with(None, stages=stages)
        d_ins, _ = sample_next_syscall_distance(spec, rng, position=2_500.0)
        assert d_ins == pytest.approx(7_500.0)

    def test_position_out_of_range_rejected(self, rng):
        spec = spec_with([Phase(name="a", instructions=10_000, behavior=B)])
        with pytest.raises(ValueError):
            sample_next_syscall_distance(spec, rng, position=10_000.0)

    def test_time_uses_solo_cpi(self, rng):
        slow = PhaseBehavior(3.0, 0.0, 0.0, 0.0)
        spec = spec_with([Phase(name="p", instructions=30_000, behavior=slow)])
        d_ins, d_us = sample_next_syscall_distance(spec, rng)
        assert d_us == pytest.approx(d_ins * 3.0 / 3000.0, rel=1e-6)


class TestCdf:
    def test_cdf_monotone_and_bounded(self, rng):
        spec = spec_with(
            [
                Phase(
                    name="p",
                    instructions=100_000,
                    behavior=B,
                    syscall_rate_per_ins=1 / 5000,
                    syscall_pool=("read",),
                )
            ]
        )
        grid_us = np.array([1.0, 4.0, 16.0, 64.0])
        grid_ins = grid_us * 3000.0
        cdf_t, cdf_i = next_syscall_distance_cdf(
            [spec] * 10, rng, grid_us, grid_ins, samples_per_request=30
        )
        for cdf in (cdf_t, cdf_i):
            assert np.all(np.diff(cdf) >= 0)
            assert np.all((0 <= cdf) & (cdf <= 1))

    def test_instruction_weighting(self, rng):
        """Long syscall-free requests must dominate the pooled instants."""
        chatty = spec_with(
            [
                Phase(
                    name="c",
                    instructions=10_000,
                    behavior=B,
                    syscall_rate_per_ins=1 / 100,
                    syscall_pool=("read",),
                )
            ]
        )
        silent = spec_with([Phase(name="s", instructions=990_000, behavior=B)])
        grid_us = np.array([1.0])
        grid_ins = np.array([3000.0])
        cdf_t, _ = next_syscall_distance_cdf(
            [chatty, silent], rng, grid_us, grid_ins, samples_per_request=100
        )
        # ~99% of instants land in the silent request, whose next-syscall
        # distance (to completion) is mostly far beyond 1us.
        assert cdf_t[0] < 0.2

    def test_empty_specs_raise(self, rng):
        with pytest.raises(ValueError):
            next_syscall_distance_cdf([], rng, np.array([1.0]), np.array([1.0]))
