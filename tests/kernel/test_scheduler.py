"""Tests for the baseline scheduler policy."""

from repro.kernel.scheduler import RoundRobinScheduler, SchedulerPolicy


class TestRoundRobin:
    def test_picks_head(self):
        sched = RoundRobinScheduler()
        assert sched.pick(0, ["t1", "t2"], {0: None}) == 0

    def test_empty_queue_idles(self):
        sched = RoundRobinScheduler()
        assert sched.pick(0, [], {0: None}) is None

    def test_never_preempts(self):
        sched = RoundRobinScheduler()
        assert sched.should_preempt(0, "cur", ["t"], {0: "cur"}) is None

    def test_no_resched_interval(self):
        assert RoundRobinScheduler().resched_interval_us is None

    def test_quantum_default_100ms(self):
        assert RoundRobinScheduler().quantum_us == 100_000.0

    def test_dispatch_counter(self):
        sched = RoundRobinScheduler()
        sched.pick(0, ["t"], {})
        sched.pick(0, [], {})
        assert sched.stats["dispatches"] == 1

    def test_on_sample_is_noop(self):
        SchedulerPolicy().on_sample(None, 1.0, 1.0, 1.0)
