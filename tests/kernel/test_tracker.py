"""Tests for request-context tracking and trace serialization."""

import numpy as np
import pytest

from repro.hardware.counters import CounterSnapshot, SamplingContext, SamplingCostModel
from repro.hardware.cpu import PhaseBehavior
from repro.kernel.tracker import PeriodRecord, RequestTrace, RequestTracker
from repro.workloads.base import Phase, RequestSpec, single_stage

B = PhaseBehavior(1.0, 0.01, 0.2, 0.3)


def make_spec(request_id=0):
    return RequestSpec(
        request_id=request_id,
        app="t",
        kind="k",
        stages=single_stage("t", [Phase(name="p", instructions=1000, behavior=B)]),
    )


def period(start, end, core=0, cycles=None, ins=None, refs=0.0, misses=0.0,
           inj_ik=0, inj_int=0):
    cycles = cycles if cycles is not None else end - start
    ins = ins if ins is not None else cycles / 2.0
    return PeriodRecord(
        start_cycle=start,
        end_cycle=end,
        core=core,
        counters=CounterSnapshot(cycles, ins, refs, misses),
        injected_in_kernel=inj_ik,
        injected_interrupt=inj_int,
    )


def make_trace(periods, cost_model=None, syscalls=()):
    return RequestTrace(
        spec=make_spec(),
        arrival_cycle=0.0,
        completion_cycle=max(p.end_cycle for p in periods),
        periods=periods,
        syscall_events=list(syscalls),
        cost_model=cost_model,
        frequency_ghz=3.0,
    )


class TestTracker:
    def test_lifecycle(self):
        tracker = RequestTracker(cost_model=None, frequency_ghz=3.0)
        spec = make_spec()
        tracker.start_request(spec, 0.0)
        assert tracker.open_requests == 1
        tracker.record_syscall(0, 5.0, "read")
        tracker.close_period(0, period(0, 10))
        trace = tracker.finish_request(0, 10.0)
        assert tracker.open_requests == 0
        assert trace.num_periods == 1
        assert trace.syscall_events == [(5.0, "read")]

    def test_duplicate_request_rejected(self):
        tracker = RequestTracker(cost_model=None, frequency_ghz=3.0)
        tracker.start_request(make_spec(), 0.0)
        with pytest.raises(ValueError):
            tracker.start_request(make_spec(), 1.0)

    def test_empty_periods_dropped(self):
        tracker = RequestTracker(cost_model=None, frequency_ghz=3.0)
        tracker.start_request(make_spec(), 0.0)
        tracker.close_period(
            0, PeriodRecord(0, 0, 0, CounterSnapshot())
        )
        tracker.close_period(0, period(0, 10))
        trace = tracker.finish_request(0, 10.0)
        assert trace.num_periods == 1

    def test_no_periods_raises(self):
        tracker = RequestTracker(cost_model=None, frequency_ghz=3.0)
        tracker.start_request(make_spec(), 0.0)
        with pytest.raises(ValueError):
            tracker.finish_request(0, 10.0)


class TestTraceBasics:
    def test_periods_sorted_by_start(self):
        trace = make_trace([period(100, 200), period(0, 50)])
        assert trace.start[0] == 0

    def test_totals_and_cpu_time(self):
        trace = make_trace([period(0, 300), period(400, 700)])
        assert trace.total_cycles == pytest.approx(600)
        assert trace.total_instructions == pytest.approx(300)
        assert trace.cpu_time_us() == pytest.approx(600 / 3000)

    def test_overall_cpi(self):
        trace = make_trace([period(0, 100)])
        assert trace.overall_cpi() == pytest.approx(2.0)

    def test_metric_selection(self):
        trace = make_trace([period(0, 100, refs=10.0, misses=4.0)])
        assert trace.overall("l2_refs_per_ins") == pytest.approx(10.0 / 50.0)
        assert trace.overall("l2_miss_per_ins") == pytest.approx(4.0 / 50.0)
        assert trace.overall("l2_miss_ratio") == pytest.approx(0.4)

    def test_unknown_metric_raises(self):
        trace = make_trace([period(0, 100)])
        with pytest.raises(ValueError):
            trace.overall("ipc")

    def test_period_values_drops_zero_denominator(self):
        trace = make_trace(
            [period(0, 100, refs=0.0, misses=0.0), period(100, 200, refs=5.0, misses=1.0)]
        )
        values, weights = trace.period_values("l2_miss_ratio")
        assert values.size == 1
        assert values[0] == pytest.approx(0.2)


class TestCompensation:
    def test_minimum_cost_subtracted(self):
        model = SamplingCostModel()
        ik = model.minimum_cost(SamplingContext.IN_KERNEL)
        raw = period(0, 10_000, cycles=10_000, ins=5000, inj_ik=2)
        trace = make_trace([raw], cost_model=model)
        assert trace.instructions[0] == pytest.approx(5000 - 2 * ik.instructions)
        assert trace.cycles[0] == pytest.approx(10_000 - 2 * ik.cycles)
        # Raw values are preserved alongside.
        assert trace.raw_instructions[0] == pytest.approx(5000)

    def test_never_negative(self):
        model = SamplingCostModel()
        tiny = period(0, 100, cycles=100, ins=10, inj_ik=5)
        trace = make_trace([tiny], cost_model=model)
        assert trace.instructions[0] >= 1.0
        assert trace.cycles[0] >= 1.0

    def test_no_model_keeps_raw(self):
        raw = period(0, 10_000, cycles=10_000, ins=5000, inj_ik=2)
        trace = make_trace([raw], cost_model=None)
        assert trace.instructions[0] == pytest.approx(5000)


class TestWindows:
    def test_window_counters_conserve_mass(self):
        trace = make_trace([period(0, 600), period(600, 1000)])
        win = trace.window_counters(100)
        assert win["instructions"].sum() == pytest.approx(trace.total_instructions)
        assert win["cycles"].sum() == pytest.approx(trace.total_cycles)

    def test_series_values_reasonable(self):
        trace = make_trace([period(0, 100, refs=25.0, misses=5.0)])
        series = trace.series("cpi", 10)
        assert np.allclose(series.values, 2.0)

    def test_series_handles_zero_denominator_windows(self):
        trace = make_trace([period(0, 100, refs=0.0, misses=0.0)])
        series = trace.series("l2_miss_ratio", 10)
        assert np.all(series.values == 0.0)

    def test_invalid_window_raises(self):
        trace = make_trace([period(0, 100)])
        with pytest.raises(ValueError):
            trace.window_counters(0)


class TestExecTimeline:
    def test_exec_offset_skips_gaps(self):
        # Two periods with a scheduling gap between them.
        trace = make_trace([period(0, 100), period(500, 600)])
        assert trace.exec_offset_of_cycle(50) == pytest.approx(50)
        assert trace.exec_offset_of_cycle(300) == pytest.approx(100)  # in gap
        assert trace.exec_offset_of_cycle(550) == pytest.approx(150)
        assert trace.exec_offset_of_cycle(10_000) == pytest.approx(200)

    def test_counters_in_exec_window(self):
        trace = make_trace([period(0, 100), period(500, 600)])
        counters = trace.counters_in_exec_window(50, 150)
        assert counters.cycles == pytest.approx(100)
        assert counters.instructions == pytest.approx(50)

    def test_window_clamped_to_execution(self):
        trace = make_trace([period(0, 100)])
        counters = trace.counters_in_exec_window(-50, 1000)
        assert counters.cycles == pytest.approx(100)

    def test_inverted_window_raises(self):
        trace = make_trace([period(0, 100)])
        with pytest.raises(ValueError):
            trace.counters_in_exec_window(50, 10)
