"""Tests for schedulable tasks."""

import pytest

from repro.hardware.cpu import PhaseBehavior
from repro.kernel.task import Task, TaskState
from repro.workloads.base import Phase, RequestSpec, Stage

B = PhaseBehavior(1.0, 0.0, 0.0, 0.0)


def make_task():
    stages = (
        Stage(
            tier="a",
            phases=(
                Phase(name="p0", instructions=100, behavior=B),
                Phase(name="p1", instructions=200, behavior=B, entry_syscall="read"),
            ),
        ),
        Stage(tier="b", phases=(Phase(name="p2", instructions=50, behavior=B),)),
    )
    spec = RequestSpec(request_id=7, app="t", kind="k", stages=stages)
    return Task(task_id=1, request=spec, stage_index=0, home_core=0)


class TestTask:
    def test_initial_state(self):
        task = make_task()
        assert task.state is TaskState.READY
        assert task.current_phase.name == "p0"
        assert task.remaining_in_phase == 100
        assert task.request_id == 7
        assert not task.on_last_stage

    def test_advance_instructions(self):
        task = make_task()
        task.advance_instructions(30)
        assert task.remaining_in_phase == 70

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            make_task().advance_instructions(-1)

    def test_enter_next_phase_returns_entry_syscall(self):
        task = make_task()
        task.advance_instructions(100)
        assert task.enter_next_phase() == "read"
        assert task.current_phase.name == "p1"
        assert task.remaining_in_phase == 200

    def test_enter_next_phase_on_last_raises(self):
        task = make_task()
        task.enter_next_phase()
        assert task.on_last_phase
        with pytest.raises(RuntimeError):
            task.enter_next_phase()

    def test_remaining_clamped_nonnegative(self):
        task = make_task()
        task.advance_instructions(150)  # float overshoot happens in the sim
        assert task.remaining_in_phase == 0.0

    def test_last_stage_detection(self):
        task = make_task()
        assert not task.on_last_stage
        last = Task(task_id=2, request=task.request, stage_index=1, home_core=0)
        assert last.on_last_stage
        assert last.on_last_phase
