"""Tests for sampling policies and accounting."""

import pytest

from repro.hardware.counters import SamplingContext, SamplingCostModel
from repro.kernel.sampling import SamplerStats, SamplingMode, SamplingPolicy


class TestSamplingPolicy:
    def test_interrupt_factory(self):
        p = SamplingPolicy.interrupt(10.0)
        assert p.mode is SamplingMode.INTERRUPT
        assert p.interrupt_period_us == 10.0

    def test_syscall_factory(self):
        p = SamplingPolicy.syscall_triggered(50.0, 200.0)
        assert p.mode is SamplingMode.SYSCALL_TRIGGERED
        assert p.wants_syscall_events()

    def test_transition_factory(self):
        p = SamplingPolicy.transition_signal(10.0, 50.0, ["writev", "poll"])
        assert p.accepts_trigger("writev")
        assert not p.accepts_trigger("read")

    def test_syscall_mode_accepts_any_name(self):
        p = SamplingPolicy.syscall_triggered(10.0, 50.0)
        assert p.accepts_trigger("anything")

    def test_interrupt_mode_rejects_triggers(self):
        p = SamplingPolicy.interrupt(10.0)
        assert not p.accepts_trigger("writev")
        assert not p.wants_syscall_events()

    def test_backup_must_exceed_min(self):
        with pytest.raises(ValueError):
            SamplingPolicy.syscall_triggered(100.0, 50.0)

    def test_transition_requires_triggers(self):
        with pytest.raises(ValueError):
            SamplingPolicy(mode=SamplingMode.TRANSITION_SIGNAL)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SamplingPolicy.interrupt(0.0)

    def test_context_switch_only(self):
        p = SamplingPolicy(mode=SamplingMode.CONTEXT_SWITCH_ONLY)
        assert not p.wants_syscall_events()
        assert not p.accepts_trigger("read")


class TestSamplerStats:
    def test_record_by_context(self):
        stats = SamplerStats()
        stats.record(SamplingContext.IN_KERNEL, mandatory=False)
        stats.record(SamplingContext.INTERRUPT, mandatory=False)
        stats.record(SamplingContext.IN_KERNEL, mandatory=True)
        assert stats.in_kernel_samples == 1
        assert stats.interrupt_samples == 1
        assert stats.context_switch_samples == 1
        assert stats.total_samples == 3

    def test_overhead_uses_minimum_costs(self):
        stats = SamplerStats(in_kernel_samples=10, interrupt_samples=5)
        model = SamplingCostModel()
        expected = 10 * 1270 + 5 * 2276
        assert stats.overhead_cycles(model) == pytest.approx(expected)

    def test_mandatory_samples_excluded_from_overhead(self):
        stats = SamplerStats(context_switch_samples=100)
        assert stats.overhead_cycles(SamplingCostModel()) == 0.0
