"""Tests for the online-learned high-usage threshold (extension)."""

import numpy as np
import pytest

from repro.kernel.contention import ContentionEasingScheduler
from repro.kernel.scheduler import RoundRobinScheduler

from tests.conftest import run_small


class TestAdaptiveThreshold:
    def test_warmup_uses_static_threshold(self):
        sched = ContentionEasingScheduler(
            high_usage_threshold=0.123, adaptive_threshold=True, adaptive_warmup=50
        )
        assert sched.current_threshold() == 0.123

    def test_threshold_converges_to_percentile(self):
        sched = ContentionEasingScheduler(
            high_usage_threshold=1.0, adaptive_threshold=True, adaptive_warmup=100
        )
        rng = np.random.default_rng(3)

        class FakeTask:
            predictor_state = {}

        samples = rng.exponential(0.01, 3000)
        for mpi in samples:
            sched.on_sample(FakeTask(), 1e6, mpi * 1e6, 3e6)
        assert sched.current_threshold() == pytest.approx(
            np.percentile(samples, 80), rel=0.15
        )

    def test_zero_warmup_empty_estimator_falls_back_to_static(self):
        """Regression: warmup 0 with no observations used to return None,
        crashing the first high-usage comparison with a TypeError."""
        sched = ContentionEasingScheduler(
            high_usage_threshold=0.07, adaptive_threshold=True, adaptive_warmup=0
        )
        assert sched.current_threshold() == 0.07

    def test_zero_warmup_run_does_not_crash(self):
        result = run_small(
            "tpcc", num_requests=6, seed=13,
            scheduler=ContentionEasingScheduler(
                high_usage_threshold=0.01,
                adaptive_threshold=True,
                adaptive_warmup=0,
            ),
        )
        assert len(result.traces) == 6

    def test_single_observation_threshold(self):
        sched = ContentionEasingScheduler(
            high_usage_threshold=1.0, adaptive_threshold=True, adaptive_warmup=1
        )

        class FakeTask:
            predictor_state = {}

        sched.on_sample(FakeTask(), 1e6, 5e4, 3e6)
        assert sched.current_threshold() == pytest.approx(0.05)

    def test_duplicate_heavy_stream_threshold_in_range(self):
        sched = ContentionEasingScheduler(
            high_usage_threshold=1.0, adaptive_threshold=True, adaptive_warmup=10
        )

        class FakeTask:
            predictor_state = {}

        # 90% of samples at one value, a few outliers above.
        for _ in range(900):
            sched.on_sample(FakeTask(), 1e6, 2e4, 3e6)
        for _ in range(100):
            sched.on_sample(FakeTask(), 1e6, 9e4, 3e6)
        assert 0.02 <= sched.current_threshold() <= 0.09

    def test_static_mode_never_learns(self):
        sched = ContentionEasingScheduler(high_usage_threshold=0.5)

        class FakeTask:
            predictor_state = {}

        for _ in range(500):
            sched.on_sample(FakeTask(), 1e6, 9e5, 3e6)
        assert sched.current_threshold() == 0.5

    def test_adaptive_run_matches_profiled_run_behavior(self):
        """End to end: the online threshold should ease contention about
        as well as the profiled one, without a profiling run."""
        # Profile to find the 'true' threshold for reference accounting.
        profile = run_small("tpch", num_requests=10, seed=3)
        values = np.concatenate(
            [t.period_values("l2_miss_per_ins")[0] for t in profile.traces]
        )
        threshold = float(np.percentile(values, 80))

        base = run_small(
            "tpch", num_requests=12, seed=4,
            scheduler=RoundRobinScheduler(),
            high_usage_mpi_threshold=threshold,
        )
        adaptive = run_small(
            "tpch", num_requests=12, seed=4,
            scheduler=ContentionEasingScheduler(
                high_usage_threshold=threshold * 2,  # deliberately wrong warm-up
                adaptive_threshold=True,
                adaptive_warmup=100,
            ),
            high_usage_mpi_threshold=threshold,
        )
        sched = adaptive.scheduler
        # The online estimate converged near the profiled threshold.
        assert sched.current_threshold() == pytest.approx(threshold, rel=0.5)
        assert sched.current_threshold() != threshold * 2
        # And the scheduler actually engaged.
        assert len(adaptive.traces) == 12
        assert (
            adaptive.high_usage_fractions()[">=3"]
            <= base.high_usage_fractions()[">=3"] + 0.05
        )
