"""Property-based tests: simulator invariants over random mini-workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cpu import PhaseBehavior
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.base import Phase, RequestSpec, Stage


class RandomWorkload:
    """A deterministic random-phase workload built from a seed."""

    name = "random"
    sampling_period_us = 50.0

    def __init__(self, seed: int, max_phases: int = 6, multi_tier: bool = False):
        self._seed = seed
        self._max_phases = max_phases
        self._multi_tier = multi_tier

    def sample_request(self, rng, request_id):
        n_phases = int(rng.integers(1, self._max_phases + 1))
        phases = []
        for k in range(n_phases):
            refs = float(rng.uniform(0.0, 0.03))
            phases.append(
                Phase(
                    name=f"p{k}",
                    instructions=int(rng.integers(5_000, 400_000)),
                    behavior=PhaseBehavior(
                        base_cpi=float(rng.uniform(0.6, 4.0)),
                        l2_refs_per_ins=refs,
                        l2_miss_ratio=float(rng.uniform(0.0, 0.9)),
                        cache_footprint=float(rng.uniform(0.0, 1.0)),
                    ),
                    entry_syscall="read" if rng.random() < 0.3 else None,
                    syscall_rate_per_ins=(1 / 20_000) if rng.random() < 0.5 else 0.0,
                    syscall_pool=("read", "write"),
                )
            )
        if self._multi_tier and n_phases >= 2:
            cut = n_phases // 2
            stages = (
                Stage(tier="front", phases=tuple(phases[:cut])),
                Stage(tier="back", phases=tuple(phases[cut:])),
            )
        else:
            stages = (Stage(tier="only", phases=tuple(phases)),)
        return RequestSpec(
            request_id=request_id, app="random", kind=f"k{n_phases}", stages=stages
        )


def run_random(seed, num_requests=6, concurrency=4, multi_tier=False, **overrides):
    workload = RandomWorkload(seed, multi_tier=multi_tier)
    config = SimConfig(
        sampling=overrides.pop("sampling", SamplingPolicy.interrupt(50.0)),
        num_requests=num_requests,
        concurrency=concurrency,
        seed=seed,
        **overrides,
    )
    return ServerSimulator(workload, config).run()


class TestInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_requests_complete_with_conserved_instructions(self, seed):
        result = run_random(seed)
        assert len(result.traces) == 6
        for trace in result.traces:
            spec_ins = trace.spec.total_instructions
            # Compensated instructions cover the spec work; refill
            # transients may add a bounded amount on top.
            assert trace.total_instructions >= 0.98 * spec_ins
            assert trace.total_instructions <= 1.6 * spec_ins + 10_000

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_counters_nonnegative_and_consistent(self, seed):
        result = run_random(seed)
        for trace in result.traces:
            assert np.all(trace.instructions > 0)
            assert np.all(trace.cycles > 0)
            assert np.all(trace.l2_refs >= 0)
            assert np.all(trace.l2_misses >= 0)
            # Misses never exceed references (modulo injected-cost noise).
            assert trace.l2_misses.sum() <= trace.l2_refs.sum() + 1e-6

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_periods_are_well_formed(self, seed):
        result = run_random(seed)
        for trace in result.traces:
            assert np.all(trace.end >= trace.start)
            assert np.all(np.diff(trace.start) >= -1e-6)
            assert np.all((0 <= trace.core) & (trace.core < 4))

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_deterministic(self, seed):
        a = run_random(seed)
        b = run_random(seed)
        assert a.wall_cycles == b.wall_cycles
        assert np.allclose(a.request_cpis(), b.request_cpis())

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_multi_tier_requests_complete(self, seed):
        result = run_random(seed, multi_tier=True)
        assert len(result.traces) == 6
        for trace in result.traces:
            assert trace.total_instructions >= 0.98 * trace.spec.total_instructions

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_serial_matches_solo_cpi(self, seed):
        from repro.hardware.platform import serial_machine

        result = run_random(
            seed, num_requests=3, concurrency=1, machine=serial_machine()
        )
        for trace in result.traces:
            solo = trace.spec.solo_cpi(220.0)
            assert trace.overall_cpi() == pytest.approx(solo, rel=0.1)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_busy_time_bounded_by_wall_time(self, seed):
        result = run_random(seed)
        assert np.all(result.busy_cycles_per_core <= result.wall_cycles * (1 + 1e-9))
