"""Tests for JSON trace export/import."""

import json

import numpy as np
import pytest

from repro.kernel.trace_io import load_traces, save_traces, trace_from_dict, trace_to_dict


class TestRoundTrip:
    def test_counters_preserved(self, web_run, tmp_path):
        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces, path)
        loaded = load_traces(path)
        assert len(loaded) == len(web_run.traces)
        for orig, back in zip(web_run.traces, loaded):
            assert back.spec.request_id == orig.spec.request_id
            assert back.spec.kind == orig.spec.kind
            assert np.allclose(back.instructions, orig.instructions)
            assert np.allclose(back.cycles, orig.cycles)
            assert np.allclose(back.l2_refs, orig.l2_refs)
            assert np.allclose(back.l2_misses, orig.l2_misses)
            assert back.syscall_events == orig.syscall_events

    def test_analysis_works_on_loaded_traces(self, web_run, tmp_path):
        """Loaded traces support the same offline analyses."""
        from repro.core.variation import captured_variation

        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces, path)
        loaded = load_traces(path)
        orig_cov = captured_variation(web_run.traces, "cpi")
        loaded_cov = captured_variation(loaded, "cpi")
        assert loaded_cov == pytest.approx(orig_cov, rel=1e-6)
        series = loaded[0].series("cpi", 10_000)
        assert len(series) >= 1

    def test_metadata_preserved(self, web_run, tmp_path):
        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces[:3], path)
        loaded = load_traces(path)
        assert loaded[0].spec.metadata["file_id"] == (
            web_run.traces[0].spec.metadata["file_id"]
        )


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_traces(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"format": "repro-request-traces", "version": 99, "traces": []})
        )
        with pytest.raises(ValueError):
            load_traces(str(path))

    def test_malformed_trace_dict_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"request_id": 1})

    def test_dict_is_json_serializable(self, tpcc_run):
        payload = trace_to_dict(tpcc_run.traces[0])
        json.dumps(payload)  # must not raise
