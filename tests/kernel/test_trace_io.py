"""Tests for JSON / JSONL trace export and import."""

import json

import numpy as np
import pytest

from repro.kernel.trace_io import (
    load_traces,
    parse_traces_jsonl,
    save_traces,
    trace_from_dict,
    trace_to_dict,
    traces_to_jsonl,
)


class TestRoundTrip:
    def test_counters_preserved(self, web_run, tmp_path):
        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces, path)
        loaded = load_traces(path)
        assert len(loaded) == len(web_run.traces)
        for orig, back in zip(web_run.traces, loaded):
            assert back.spec.request_id == orig.spec.request_id
            assert back.spec.kind == orig.spec.kind
            assert np.allclose(back.instructions, orig.instructions)
            assert np.allclose(back.cycles, orig.cycles)
            assert np.allclose(back.l2_refs, orig.l2_refs)
            assert np.allclose(back.l2_misses, orig.l2_misses)
            assert back.syscall_events == orig.syscall_events

    def test_analysis_works_on_loaded_traces(self, web_run, tmp_path):
        """Loaded traces support the same offline analyses."""
        from repro.core.variation import captured_variation

        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces, path)
        loaded = load_traces(path)
        orig_cov = captured_variation(web_run.traces, "cpi")
        loaded_cov = captured_variation(loaded, "cpi")
        assert loaded_cov == pytest.approx(orig_cov, rel=1e-6)
        series = loaded[0].series("cpi", 10_000)
        assert len(series) >= 1

    def test_metadata_preserved(self, web_run, tmp_path):
        path = str(tmp_path / "traces.json")
        save_traces(web_run.traces[:3], path)
        loaded = load_traces(path)
        assert loaded[0].spec.metadata["file_id"] == (
            web_run.traces[0].spec.metadata["file_id"]
        )


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            load_traces(str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"format": "repro-request-traces", "version": 99, "traces": []})
        )
        with pytest.raises(ValueError):
            load_traces(str(path))

    def test_malformed_trace_dict_rejected(self):
        with pytest.raises(ValueError):
            trace_from_dict({"request_id": 1})

    def test_dict_is_json_serializable(self, tpcc_run):
        payload = trace_to_dict(tpcc_run.traces[0])
        json.dumps(payload)  # must not raise


class TestJsonl:
    def test_suffix_dispatch_round_trip(self, web_run, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        save_traces(web_run.traces[:5], path)
        loaded = load_traces(path)
        assert len(loaded) == 5
        for orig, back in zip(web_run.traces, loaded):
            assert back.spec.request_id == orig.spec.request_id
            assert np.allclose(back.cycles, orig.cycles)
            assert back.syscall_events == orig.syscall_events

    def test_reexport_is_byte_lossless(self, tpcc_run):
        text = traces_to_jsonl(tpcc_run.traces[:8])
        reparsed = parse_traces_jsonl(text)
        assert traces_to_jsonl(reparsed) == text

    def test_analysis_matches_after_jsonl_round_trip(self, tpcc_run):
        """The exported stream replays to the same per-request CPI stats."""
        loaded = parse_traces_jsonl(traces_to_jsonl(tpcc_run.traces))
        original = np.array([t.overall_cpi() for t in tpcc_run.traces])
        replayed = np.array([t.overall_cpi() for t in loaded])
        np.testing.assert_allclose(replayed, original, rtol=1e-12)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parse_traces_jsonl("")

    def test_malformed_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            parse_traces_jsonl("{oops\n")

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro trace"):
            parse_traces_jsonl('{"format":"other","version":1}\n')

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            parse_traces_jsonl(
                '{"format":"repro-request-traces","version":99,"traces":0}\n'
            )

    def test_malformed_line_reports_number(self, tpcc_run):
        lines = traces_to_jsonl(tpcc_run.traces[:2]).splitlines()
        lines[2] = '{"request_id": 1}'
        with pytest.raises(ValueError, match="line 3"):
            parse_traces_jsonl("\n".join(lines) + "\n")

    def test_count_mismatch_rejected(self, tpcc_run):
        lines = traces_to_jsonl(tpcc_run.traces[:3]).splitlines()
        del lines[-1]
        with pytest.raises(ValueError, match="declares"):
            parse_traces_jsonl("\n".join(lines) + "\n")

    def test_blank_lines_do_not_shift_reported_line_numbers(self, tpcc_run):
        lines = traces_to_jsonl(tpcc_run.traces[:2]).splitlines()
        lines.insert(1, "")  # blank separator after the header
        lines[3] = '{"request_id": 1}'  # file line 4, not non-blank line 3
        with pytest.raises(ValueError, match="line 4"):
            parse_traces_jsonl("\n".join(lines) + "\n")
