"""Tests for the distributed (multi-machine) extension — paper Section 7."""

import numpy as np
import pytest

from repro.analysis.placement import (
    compare_placements,
    machine_breakdown,
    per_machine_variation,
)
from repro.hardware.cpu import PhaseBehavior, compute_effective_rates
from repro.hardware.cache import SharedL2Model
from repro.hardware.memory import MemoryBusModel
from repro.hardware.platform import MachineConfig, cluster_machine
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.registry import make_workload

SCAN = PhaseBehavior(
    base_cpi=0.95, l2_refs_per_ins=0.024, l2_miss_ratio=0.35, cache_footprint=1.0
)

RUBIS_TIERS = ("tomcat", "jboss", "mysql", "jboss_render", "tomcat_out")


def two_machine_run(placement, num_requests=16, seed=3, delay_us=80.0):
    machine = cluster_machine(2, 4)
    config = SimConfig(
        machine=machine,
        sampling=SamplingPolicy.interrupt(100.0),
        num_requests=num_requests,
        concurrency=10,
        seed=seed,
        tier_placement=placement,
        network_delay_us=delay_us,
    )
    return machine, ServerSimulator(make_workload("rubis"), config).run()


class TestClusterMachine:
    def test_topology(self):
        machine = cluster_machine(2, 4)
        assert machine.num_cores == 8
        assert machine.num_machines == 2
        assert machine.machine_cores(0) == (0, 1, 2, 3)
        assert machine.machine_cores(1) == (4, 5, 6, 7)
        assert machine.bus_domain_of(5) == 1
        assert machine.bus_peers_of(0) == (1, 2, 3)

    def test_l2_domains_within_machines(self):
        machine = cluster_machine(3, 4)
        for die in machine.l2_domains:
            machines = {machine.bus_domain_of(c) for c in die}
            assert len(machines) == 1

    def test_single_machine_default_bus(self):
        machine = MachineConfig()
        assert machine.num_machines == 1
        assert machine.bus_peers_of(0) == (1, 2, 3)

    def test_l2_domain_spanning_machines_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(
                num_cores=4,
                l2_domains=((0, 1), (2, 3)),
                bus_domains=((0, 2), (1, 3)),
            )

    def test_invalid_cluster_params(self):
        with pytest.raises(ValueError):
            cluster_machine(0, 4)


class TestCrossMachineContention:
    def test_no_bus_coupling_across_machines(self):
        machine = cluster_machine(2, 4)
        cache, bus = SharedL2Model(), MemoryBusModel()
        # One scan alone on machine 0.
        solo = compute_effective_rates(machine, cache, bus, {0: SCAN})
        # Scans saturating machine 1 must not slow machine 0's core.
        remote = compute_effective_rates(
            machine, cache, bus, {0: SCAN, 4: SCAN, 5: SCAN, 6: SCAN, 7: SCAN}
        )
        assert remote[0].cpi == pytest.approx(solo[0].cpi)

    def test_local_coupling_still_applies(self):
        machine = cluster_machine(2, 4)
        cache, bus = SharedL2Model(), MemoryBusModel()
        solo = compute_effective_rates(machine, cache, bus, {0: SCAN})
        local = compute_effective_rates(machine, cache, bus, {0: SCAN, 1: SCAN})
        assert local[0].cpi > solo[0].cpi


class TestTierPlacement:
    def test_stages_land_on_assigned_machines(self):
        placement = {t: 0 for t in RUBIS_TIERS}
        placement["mysql"] = 1
        machine, run = two_machine_run(placement)
        for trace in run.traces:
            machines_used = {machine.bus_domain_of(int(c)) for c in trace.core}
            assert machines_used == {0, 1}

    def test_all_on_one_machine_leaves_other_idle(self):
        placement = {t: 0 for t in RUBIS_TIERS}
        machine, run = two_machine_run(placement)
        assert np.all(run.busy_cycles_per_core[4:] == 0.0)

    def test_network_delay_adds_latency_not_cpu(self):
        split = {t: 0 for t in RUBIS_TIERS}
        split["mysql"] = 1
        _, slow_net = two_machine_run(split, delay_us=500.0, seed=9)
        _, fast_net = two_machine_run(split, delay_us=1.0, seed=9)
        lat_slow = np.mean(
            [t.completion_cycle - t.arrival_cycle for t in slow_net.traces]
        )
        lat_fast = np.mean(
            [t.completion_cycle - t.arrival_cycle for t in fast_net.traces]
        )
        assert lat_slow > lat_fast
        # The latency gap reflects the network delay (requests cross
        # machines twice), partially offset by closed-loop queueing:
        # in-flight requests relieve CPU contention for the others.
        assert lat_slow - lat_fast > 250.0 * 3000.0
        # The delay is pure wait: per-request CPU consumption is unchanged.
        cpu_slow = np.mean([t.cpu_time_us() for t in slow_net.traces])
        cpu_fast = np.mean([t.cpu_time_us() for t in fast_net.traces])
        assert cpu_slow == pytest.approx(cpu_fast, rel=0.1)

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError):
            two_machine_run({"mysql": 7})

    def test_unplaced_tier_defaults_to_machine_zero(self):
        machine, run = two_machine_run({"mysql": 1})  # others unlisted
        for trace in run.traces:
            domains = {machine.bus_domain_of(int(c)) for c in trace.core}
            assert domains == {0, 1}


class TestPlacementAnalysis:
    @pytest.fixture(scope="class")
    def split_run(self):
        placement = {t: 0 for t in RUBIS_TIERS}
        placement["mysql"] = 1
        return two_machine_run(placement, num_requests=16)

    def test_machine_breakdown_conserves_counters(self, split_run):
        machine, run = split_run
        trace = run.traces[0]
        shares = machine_breakdown(trace, machine)
        assert set(shares) == {0, 1}
        total_ins = sum(s.instructions for s in shares.values())
        assert total_ins == pytest.approx(trace.total_instructions)
        total_cycles = sum(s.cycles for s in shares.values())
        assert total_cycles == pytest.approx(trace.total_cycles)

    def test_per_machine_variation_report(self, split_run):
        machine, run = split_run
        report = per_machine_variation(run.traces, machine)
        assert set(report) == {0, 1}
        shares = [report[m]["instruction_share"] for m in (0, 1)]
        assert sum(shares) == pytest.approx(1.0)
        for stats in report.values():
            assert stats["mean_cpi"] > 0
            assert stats["cpi_cov"] >= 0
            assert stats["requests_seen"] == len(run.traces)

    def test_compare_placements_returns_sorted_rows(self):
        machine = cluster_machine(2, 4)
        placements = {
            "together": {t: 0 for t in RUBIS_TIERS},
            "db-split": {**{t: 0 for t in RUBIS_TIERS}, "mysql": 1},
        }
        rows = compare_placements(
            "rubis", placements, machine, num_requests=10, seed=4
        )
        assert [r["placement"] for r in rows] == sorted(
            (r["placement"] for r in rows),
            key=lambda label: next(
                row["mean_latency_us"] for row in rows if row["placement"] == label
            ),
        )
        for row in rows:
            assert row["mean_cpi"] > 0
            assert row["throughput_req_per_s"] > 0

    def test_spreading_relieves_contention(self):
        """Isolating the database must lower mean CPI vs consolidation —
        the placement-guidance claim of the paper's future work."""
        machine = cluster_machine(2, 4)
        placements = {
            "together": {t: 0 for t in RUBIS_TIERS},
            "db-split": {**{t: 0 for t in RUBIS_TIERS}, "mysql": 1},
        }
        rows = {
            r["placement"]: r
            for r in compare_placements(
                "rubis", placements, machine, num_requests=24, seed=5
            )
        }
        assert rows["db-split"]["mean_cpi"] < rows["together"]["mean_cpi"]
