"""Property tests for the pluggable arrival processes."""

import json
import math

import numpy as np
import pytest

from repro.traffic import (
    Arrival,
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceReplay,
    ZipfArrivals,
    load_schedule,
    parse_arrivals,
    save_schedule,
)

GHZ = 3.0
CYCLES_PER_S = GHZ * 1e9


def empirical_rate(arrivals):
    times = [a.cycle for a in arrivals]
    span_s = (times[-1] - times[0]) / CYCLES_PER_S
    return (len(times) - 1) / span_s


class TestScheduleShape:
    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(2000.0),
            OnOffArrivals(4000.0, 200.0, 5.0, 5.0),
            DiurnalArrivals(2000.0, 10.0, 0.8),
            ZipfArrivals(2000.0, 1.1, 8),
        ],
        ids=lambda p: p.kind,
    )
    def test_sorted_positive_and_sized(self, process):
        arrivals = process.schedule(np.random.default_rng(7), 200, GHZ)
        times = [a.cycle for a in arrivals]
        assert len(arrivals) == 200
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    @pytest.mark.parametrize(
        "process",
        [
            PoissonArrivals(2000.0),
            OnOffArrivals(4000.0, 200.0, 5.0, 5.0),
            DiurnalArrivals(2000.0, 10.0, 0.8),
            ZipfArrivals(2000.0, 1.1, 8),
        ],
        ids=lambda p: p.kind,
    )
    def test_same_seed_same_schedule(self, process):
        a = process.schedule(np.random.default_rng(11), 100, GHZ)
        b = process.schedule(np.random.default_rng(11), 100, GHZ)
        assert a == b

    def test_closed_loop_has_no_schedule(self):
        with pytest.raises(RuntimeError, match="no schedule"):
            ClosedLoop().schedule(np.random.default_rng(0), 10, GHZ)


class TestEmpiricalRates:
    """Long-run rates land inside a generous confidence interval.

    For n exponential gaps the measured rate is within ~4/sqrt(n)
    relative error at far beyond 99.99% confidence; n=4000 makes that
    ~6%, and we allow 10%.
    """

    N = 4000

    def test_poisson_rate(self):
        arrivals = PoissonArrivals(1500.0).schedule(
            np.random.default_rng(1), self.N, GHZ
        )
        assert empirical_rate(arrivals) == pytest.approx(1500.0, rel=0.10)

    def test_onoff_mean_rate(self):
        process = OnOffArrivals(6000.0, 500.0, 4.0, 4.0)
        arrivals = process.schedule(np.random.default_rng(2), self.N, GHZ)
        assert empirical_rate(arrivals) == pytest.approx(
            process.mean_rate_per_s(), rel=0.20
        )

    def test_diurnal_mean_rate(self):
        process = DiurnalArrivals(2000.0, 5.0, 0.9)
        arrivals = process.schedule(np.random.default_rng(3), self.N, GHZ)
        assert empirical_rate(arrivals) == pytest.approx(2000.0, rel=0.15)

    def test_onoff_is_burstier_than_poisson(self):
        """Interarrival CoV: ON-OFF > 1 (bursty), Poisson ~= 1."""

        def gap_cov(process, seed):
            arrivals = process.schedule(
                np.random.default_rng(seed), self.N, GHZ
            )
            gaps = np.diff([a.cycle for a in arrivals])
            return gaps.std() / gaps.mean()

        poisson_cov = gap_cov(PoissonArrivals(1000.0), 4)
        bursty_cov = gap_cov(OnOffArrivals(5000.0, 50.0, 3.0, 12.0), 4)
        assert poisson_cov == pytest.approx(1.0, abs=0.15)
        assert bursty_cov > poisson_cov + 0.3


class TestPoissonInvariances:
    """The superposition/thinning properties that define a Poisson process."""

    N = 3000

    def test_merge_invariance(self):
        """Two merged independent Poisson streams look like one at the
        summed rate: gap mean matches and gap CoV stays ~1."""
        a = PoissonArrivals(800.0).schedule(np.random.default_rng(10), self.N, GHZ)
        b = PoissonArrivals(1200.0).schedule(np.random.default_rng(11), self.N, GHZ)
        merged = sorted([x.cycle for x in a] + [x.cycle for x in b])
        # Restrict to the overlap where both streams are still active.
        horizon = min(a[-1].cycle, b[-1].cycle)
        merged = [t for t in merged if t <= horizon]
        gaps = np.diff(merged)
        measured = CYCLES_PER_S / gaps.mean()
        assert measured == pytest.approx(2000.0, rel=0.10)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.15)

    def test_thinning_invariance(self):
        """Keeping each arrival with p=0.4 yields Poisson at 0.4*rate."""
        arrivals = PoissonArrivals(2500.0).schedule(
            np.random.default_rng(12), self.N, GHZ
        )
        keep_rng = np.random.default_rng(13)
        thinned = [a.cycle for a in arrivals if keep_rng.random() < 0.4]
        gaps = np.diff(thinned)
        measured = CYCLES_PER_S / gaps.mean()
        assert measured == pytest.approx(1000.0, rel=0.12)
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.15)


class TestZipfTenants:
    def test_tenant_popularity_is_skewed_and_ranked(self):
        process = ZipfArrivals(1000.0, 1.2, 6)
        arrivals = process.schedule(np.random.default_rng(5), 6000, GHZ)
        counts = np.bincount([a.tenant for a in arrivals], minlength=6)
        assert counts.argmax() == 0
        # Rank ordering holds for the well-populated head.
        assert counts[0] > counts[1] > counts[2]
        # And matches the analytic Zipf share within sampling noise.
        weights = 1.0 / np.arange(1, 7, dtype=float) ** 1.2
        expected = weights / weights.sum()
        assert counts[0] / counts.sum() == pytest.approx(expected[0], rel=0.10)

    def test_single_tenant_processes_tag_none(self):
        arrivals = PoissonArrivals(1000.0).schedule(
            np.random.default_rng(6), 10, GHZ
        )
        assert all(a.tenant is None for a in arrivals)


class TestTraceReplay:
    def test_round_trip_is_byte_exact(self, tmp_path):
        path = str(tmp_path / "schedule.jsonl")
        entries = [
            (0.1 + 0.37 * i, (i % 3) if i % 2 else None) for i in range(50)
        ]
        save_schedule(entries, path)
        loaded = load_schedule(path)
        assert loaded == entries
        # save(load(x)) reproduces the file bytes exactly.
        path2 = str(tmp_path / "schedule2.jsonl")
        save_schedule(loaded, path2)
        with open(path, "rb") as f1, open(path2, "rb") as f2:
            assert f1.read() == f2.read()

    def test_replay_consumes_no_rng(self, tmp_path):
        path = str(tmp_path / "schedule.jsonl")
        save_schedule([(float(i), None) for i in range(10)], path)
        rng = np.random.default_rng(0)
        TraceReplay(path).schedule(rng, 10, GHZ)
        assert float(rng.random()) == float(np.random.default_rng(0).random())

    def test_replay_cycles_match_timestamps(self, tmp_path):
        path = str(tmp_path / "schedule.jsonl")
        save_schedule([(2.5, 1), (7.0, None)], path)
        arrivals = TraceReplay(path).schedule(np.random.default_rng(0), 2, GHZ)
        assert arrivals == [
            Arrival(2.5 * GHZ * 1e3, tenant=1),
            Arrival(7.0 * GHZ * 1e3, tenant=None),
        ]

    def test_replay_needs_enough_entries(self, tmp_path):
        path = str(tmp_path / "schedule.jsonl")
        save_schedule([(1.0, None)], path)
        with pytest.raises(ValueError, match="has 1 arrivals"):
            TraceReplay(path).schedule(np.random.default_rng(0), 5, GHZ)

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "nope"}) + "\n")
        with pytest.raises(ValueError, match="not a repro-arrival-schedule"):
            load_schedule(str(path))

    def test_load_rejects_decreasing_times(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": "repro-arrival-schedule", "version": 1})
            + "\n"
            + json.dumps({"t_us": 5.0})
            + "\n"
            + json.dumps({"t_us": 4.0})
            + "\n"
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            load_schedule(str(path))

    def test_load_rejects_non_finite_times(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"format": "repro-arrival-schedule", "version": 1})
            + "\n"
            + json.dumps({"t_us": math.inf})
            + "\n"
        )
        with pytest.raises(ValueError, match="finite"):
            load_schedule(str(path))


class TestParseArrivals:
    def test_each_form(self):
        assert isinstance(parse_arrivals("closed"), ClosedLoop)
        assert parse_arrivals("poisson:1500") == PoissonArrivals(1500.0)
        assert parse_arrivals("onoff:4000,200,5,5") == OnOffArrivals(
            4000.0, 200.0, 5.0, 5.0
        )
        assert parse_arrivals("diurnal:2000,10,0.8") == DiurnalArrivals(
            2000.0, 10.0, 0.8
        )
        assert parse_arrivals("zipf:2000,1.1,8") == ZipfArrivals(2000.0, 1.1, 8)
        assert parse_arrivals("replay:/tmp/x.jsonl") == TraceReplay("/tmp/x.jsonl")

    @pytest.mark.parametrize(
        "text",
        [
            "bogus",
            "closed:1",
            "poisson:",
            "poisson:fast",
            "poisson:-5",
            "onoff:1,2,3",
            "zipf:100,1.1,2.5",
            "zipf:100,1.1,1",
            "diurnal:100,10,1.5",
            "replay:",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_arrivals(text)
