"""LatencyStore accounting tests (cycles in, microseconds out)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.traffic import LatencyStore

GHZ = 3.0


def cycles(us):
    return us * GHZ * 1e3


class TestRecording:
    def test_queueing_and_total_latency(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "payment", cycles(10.0))
        store.on_start(0, cycles(15.0))
        store.on_complete(0, cycles(40.0))
        assert store.latencies_us() == pytest.approx([30.0])
        assert store.queue_delays_us() == pytest.approx([5.0])

    def test_duplicate_arrival_raises(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "payment", 0.0)
        with pytest.raises(ValueError, match="already arrived"):
            store.on_arrival(0, "payment", 1.0)

    def test_only_first_start_counts(self):
        """A request resumed after preemption keeps its first-dispatch time."""
        store = LatencyStore(GHZ)
        store.on_arrival(0, "payment", cycles(0.0))
        store.on_start(0, cycles(2.0))
        store.on_start(0, cycles(9.0))
        store.on_complete(0, cycles(10.0))
        assert store.queue_delays_us() == pytest.approx([2.0])

    def test_shed_requests_counted_never_measured(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "payment", 0.0)
        store.on_shed(cycles(1.0))
        store.on_shed(cycles(2.0))
        store.on_complete(0, cycles(5.0))
        assert store.shed == 2
        assert store.completed == 1
        assert len(store.latencies_us()) == 1


class TestSummary:
    def test_summary_columns(self):
        store = LatencyStore(GHZ)
        for i in range(100):
            store.on_arrival(i, "k", cycles(i * 10.0))
            store.on_start(i, cycles(i * 10.0 + 1.0))
            store.on_complete(i, cycles(i * 10.0 + 1.0 + (i + 1)))
        summary = store.summary()
        assert summary["completed"] == 100
        assert summary["shed"] == 0
        # Latencies are 2..101 us; p50/p95/p99 track the order statistics.
        assert summary["latency_us"]["p50"] == pytest.approx(51.0)
        assert summary["latency_us"]["p95"] == pytest.approx(96.0)
        assert summary["latency_us"]["p99"] == pytest.approx(100.0)
        assert summary["queue_us"]["mean"] == pytest.approx(1.0)

    def test_empty_store_summary_is_none_filled(self):
        summary = LatencyStore(GHZ).summary()
        assert summary["completed"] == 0
        assert summary["throughput_rps"] is None
        assert summary["latency_us"]["p99"] is None

    def test_throughput_over_run_extent(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "k", cycles(0.0))
        store.on_arrival(1, "k", cycles(100.0))
        store.on_complete(0, cycles(500.0))
        store.on_complete(1, cycles(1000.0))
        # 2 requests over 1000 us of extent = 2000 req/s.
        assert store.throughput_rps() == pytest.approx(2000.0)


class TestGroupedRows:
    def test_rows_by_kind_sorted(self):
        store = LatencyStore(GHZ)
        for i, kind in enumerate(["b", "a", "b"]):
            store.on_arrival(i, kind, cycles(0.0))
            store.on_complete(i, cycles(10.0 * (i + 1)))
        rows = store.rows_by_kind()
        assert [r["kind"] for r in rows] == ["a", "b"]
        assert rows[0]["requests"] == 1
        assert rows[1]["requests"] == 2
        assert rows[1]["mean_us"] == pytest.approx(20.0)

    def test_rows_by_tenant_skips_untagged(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "k", 0.0, tenant=2)
        store.on_arrival(1, "k", 0.0)
        store.on_complete(0, cycles(5.0))
        store.on_complete(1, cycles(5.0))
        rows = store.rows_by_tenant()
        assert len(rows) == 1
        assert rows[0]["tenant"] == 2


class TestMetricsRegistration:
    def test_counters_and_histograms(self):
        store = LatencyStore(GHZ)
        store.on_arrival(0, "k", cycles(0.0))
        store.on_start(0, cycles(1.0))
        store.on_complete(0, cycles(4.0))
        store.on_shed(cycles(5.0))
        registry = MetricsRegistry()
        store.register_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests_measured"] == 1
        assert snapshot["counters"]["requests_shed"] == 1
        assert snapshot["histograms"]["request_latency_us"]["count"] == 1

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError, match="frequency"):
            LatencyStore(0.0)
