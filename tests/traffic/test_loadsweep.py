"""Open-loop integration tests: simulator + traffic layer end to end."""

import numpy as np
import pytest

from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.traffic import (
    ClosedLoop,
    PoissonArrivals,
    RoundRobinDispatch,
    TraceReplay,
    TrafficConfig,
    ZipfArrivals,
    parse_dispatch,
    save_schedule,
)
from repro.workloads.registry import make_workload


def open_run(seed=0, rate=4000.0, n=60, dispatch="rr", limit=None, app="tpcc"):
    config = SimConfig(
        num_requests=n,
        concurrency=32,
        seed=seed,
        traffic=TrafficConfig(
            arrivals=PoissonArrivals(rate),
            dispatch=parse_dispatch(dispatch),
            admission_limit=limit,
        ),
    )
    return ServerSimulator(make_workload(app), config).run()


class TestClosedLoopEquivalence:
    """Explicit closed-loop traffic is byte-identical to no traffic at all."""

    def test_traces_match_exactly(self):
        base = SimConfig(num_requests=20, concurrency=4, seed=7)
        explicit = SimConfig(
            num_requests=20,
            concurrency=4,
            seed=7,
            traffic=TrafficConfig(
                arrivals=ClosedLoop(), dispatch=RoundRobinDispatch()
            ),
        )
        a = ServerSimulator(make_workload("tpcc"), base).run()
        b = ServerSimulator(make_workload("tpcc"), explicit).run()
        assert a.wall_cycles == b.wall_cycles
        assert [
            (t.spec.request_id, t.arrival_cycle, t.completion_cycle)
            for t in a.traces
        ] == [
            (t.spec.request_id, t.arrival_cycle, t.completion_cycle)
            for t in b.traces
        ]
        assert np.array_equal(a.request_cpis(), b.request_cpis())
        # The explicit config measures latency; the legacy one doesn't.
        assert a.latency is None
        assert b.latency is not None
        assert b.latency.completed == 20

    def test_legacy_rate_shorthand_matches_poisson_traffic(self):
        legacy = SimConfig(num_requests=30, seed=3, arrival_rate_per_s=2000.0)
        traffic = SimConfig(
            num_requests=30,
            seed=3,
            traffic=TrafficConfig(arrivals=PoissonArrivals(2000.0)),
        )
        a = ServerSimulator(make_workload("tpcc"), legacy).run()
        b = ServerSimulator(make_workload("tpcc"), traffic).run()
        assert [t.arrival_cycle for t in a.traces] == [
            t.arrival_cycle for t in b.traces
        ]

    def test_rate_and_traffic_are_mutually_exclusive(self):
        config = SimConfig(
            num_requests=10,
            arrival_rate_per_s=100.0,
            traffic=TrafficConfig(arrivals=PoissonArrivals(100.0)),
        )
        with pytest.raises(ValueError, match="not both"):
            ServerSimulator(make_workload("tpcc"), config)


class TestDispatchPolicies:
    def test_deterministic_per_policy(self):
        for policy in ("rr", "random", "jsq", "low", "classaware"):
            a = open_run(seed=11, dispatch=policy, n=40)
            b = open_run(seed=11, dispatch=policy, n=40)
            assert a.latency.summary() == b.latency.summary(), policy

    def test_policies_actually_differ(self):
        summaries = {
            policy: open_run(seed=11, dispatch=policy, n=40).latency.summary()
            for policy in ("rr", "random", "jsq")
        }
        assert (
            summaries["rr"] != summaries["random"]
            or summaries["rr"] != summaries["jsq"]
        )

    def test_metamorphic_jsq_tail_beats_random_at_high_load(self):
        """Queue-aware placement can't be worse than blind placement in
        expectation; compare seed-averaged p99 well past saturation."""
        seeds = (0, 2, 3)

        def mean_p99(policy):
            return np.mean(
                [
                    open_run(
                        seed=s, rate=6000.0, n=100, dispatch=policy
                    ).latency.summary()["latency_us"]["p99"]
                    for s in seeds
                ]
            )

        assert mean_p99("jsq") <= mean_p99("random")


class TestBackpressure:
    def test_admission_limit_sheds_under_overload(self):
        run = open_run(seed=1, rate=20000.0, n=60, limit=8)
        assert run.requests_shed > 0
        assert run.latency.shed == run.requests_shed
        assert run.latency.completed + run.requests_shed == 60
        # Every completed request still produced a full trace.
        assert len(run.traces) == run.latency.completed

    def test_no_shedding_under_light_load(self):
        run = open_run(seed=1, rate=300.0, n=30, limit=8)
        assert run.requests_shed == 0
        assert run.latency.completed == 30

    def test_shed_events_are_observable(self):
        from repro.obs.trace import TraceCollector

        collector = TraceCollector(capacity=100_000)
        config = SimConfig(
            num_requests=60,
            concurrency=32,
            seed=1,
            collector=collector,
            traffic=TrafficConfig(
                arrivals=PoissonArrivals(20000.0),
                dispatch=RoundRobinDispatch(),
                admission_limit=8,
            ),
        )
        result = ServerSimulator(make_workload("tpcc"), config).run()
        shed_events = [e for e in collector.events if e.kind == "request_shed"]
        assert len(shed_events) == result.requests_shed > 0


class TestTenantsAndReplay:
    def test_zipf_tenants_flow_into_latency_rows(self):
        config = SimConfig(
            num_requests=50,
            concurrency=16,
            seed=5,
            traffic=TrafficConfig(arrivals=ZipfArrivals(3000.0, 1.2, 4)),
        )
        result = ServerSimulator(make_workload("tpcc"), config).run()
        rows = result.latency.rows_by_tenant()
        assert rows
        assert sum(r["requests"] for r in rows) == 50
        assert all(0 <= r["tenant"] < 4 for r in rows)

    def test_replay_reproduces_recorded_arrivals(self, tmp_path):
        path = str(tmp_path / "arrivals.jsonl")
        save_schedule([(50.0 * (i + 1), None) for i in range(20)], path)
        config = SimConfig(
            num_requests=20,
            concurrency=16,
            seed=9,
            traffic=TrafficConfig(arrivals=TraceReplay(path)),
        )
        result = ServerSimulator(make_workload("tpcc"), config).run()
        arrivals = sorted(t.arrival_cycle for t in result.traces)
        expected = [50.0 * (i + 1) * 3e3 for i in range(20)]
        assert arrivals == pytest.approx(expected)


class TestLoadsweepExperiment:
    def test_rows_cover_the_grid_and_jobs_do_not_matter(self):
        from repro.experiments.loadsweep import OFFERED_LOADS, POLICIES, run

        serial = run(scale=0.2, jobs=1)
        parallel = run(scale=0.2, jobs=4)
        assert serial.rows == parallel.rows
        assert serial.render() == parallel.render()
        assert len(serial.rows) == len(OFFERED_LOADS) * len(POLICIES)
        assert [r["offered_rps"] for r in serial.rows[:: len(POLICIES)]] == [
            int(rate) for rate in OFFERED_LOADS
        ]

    def test_tail_latency_grows_with_offered_load(self):
        from repro.experiments.loadsweep import run

        rows = [r for r in run(scale=0.2).rows if r["dispatch"] == "rr"]
        assert rows[-1]["p99_us"] > 2.0 * rows[0]["p99_us"]
