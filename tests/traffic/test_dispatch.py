"""Dispatch-policy unit tests against a scripted queue view."""

import pytest

from repro.traffic import (
    ClassAwareDispatch,
    JoinShortestQueue,
    LeastOutstandingWork,
    RandomDispatch,
    RoundRobinDispatch,
    class_map_from_identifier,
    parse_dispatch,
)


class FakeView:
    def __init__(self, depths=None, work=None):
        self.depths = depths or {}
        self.work = work or {}

    def queue_depth(self, core_id):
        return self.depths.get(core_id, 0)

    def outstanding_work(self, core_id):
        return self.work.get(core_id, 0.0)


class FakeSpec:
    def __init__(self, kind="new_order"):
        self.kind = kind


CORES = (0, 1, 2, 3)


class TestRoundRobin:
    def test_cycles_per_machine(self):
        policy = RoundRobinDispatch()
        policy.reset(seed=0)
        view = FakeView()
        picks = [
            policy.choose(0, CORES, FakeSpec(), 0, view) for _ in range(6)
        ]
        assert picks == [0, 1, 2, 3, 0, 1]

    def test_machines_count_independently(self):
        policy = RoundRobinDispatch()
        policy.reset(seed=0)
        view = FakeView()
        assert policy.choose(0, (0, 1), FakeSpec(), 0, view) == 0
        assert policy.choose(1, (2, 3), FakeSpec(), 0, view) == 2
        assert policy.choose(0, (0, 1), FakeSpec(), 0, view) == 1
        assert policy.choose(1, (2, 3), FakeSpec(), 0, view) == 3

    def test_reset_restarts_the_cycle(self):
        policy = RoundRobinDispatch()
        policy.reset(seed=0)
        view = FakeView()
        policy.choose(0, CORES, FakeSpec(), 0, view)
        policy.reset(seed=0)
        assert policy.choose(0, CORES, FakeSpec(), 0, view) == 0


class TestRandom:
    def test_deterministic_for_a_seed(self):
        a, b = RandomDispatch(), RandomDispatch()
        a.reset(seed=5)
        b.reset(seed=5)
        view = FakeView()
        picks_a = [a.choose(0, CORES, FakeSpec(), 0, view) for _ in range(20)]
        picks_b = [b.choose(0, CORES, FakeSpec(), 0, view) for _ in range(20)]
        assert picks_a == picks_b

    def test_seed_changes_the_stream(self):
        a, b = RandomDispatch(), RandomDispatch()
        a.reset(seed=5)
        b.reset(seed=6)
        view = FakeView()
        picks_a = [a.choose(0, CORES, FakeSpec(), 0, view) for _ in range(20)]
        picks_b = [b.choose(0, CORES, FakeSpec(), 0, view) for _ in range(20)]
        assert picks_a != picks_b

    def test_stays_on_candidate_cores(self):
        policy = RandomDispatch()
        policy.reset(seed=1)
        view = FakeView()
        for _ in range(50):
            assert policy.choose(0, (2, 3), FakeSpec(), 0, view) in (2, 3)


class TestQueueAware:
    def test_jsq_picks_least_depth(self):
        view = FakeView(depths={0: 3, 1: 1, 2: 2, 3: 5})
        assert JoinShortestQueue().choose(0, CORES, FakeSpec(), 0, view) == 1

    def test_jsq_ties_break_to_lowest_core(self):
        view = FakeView(depths={0: 2, 1: 2, 2: 2, 3: 2})
        assert JoinShortestQueue().choose(0, CORES, FakeSpec(), 0, view) == 0

    def test_low_weighs_work_not_heads(self):
        # Core 1 has more tasks but far less remaining work.
        view = FakeView(
            depths={0: 1, 1: 3},
            work={0: 9e6, 1: 3e3},
        )
        assert JoinShortestQueue().choose(0, (0, 1), FakeSpec(), 0, view) == 0
        assert LeastOutstandingWork().choose(0, (0, 1), FakeSpec(), 0, view) == 1


class TestClassAware:
    def test_explicit_class_map_partitions_cores(self):
        policy = ClassAwareDispatch(classes={"heavy": 1, "light": 0})
        policy.reset(seed=0)
        view = FakeView()
        # Two classes over four cores: class 0 -> even cores, 1 -> odd.
        assert policy.choose(0, CORES, FakeSpec("light"), 0, view) in (0, 2)
        assert policy.choose(0, CORES, FakeSpec("heavy"), 0, view) in (1, 3)

    def test_unknown_kind_falls_back_to_jsq(self):
        policy = ClassAwareDispatch(classes={"heavy": 1})
        policy.reset(seed=0)
        view = FakeView(depths={0: 4, 1: 4, 2: 4, 3: 0})
        assert policy.choose(0, CORES, FakeSpec("mystery"), 0, view) == 3

    def test_learns_heavy_light_split_from_completions(self):
        policy = ClassAwareDispatch()
        policy.reset(seed=0)
        view = FakeView()
        # Before any feedback: plain JSQ over all cores.
        assert policy.choose(0, CORES, FakeSpec("big"), 0, view) == 0
        for _ in range(5):
            policy.observe_completion("big", 5000.0)
            policy.observe_completion("small", 50.0)
        heavy = policy.choose(0, CORES, FakeSpec("big"), 0, view)
        light = policy.choose(0, CORES, FakeSpec("small"), 0, view)
        assert heavy in (1, 3)
        assert light in (0, 2)

    def test_reset_forgets_learned_demand(self):
        policy = ClassAwareDispatch()
        policy.reset(seed=0)
        policy.observe_completion("big", 5000.0)
        policy.observe_completion("small", 50.0)
        policy.reset(seed=0)
        view = FakeView(depths={0: 1, 1: 0})
        # Back to JSQ (core 1 is shorter), not class partitioning.
        assert policy.choose(0, (0, 1), FakeSpec("big"), 0, view) == 1

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            ClassAwareDispatch(ewma_alpha=0.0)


class TestClassMapFromIdentifier:
    def test_dense_indices_from_bank_labels(self):
        class Bank:
            labels = ["payment", "new_order", "payment", "delivery"]

        class Identifier:
            bank = Bank()

        assert class_map_from_identifier(Identifier()) == {
            "delivery": 0,
            "new_order": 1,
            "payment": 2,
        }

    def test_unfitted_identifier_raises(self):
        with pytest.raises(ValueError, match="no fitted signature bank"):
            class_map_from_identifier(object())


class TestParseDispatch:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("rr", RoundRobinDispatch),
            ("random", RandomDispatch),
            ("jsq", JoinShortestQueue),
            ("low", LeastOutstandingWork),
            ("classaware", ClassAwareDispatch),
        ],
    )
    def test_known_policies(self, name, cls):
        assert isinstance(parse_dispatch(name), cls)

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown dispatch policy"):
            parse_dispatch("fifo")
