"""Property suite for composable fault schedules.

Four contracts pinned here:

1. Determinism — the same spec and seed produce the same injected set
   and structurally identical request streams, every time.
2. Rates — over many draws the injection rate lands inside a binomial
   confidence interval of the clause rate.
3. Windows — ``@lo-hi`` activation windows are honored *exactly*: every
   faulted id is inside the half-open range, nothing outside it fires.
4. Legacy byte-identity — old ``kind:rate`` specs route through the
   schedule engine yet reproduce the original ``FaultInjectingWorkload``
   stream request-for-request (same RNG draw order, same injected ids,
   same phase structure), under both generation paths.

Plus pinned regression tests for malformed-spec errors: the message must
name the offending token so a bad ``--faults`` is self-explanatory.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.faults.schedule import (
    FaultClause,
    FaultSchedule,
    ScheduledFaultWorkload,
    parse_fault_schedule,
)
from repro.faults.taxonomy import FAULT_TAXONOMY, LEGACY_FAULT_KINDS
from repro.workloads.faults import FaultInjectingWorkload
from repro.workloads.registry import make_workload

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
RATES = st.floats(min_value=0.05, max_value=0.95, allow_nan=False)


def draw(workload, n, seed=0):
    rng = np.random.default_rng(seed)
    return [workload.sample_request(rng, i) for i in range(n)]


def scheduled(spec_text, workload="tpcc"):
    return ScheduledFaultWorkload(
        make_workload(workload), parse_fault_schedule(spec_text)
    )


def fingerprint(spec):
    """Structural identity of a request spec, independent of the concrete
    class (reference ``RequestSpec`` vs genfast ``FastRequestSpec``, which
    has no ``__eq__``)."""
    return (
        spec.request_id,
        spec.app,
        spec.kind,
        tuple(sorted((k, str(v)) for k, v in spec.metadata.items())),
        tuple(
            (
                stage.tier,
                tuple(
                    (
                        phase.name,
                        phase.instructions,
                        phase.behavior.base_cpi,
                        phase.behavior.l2_refs_per_ins,
                        phase.behavior.l2_miss_ratio,
                        phase.behavior.cache_footprint,
                        phase.entry_syscall,
                        phase.syscall_rate_per_ins,
                        tuple(phase.syscall_pool),
                    )
                    for phase in stage.phases
                ),
            )
            for stage in spec.stages
        ),
    )


class TestParser:
    def test_legacy_clause_round_trips(self):
        schedule = parse_fault_schedule("lock_stall:0.25")
        assert schedule.is_legacy
        assert schedule.to_spec() == "lock_stall:0.25"
        (clause,) = schedule.clauses
        assert clause.kind == "lock_stall" and clause.rate == 0.25

    def test_full_grammar_round_trips(self):
        text = "gc_pause:0.2@5-40%kind=new_order*3+cache_thrash:0.1%tenant=2"
        schedule = parse_fault_schedule(text)
        assert not schedule.is_legacy
        first, second = schedule.clauses
        assert first.window == (5, 40)
        assert first.target_kind == "new_order"
        assert first.burst == 3
        assert second.target_tenant == 2
        assert parse_fault_schedule(schedule.to_spec()) == schedule

    def test_every_taxonomy_kind_parses(self):
        for kind in FAULT_TAXONOMY:
            schedule = parse_fault_schedule(f"{kind}:0.3")
            assert schedule.kinds == (kind,)

    def test_non_legacy_kind_is_not_legacy_schedule(self):
        assert not parse_fault_schedule("gc_pause:0.3").is_legacy

    def test_options_in_any_order(self):
        a = parse_fault_schedule("gc_pause:0.2@0-10*2")
        b = parse_fault_schedule("gc_pause:0.2*2@0-10")
        assert a == b

    def test_clause_validation_mirrors_parser(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultClause(kind="gremlins", rate=0.2)
        with pytest.raises(ValueError, match=r"rate 1.5 must be in \[0, 1\]"):
            FaultClause(kind="gc_pause", rate=1.5)
        with pytest.raises(ValueError, match="window"):
            FaultClause(kind="gc_pause", rate=0.2, window=(5, 5))
        with pytest.raises(ValueError, match="burst"):
            FaultClause(kind="gc_pause", rate=0.2, burst=0)
        with pytest.raises(ValueError, match="at least one clause"):
            FaultSchedule(clauses=())


class TestMalformedSpecs:
    """Error messages must name the offending token (pinned strings —
    the CLIs surface these verbatim via ArgumentTypeError)."""

    @pytest.mark.parametrize(
        ("spec", "message"),
        [
            ("", r"empty fault spec ''"),
            ("   ", r"empty fault spec '   '"),
            ("lock_stall", r"clause 'lock_stall' must start with kind:rate"),
            ("gremlins:0.2", r"unknown fault kind 'gremlins'"),
            ("gc_pause:oops",
             r"fault spec clause 'gc_pause:oops': fault rate 'oops' is not "
             r"a number"),
            ("gc_pause:1.5", r"fault rate 1.5 must be in \[0, 1\]"),
            ("gc_pause:-0.1", r"fault rate -0.1 must be in \[0, 1\]"),
            ("gc_pause:0.2@5", r"bad activation window '@5'"),
            ("gc_pause:0.2@9-3", r"empty activation window '@9-3'"),
            ("gc_pause:0.2@1-5@2-6", r"duplicate activation window '@2-6'"),
            ("gc_pause:0.2%kind=", r"bad target '%kind='"),
            ("gc_pause:0.2%shard=3", r"unknown target '%shard=3'"),
            ("gc_pause:0.2%tenant=abc", r"tenant 'abc' in '%tenant=abc'"),
            ("gc_pause:0.2%kind=a%kind=b", r"duplicate target '%kind=b'"),
            ("gc_pause:0.2*x", r"bad burst '\*x'"),
            ("gc_pause:0.2*2*3", r"duplicate burst option '\*3'"),
            ("gc_pause:0.2+", r"empty fault clause"),
            ("+gc_pause:0.2", r"empty fault clause"),
        ],
    )
    def test_message_names_offending_token(self, spec, message):
        with pytest.raises(ValueError, match=message):
            parse_fault_schedule(spec)

    def test_cli_rejects_bad_spec_with_usage_error(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["--workload", "tpcc", "--faults", "gc_pause:oops"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "fault spec clause 'gc_pause:oops'" in err
        assert "'oops' is not a number" in err

    def test_serve_cli_rejects_bad_spec(self, capsys):
        from repro.serve.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["load-test", "--faults", "lock_stall:0.2@banana"]
            )
        assert excinfo.value.code == 2
        assert "bad activation window '@banana'" in capsys.readouterr().err


class TestDeterminism:
    @given(seed=SEEDS)
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_stream(self, seed):
        spec_text = "gc_pause:0.3+cache_thrash:0.2@0-25*2"
        a = scheduled(spec_text)
        b = scheduled(spec_text)
        specs_a = draw(a, 40, seed=seed)
        specs_b = draw(b, 40, seed=seed)
        assert a.injected_ids == b.injected_ids
        assert a.injected_kinds == b.injected_kinds
        assert [fingerprint(s) for s in specs_a] == [
            fingerprint(s) for s in specs_b
        ]

    @given(seed=SEEDS)
    @settings(max_examples=10, deadline=None)
    def test_ground_truth_matches_metadata(self, seed):
        w = scheduled("membw_saturation:0.4")
        specs = draw(w, 60, seed=seed)
        stamped = {
            s.request_id: s.metadata["injected_fault"]
            for s in specs
            if s.metadata.get("injected_fault") is not None
        }
        assert set(stamped) == w.injected_ids
        assert stamped == w.injected_kinds


class TestRates:
    @given(rate=RATES, seed=SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_rate_within_binomial_ci(self, rate, seed):
        n = 300
        w = scheduled(f"slow_replica:{rate:g}")
        draw(w, n, seed=seed)
        observed = len(w.injected_ids)
        # 4.5-sigma binomial band: false-failure odds ~1e-5 per example.
        sigma = math.sqrt(n * rate * (1.0 - rate))
        assert abs(observed - n * rate) <= 4.5 * sigma + 1.0

    def test_rate_zero_and_one(self):
        silent = scheduled("gray_degradation:0")
        draw(silent, 50, seed=3)
        assert silent.injected_ids == set()
        loud = scheduled("gray_degradation:1")
        draw(loud, 50, seed=3)
        assert loud.injected_ids == set(range(50))


class TestWindows:
    @given(
        lo=st.integers(min_value=0, max_value=30),
        span=st.integers(min_value=1, max_value=30),
        seed=SEEDS,
    )
    @settings(max_examples=25, deadline=None)
    def test_window_honored_exactly(self, lo, span, seed):
        hi = lo + span
        w = scheduled(f"lock_convoy:0.9@{lo}-{hi}")
        draw(w, 70, seed=seed)
        assert all(lo <= rid < hi for rid in w.injected_ids)

    def test_window_transitions_emit_events(self):
        w = scheduled("gc_pause:0.5@10-20")
        draw(w, 30, seed=5)
        events = w.drain_fault_events()
        kinds = [e["kind"] for e in events]
        assert kinds == ["fault_window_start", "fault_window_end"]
        assert events[0]["request_id"] == 10
        assert events[1]["request_id"] == 20
        assert all(e["fault"] == "gc_pause" for e in events)
        # Drained: a second drain is empty.
        assert w.drain_fault_events() == []


class TestTargetsAndBursts:
    def test_kind_target_only_faults_that_kind(self):
        w = scheduled("slowdown:0.9%kind=new_order")
        specs = draw(w, 80, seed=2)
        kinds = {s.request_id: s.kind for s in specs}
        assert w.injected_ids, "target kind never sampled at this seed"
        assert all(kinds[rid] == "new_order" for rid in w.injected_ids)

    def test_tenant_target_needs_tagged_traffic(self):
        w = scheduled("slowdown:1%tenant=3")
        draw(w, 20, seed=2)
        assert w.injected_ids == set()
        w.note_tenant(3)
        rng = np.random.default_rng(9)
        w.sample_request(rng, 100)
        assert w.injected_ids == {100}

    def test_burst_faults_consecutive_requests(self):
        # Rate 1 in a 1-wide window: the hit at lo starts a burst that
        # must carry the next burst-1 eligible requests.
        w = scheduled("cache_thrash:1@5-6*4")
        draw(w, 30, seed=7)
        assert w.injected_ids == {5}
        # Window blocks eligibility beyond id 5, so the burst is pinned
        # to eligible ids only.  Without a window the burst runs free:
        w2 = scheduled("cache_thrash:0.2*5")
        draw(w2, 120, seed=7)
        ids = sorted(w2.injected_ids)
        # Every hit is part of a run of >= min(5, remaining) consecutive
        # ids — check the first full run.
        first = ids[0]
        assert set(range(first, first + 5)) <= w2.injected_ids

    def test_multiple_clauses_stamp_primary_and_full_list(self):
        w = scheduled("lock_stall:1+gc_pause:1")
        spec = draw(w, 1, seed=4)[0]
        assert spec.metadata["injected_fault"] == "lock_stall"
        assert spec.metadata["injected_faults"] == ["lock_stall", "gc_pause"]
        assert w.injected_kinds[0] == "lock_stall"


class TestLegacyByteIdentity:
    """Old ``kind:rate`` specs through the schedule engine reproduce the
    original ``FaultInjectingWorkload`` stream exactly."""

    @given(
        kind=st.sampled_from(sorted(LEGACY_FAULT_KINDS)),
        rate=RATES,
        seed=SEEDS,
    )
    @settings(max_examples=30, deadline=None)
    def test_streams_identical(self, kind, rate, seed):
        legacy = FaultInjectingWorkload(
            make_workload("tpcc"), fault_probability=rate, fault_kind=kind
        )
        new = scheduled(f"{kind}:{rate!r}")
        specs_legacy = draw(legacy, 25, seed=seed)
        specs_new = draw(new, 25, seed=seed)
        assert new.injected_ids == legacy.injected_ids
        assert [fingerprint(s) for s in specs_new] == [
            fingerprint(s) for s in specs_legacy
        ]

    @pytest.mark.parametrize("gen_fastpath", ["0", "1"])
    def test_identical_under_both_generation_paths(
        self, gen_fastpath, monkeypatch
    ):
        monkeypatch.setenv("REPRO_GEN_FASTPATH", gen_fastpath)
        legacy = FaultInjectingWorkload(
            make_workload("rubis"), fault_probability=0.4,
            fault_kind="cache_thrash",
        )
        new = scheduled("cache_thrash:0.4", workload="rubis")
        specs_legacy = draw(legacy, 30, seed=13)
        specs_new = draw(new, 30, seed=13)
        assert new.injected_ids == legacy.injected_ids
        assert [fingerprint(s) for s in specs_new] == [
            fingerprint(s) for s in specs_legacy
        ]

    def test_registry_spec_string_unchanged(self):
        from repro.workloads.registry import make_faulted_workload

        w = make_faulted_workload("tpcc", "lock_stall:0.25")
        assert w.schedule.to_spec() == "lock_stall:0.25"
