"""Tests for the five application workload generators."""

import numpy as np
import pytest

from repro.workloads.registry import (
    SERVER_APPS,
    FixedKindWorkload,
    available_workloads,
    make_workload,
)
from repro.workloads.tpcc import TRANSACTION_MIX, TpccWorkload
from repro.workloads.tpch import QUERY_PLANS, TpchWorkload
from repro.workloads.webserver import FILE_CLASSES, WebServerWorkload
from repro.workloads.webwork import NUM_PROBLEMS, WeBWorKWorkload


def draw(workload, n, seed=0):
    rng = np.random.default_rng(seed)
    return [workload.sample_request(rng, i) for i in range(n)]


class TestRegistry:
    def test_all_server_apps_registered(self):
        names = available_workloads()
        for app in SERVER_APPS:
            assert app in names

    def test_microbenchmarks_registered(self):
        assert "mbench_spin" in available_workloads()
        assert "mbench_data" in available_workloads()

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_workload("nope")

    @pytest.mark.parametrize("app", SERVER_APPS)
    def test_generators_produce_valid_specs(self, app):
        for spec in draw(make_workload(app), 5, seed=3):
            assert spec.app == app
            assert spec.total_instructions > 0
            assert spec.kind in make_workload(app).kinds or app == "webwork"

    @pytest.mark.parametrize("app", SERVER_APPS)
    def test_determinism_same_seed(self, app):
        a = draw(make_workload(app), 3, seed=11)
        b = draw(make_workload(app), 3, seed=11)
        for x, y in zip(a, b):
            assert x.kind == y.kind
            assert x.total_instructions == y.total_instructions


class TestWebServer:
    def test_file_class_mix(self):
        specs = draw(WebServerWorkload(), 600, seed=1)
        counts = {c[0]: 0 for c in FILE_CLASSES}
        for s in specs:
            counts[s.kind] += 1
        assert counts["class1"] > counts["class0"] > counts["class2"] > counts["class3"]

    def test_request_length_few_hundred_thousand(self):
        """Paper: a web request executes a few hundred thousand instructions."""
        specs = [s for s in draw(WebServerWorkload(), 200, seed=2) if s.kind == "class1"]
        lengths = np.array([s.total_instructions for s in specs])
        assert 60_000 < lengths.mean() < 500_000

    def test_writev_header_phase_present(self):
        spec = draw(WebServerWorkload(), 1, seed=3)[0]
        entries = [p.entry_syscall for p in spec.phases()]
        assert "writev" in entries and "stat" in entries and "shutdown" in entries

    def test_header_phase_has_high_cpi(self):
        spec = draw(WebServerWorkload(), 1, seed=4)[0]
        header = next(p for p in spec.phases() if p.name == "write_headers")
        body = next(p for p in spec.phases() if p.name.startswith("send_body"))
        assert header.behavior.base_cpi > 2 * body.behavior.base_cpi

    def test_large_files_chunked_with_poll_lseek(self):
        w = WebServerWorkload()
        rng = np.random.default_rng(0)
        for _ in range(4000):
            spec = w.sample_request(rng, 0)
            if spec.metadata["file_bytes"] > 200_000:
                names = [p.name for p in spec.phases()]
                assert any(n.startswith("poll_wait") for n in names)
                assert any(n.startswith("seek") for n in names)
                break
        else:
            pytest.fail("no large file drawn")

    def test_catalog_file_reuse(self):
        """SPECweb99 serves a fixed dataset: files repeat across requests."""
        specs = draw(WebServerWorkload(), 200, seed=5)
        ids = [s.metadata["file_id"] for s in specs]
        assert len(set(ids)) < len(ids) / 2

    def test_same_file_same_size(self):
        specs = draw(WebServerWorkload(), 300, seed=6)
        by_file = {}
        for s in specs:
            by_file.setdefault(s.metadata["file_id"], set()).add(
                s.metadata["file_bytes"]
            )
        assert all(len(sizes) == 1 for sizes in by_file.values())

    def test_catalog_stable_across_instances(self):
        a = WebServerWorkload()
        b = WebServerWorkload()
        assert a._catalog == b._catalog


class TestTpcc:
    def test_transaction_mix(self):
        """The paper's 45/43/4/4/4 transaction mix."""
        specs = draw(TpccWorkload(), 1500, seed=1)
        counts = {k: 0 for k, _ in TRANSACTION_MIX}
        for s in specs:
            counts[s.kind] += 1
        assert counts["new_order"] / 1500 == pytest.approx(0.45, abs=0.05)
        assert counts["payment"] / 1500 == pytest.approx(0.43, abs=0.05)
        for minor in ("order_status", "delivery", "stock_level"):
            assert counts[minor] / 1500 == pytest.approx(0.04, abs=0.03)

    def test_new_order_length(self):
        """Figure 6 shows a new-order transaction at ~1.4 M instructions."""
        w = TpccWorkload()
        rng = np.random.default_rng(2)
        lengths = [
            w.build_transaction(rng, i, "new_order").total_instructions
            for i in range(30)
        ]
        assert 1_000_000 < np.mean(lengths) < 1_900_000

    def test_distinct_type_cpi_levels(self):
        """Distinct per-type solo CPIs produce Figure 1's multi-cluster shape."""
        w = TpccWorkload()
        rng = np.random.default_rng(3)
        means = {}
        for kind in ("new_order", "order_status", "stock_level"):
            cpis = [
                w.build_transaction(rng, i, kind).solo_cpi(220.0) for i in range(10)
            ]
            means[kind] = np.mean(cpis)
        assert means["stock_level"] > means["new_order"]
        spread = max(means.values()) - min(means.values())
        assert spread > 0.2

    def test_build_transaction_unknown_kind(self):
        with pytest.raises(ValueError):
            TpccWorkload().build_transaction(np.random.default_rng(0), 0, "refund")

    def test_delivery_has_long_syscall_free_stretch(self):
        w = TpccWorkload()
        spec = w.build_transaction(np.random.default_rng(4), 0, "delivery")
        free_run = 0
        longest = 0
        for p in spec.phases():
            if p.syscall_rate_per_ins == 0 and p.entry_syscall is None:
                free_run += p.instructions
                longest = max(longest, free_run)
            else:
                free_run = 0
        assert longest > 2_000_000  # > ~1 ms of execution


class TestTpch:
    def test_seventeen_queries(self):
        assert len(QUERY_PLANS) == 17
        assert set(QUERY_PLANS) == {
            "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q11", "Q12",
            "Q13", "Q14", "Q15", "Q17", "Q19", "Q20", "Q22",
        }

    def test_equal_proportions(self):
        specs = draw(TpchWorkload(), 1700, seed=1)
        counts = {}
        for s in specs:
            counts[s.kind] = counts.get(s.kind, 0) + 1
        for kind, count in counts.items():
            assert count / 1700 == pytest.approx(1 / 17, abs=0.03), kind

    def test_q20_length_near_80M(self):
        """Figure 8 shows Q20 spanning ~80 M instructions."""
        w = TpchWorkload()
        rng = np.random.default_rng(2)
        lengths = [w.build_query(rng, i, "Q20").total_instructions for i in range(10)]
        assert 70e6 < np.mean(lengths) < 90e6

    def test_uniform_behavior_within_query(self):
        """TPCH queries behave uniformly: low solo intra-request variation."""
        w = TpchWorkload()
        spec = w.build_query(np.random.default_rng(3), 0, "Q6")
        series = spec.solo_series(1_000_000, 220.0)
        assert series.std() / series.mean() < 0.5

    def test_scan_phases_have_large_footprint(self):
        w = TpchWorkload()
        spec = w.build_query(np.random.default_rng(4), 0, "Q6")
        scan = next(p for p in spec.phases() if p.name.startswith("scan"))
        assert scan.behavior.cache_footprint >= 0.9


class TestRubis:
    def test_three_plus_tier_stages(self):
        spec = draw(make_workload("rubis"), 1, seed=1)[0]
        tiers = [s.tier for s in spec.stages]
        assert tiers[0].startswith("tomcat")
        assert any("jboss" in t for t in tiers)
        assert "mysql" in tiers

    def test_length_a_few_million(self):
        lengths = [s.total_instructions for s in draw(make_workload("rubis"), 40, seed=2)]
        assert 1e6 < np.mean(lengths) < 8e6

    def test_components_recorded(self):
        spec = draw(make_workload("rubis"), 1, seed=3)[0]
        assert spec.metadata["components"]


class TestWeBWorK:
    def test_length_hundreds_of_millions(self):
        lengths = [
            s.total_instructions for s in draw(WeBWorKWorkload(), 8, seed=1)
        ]
        assert 1.5e8 < np.mean(lengths) < 7e8

    def test_identical_prelude_across_requests(self):
        """Figure 10's failure mode: the first ~20M instructions are the
        same processing semantics for every request."""
        specs = draw(WeBWorKWorkload(), 5, seed=2)
        prelude_names = [
            tuple(p.name for p in s.phases())[:5] for s in specs
        ]
        assert len(set(prelude_names)) == 1
        prelude_ins = [
            sum(p.instructions for p in list(s.phases())[:5]) for s in specs
        ]
        assert min(prelude_ins) > 10_000_000  # beyond the 10M prefix

    def test_problem_seeded_structure(self):
        """Two requests for the same problem share macro structure."""
        w = WeBWorKWorkload()
        a = w.build_problem(np.random.default_rng(1), 0, 954)
        b = w.build_problem(np.random.default_rng(2), 1, 954)
        names_a = [p.name for p in a.phases()]
        names_b = [p.name for p in b.phases()]
        assert names_a == names_b
        # but per-request jitter keeps lengths slightly different
        assert a.total_instructions != b.total_instructions
        assert abs(a.total_instructions - b.total_instructions) < (
            0.2 * a.total_instructions
        )

    def test_different_problems_differ(self):
        w = WeBWorKWorkload()
        a = w.build_problem(np.random.default_rng(1), 0, 10)
        b = w.build_problem(np.random.default_rng(1), 1, 20)
        assert [p.name for p in a.phases()] != [p.name for p in b.phases()]

    def test_problem_id_range(self):
        assert NUM_PROBLEMS == 3000
        specs = draw(WeBWorKWorkload(), 5, seed=3)
        for s in specs:
            assert 0 <= s.metadata["problem_id"] < NUM_PROBLEMS

    def test_tiny_cache_footprint(self):
        """WeBWorK's compute phases barely touch the shared L2 (Figure 1)."""
        spec = draw(WeBWorKWorkload(), 1, seed=4)[0]
        footprints = [
            p.behavior.cache_footprint
            for p in spec.phases()
            if not p.name.startswith("render_gfx")
        ]
        assert max(footprints) <= 0.2


class TestFixedKindWorkload:
    def test_tpch_fixed(self):
        w = FixedKindWorkload("tpch", "Q6")
        specs = draw(w, 3, seed=1)
        assert all(s.kind == "Q6" for s in specs)

    def test_webwork_fixed(self):
        w = FixedKindWorkload("webwork", "problem_954")
        specs = draw(w, 2, seed=1)
        assert all(s.metadata["problem_id"] == 954 for s in specs)

    def test_tpcc_fixed(self):
        w = FixedKindWorkload("tpcc", "delivery")
        specs = draw(w, 3, seed=1)
        assert all(s.kind == "delivery" for s in specs)

    def test_webserver_rejection_sampling(self):
        w = FixedKindWorkload("webserver", "class2")
        specs = draw(w, 3, seed=1)
        assert all(s.kind == "class2" for s in specs)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FixedKindWorkload("tpch", "Q99")


class TestMicrobench:
    def test_spin_zero_footprint(self):
        spec = draw(make_workload("mbench_spin"), 1, seed=1)[0]
        phase = next(spec.phases())
        assert phase.behavior.cache_footprint == 0.0
        assert phase.behavior.l2_refs_per_ins == 0.0

    def test_data_full_footprint(self):
        spec = draw(make_workload("mbench_data"), 1, seed=1)[0]
        phase = next(spec.phases())
        assert phase.behavior.cache_footprint == 1.0
        assert phase.behavior.l2_miss_ratio > 0.5
