"""Tests for static workload characterization."""

import numpy as np
import pytest

from repro.workloads.describe import describe, describe_table
from repro.workloads.registry import make_workload


class TestDescribe:
    def test_tpcc_profile_matches_paper_facts(self):
        profiles = describe(make_workload("tpcc"), n_requests=600, seed=1)
        assert profiles["new_order"].share == pytest.approx(0.45, abs=0.06)
        assert profiles["payment"].share == pytest.approx(0.43, abs=0.06)
        assert profiles["new_order"].mean_instructions == pytest.approx(
            1.4e6, rel=0.25
        )
        assert profiles["new_order"].mean_stages == 1.0

    def test_shares_sum_to_one(self):
        profiles = describe(make_workload("webserver"), n_requests=300, seed=2)
        assert sum(p.share for p in profiles.values()) == pytest.approx(1.0)

    def test_rubis_multi_stage(self):
        profiles = describe(make_workload("rubis"), n_requests=40, seed=3)
        for p in profiles.values():
            assert p.mean_stages == 5.0

    def test_cache_appetite_ordering(self):
        """TPCH wants the cache, WeBWorK does not — the Figure 1 driver."""
        tpch = describe(make_workload("tpch"), n_requests=34, seed=4)
        webwork = describe(make_workload("webwork"), n_requests=10, seed=4)
        tpch_fp = np.mean([p.mean_footprint for p in tpch.values()])
        webwork_fp = np.mean([p.mean_footprint for p in webwork.values()])
        assert tpch_fp > 0.8
        assert webwork_fp < 0.15

    def test_syscall_density_ordering(self):
        """Web server chattiest, WeBWorK quietest (Figure 4 driver)."""
        web = describe(make_workload("webserver"), n_requests=100, seed=5)
        webwork = describe(make_workload("webwork"), n_requests=8, seed=5)
        web_density = np.mean([p.syscalls_per_mega_ins for p in web.values()])
        webwork_density = np.mean(
            [p.syscalls_per_mega_ins for p in webwork.values()]
        )
        assert web_density > 30 * webwork_density

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            describe(make_workload("tpcc"), n_requests=0)

    def test_table_renders(self):
        text = describe_table(make_workload("tpcc"), n_requests=60, seed=6)
        assert "workload profile: tpcc" in text
        assert "new_order" in text
