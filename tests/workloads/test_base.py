"""Tests for the Phase/Stage/RequestSpec abstractions."""

import numpy as np
import pytest

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase, RequestSpec, Stage, single_stage

BEHAVIOR = PhaseBehavior(
    base_cpi=1.0, l2_refs_per_ins=0.01, l2_miss_ratio=0.2, cache_footprint=0.3
)


def make_phase(name="p", ins=1000, entry=None, rate=0.0, pool=()):
    return Phase(
        name=name,
        instructions=ins,
        behavior=BEHAVIOR,
        entry_syscall=entry,
        syscall_rate_per_ins=rate,
        syscall_pool=pool,
    )


def make_spec(stages=None):
    if stages is None:
        stages = single_stage("tier", [make_phase("a", 1000), make_phase("b", 2000)])
    return RequestSpec(request_id=0, app="test", kind="k", stages=stages)


class TestPhase:
    def test_mean_syscall_distance(self):
        p = make_phase(rate=1 / 500, pool=("read",))
        assert p.mean_syscall_distance_ins() == pytest.approx(500)

    def test_no_rate_infinite_distance(self):
        assert make_phase().mean_syscall_distance_ins() == float("inf")

    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError):
            make_phase(ins=0)

    def test_rate_without_pool_rejected(self):
        with pytest.raises(ValueError):
            make_phase(rate=0.1)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            make_phase(rate=-0.1, pool=("x",))


class TestStage:
    def test_instructions_sum(self):
        stage = Stage(tier="t", phases=(make_phase(ins=10), make_phase(ins=20)))
        assert stage.instructions == 30

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            Stage(tier="t", phases=())


class TestRequestSpec:
    def test_total_instructions(self):
        assert make_spec().total_instructions == 3000

    def test_phases_iterates_all_stages(self):
        stages = (
            Stage(tier="a", phases=(make_phase("p1"),)),
            Stage(tier="b", phases=(make_phase("p2"), make_phase("p3"))),
        )
        spec = make_spec(stages)
        assert [p.name for p in spec.phases()] == ["p1", "p2", "p3"]

    def test_no_stages_rejected(self):
        with pytest.raises(ValueError):
            RequestSpec(request_id=0, app="a", kind="k", stages=())

    def test_solo_cpi_weighted(self):
        spec = make_spec()
        expected = BEHAVIOR.solo_cpi(220.0)
        assert spec.solo_cpi(220.0) == pytest.approx(expected)

    def test_syscall_sequence_contains_entries(self):
        stages = single_stage(
            "t", [make_phase("a", entry="open"), make_phase("b", entry="writev")]
        )
        seq = make_spec(stages).syscall_sequence(np.random.default_rng(0))
        assert seq == ["open", "writev"]

    def test_syscall_sequence_tier_boundaries(self):
        stages = (
            Stage(tier="a", phases=(make_phase("p1"),)),
            Stage(tier="b", phases=(make_phase("p2"),)),
        )
        seq = make_spec(stages).syscall_sequence(np.random.default_rng(0))
        # Departure then arrival socket ops at the hand-off.
        assert "sendto" in seq and "recvfrom" in seq

    def test_syscall_sequence_rate_calls_scale(self):
        stages = single_stage(
            "t", [make_phase("a", ins=100_000, rate=1 / 1000, pool=("read", "poll"))]
        )
        seq = make_spec(stages).syscall_sequence(np.random.default_rng(0))
        assert 60 <= len(seq) <= 140  # ~100 expected

    def test_solo_series_constant_for_uniform_request(self):
        spec = make_spec()
        series = spec.solo_series(500, miss_penalty_cycles=220.0)
        assert np.allclose(series, BEHAVIOR.solo_cpi(220.0))

    def test_solo_series_mass_conservation(self):
        """Windowed CPI must integrate back to the total solo cycles."""
        phases = [make_phase("a", 1200), make_phase("b", 777)]
        b2 = PhaseBehavior(3.0, 0.0, 0.0, 0.0)
        phases[1] = Phase(name="b", instructions=777, behavior=b2)
        spec = make_spec(single_stage("t", phases))
        window = 250
        series = spec.solo_series(window, 220.0)
        total_cycles = series.sum() * window
        expected = 1200 * BEHAVIOR.solo_cpi(220.0) + 777 * 3.0
        # The last partial window is dropped by the integer window count.
        covered = (spec.total_instructions // window) * window
        assert total_cycles <= expected
        assert total_cycles >= expected * covered / spec.total_instructions - window * 5

    def test_solo_series_invalid_window(self):
        with pytest.raises(ValueError):
            make_spec().solo_series(0)
