"""Tests for the generation fast path (:mod:`repro.workloads.genfast`).

The contract mirrors the simulator fast path's: the fast generators must
be *draw-for-draw* indistinguishable from the reference ones — identical
spec values (every phase field, every behavior float, exact ints) and an
identical RNG state afterward, so any downstream consumer sees the same
bitstream no matter which generator produced the specs.
"""

import numpy as np
import pytest

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.genfast import (
    FAST_FACTORIES,
    GEN_FASTPATH_ENV,
    BehaviorInterner,
    FastTpccWorkload,
)
from repro.workloads.registry import (
    SERVER_APPS,
    FixedKindWorkload,
    make_faulted_workload,
    make_workload,
)
from repro.workloads.rubis import RubisWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.webserver import WebServerWorkload
from repro.workloads.webwork import WeBWorKWorkload

REFERENCE_FACTORIES = {
    "webserver": WebServerWorkload,
    "tpcc": TpccWorkload,
    "tpch": TpchWorkload,
    "rubis": RubisWorkload,
    "webwork": WeBWorKWorkload,
}


def spec_fingerprint(spec):
    """Every observable field of a spec, floats exact, order preserved."""
    stages = tuple(
        (
            stage.tier,
            stage.instructions,
            tuple(stage.cumulative_instructions),
            tuple(
                (
                    p.name,
                    p.instructions,
                    p.behavior.base_cpi,
                    p.behavior.l2_refs_per_ins,
                    p.behavior.l2_miss_ratio,
                    p.behavior.cache_footprint,
                    p.entry_syscall,
                    p.syscall_rate_per_ins,
                    p.syscall_pool,
                )
                for p in stage.phases
            ),
        )
        for stage in spec.stages
    )
    return (
        spec.request_id,
        spec.app,
        spec.kind,
        spec.total_instructions,
        tuple(sorted(spec.metadata.items())),
        stages,
    )


def draw_with_state(workload, n, seed):
    rng = np.random.default_rng(seed)
    specs = [workload.sample_request(rng, i) for i in range(n)]
    return [spec_fingerprint(s) for s in specs], rng.bit_generator.state


class TestSpecEquality:
    """Fast generators replay the reference draw sequence exactly."""

    @pytest.mark.parametrize("app", SERVER_APPS)
    @pytest.mark.parametrize("seed", (0, 7, 123))
    def test_specs_and_rng_state_match_reference(self, app, seed):
        fast, fast_state = draw_with_state(FAST_FACTORIES[app](), 25, seed)
        ref, ref_state = draw_with_state(REFERENCE_FACTORIES[app](), 25, seed)
        assert fast == ref
        # Same state afterward: the fast path consumed exactly the same
        # draws in the same order, not merely equivalent values.
        assert fast_state == ref_state

    def test_webserver_respects_catalog_seed(self):
        fast, _ = draw_with_state(FAST_FACTORIES["webserver"](catalog_seed=42), 10, 3)
        ref, _ = draw_with_state(WebServerWorkload(catalog_seed=42), 10, 3)
        assert fast == ref


class TestBlockAhead:
    """``prepare_block`` + pops must equal direct synthesis."""

    @pytest.mark.parametrize("app", SERVER_APPS)
    def test_block_matches_direct_synthesis(self, app):
        direct, direct_state = draw_with_state(FAST_FACTORIES[app](), 12, 5)

        blocked_workload = FAST_FACTORIES[app]()
        rng = np.random.default_rng(5)
        blocked_workload.prepare_block(rng, 0, 12)
        blocked = [
            spec_fingerprint(blocked_workload.sample_request(rng, i))
            for i in range(12)
        ]
        assert blocked == direct
        assert rng.bit_generator.state == direct_state

    def test_block_drain_falls_back_to_direct(self):
        """A short block drains, then synthesis continues seamlessly."""
        direct, direct_state = draw_with_state(FastTpccWorkload(), 10, 9)

        workload = FastTpccWorkload()
        rng = np.random.default_rng(9)
        workload.prepare_block(rng, 0, 6)
        specs = [
            spec_fingerprint(workload.sample_request(rng, i)) for i in range(10)
        ]
        assert specs == direct
        assert rng.bit_generator.state == direct_state

    def test_stale_block_cleared_on_id_mismatch(self):
        workload = FastTpccWorkload()
        rng = np.random.default_rng(2)
        workload.prepare_block(rng, 0, 4)
        spec = workload.sample_request(rng, 2)  # out of order: stale block
        assert spec.request_id == 2
        assert not workload._block


class TestBehaviorInterner:
    def test_value_equal_behaviors_share_identity(self):
        interner = BehaviorInterner()
        a = interner.get(1.0, 0.1, 0.2, 0.4)
        b = interner.get(1.0, 0.1, 0.2, 0.4)
        c = interner.get(1.5, 0.1, 0.2, 0.4)
        assert a is b
        assert a is not c

    def test_interned_behavior_equals_reference_dataclass(self):
        interner = BehaviorInterner()
        behavior = interner.get(1.25, 0.05, 0.3, 0.6)
        assert behavior == PhaseBehavior(
            base_cpi=1.25, l2_refs_per_ins=0.05, l2_miss_ratio=0.3,
            cache_footprint=0.6,
        )

    def test_templates_shared_across_instances(self):
        """Compiled templates are cached per key, not per workload."""
        a, b = FastTpccWorkload(), FastTpccWorkload()
        for kind in ("payment", "order_status", "delivery", "stock_level"):
            assert a._fixed[kind] is b._fixed[kind]
        assert a._new_order_head is b._new_order_head


class TestWrapperIntegration:
    """Registry wrappers compose with the fast generators unchanged."""

    @pytest.mark.parametrize(
        "app,kind",
        (("tpcc", "payment"), ("webserver", "class1")),
        ids=("builder-dispatch", "rejection-sampling"),
    )
    def test_fixed_kind_matches_reference(self, app, kind, monkeypatch):
        results = {}
        for env in ("1", "0"):
            monkeypatch.setenv(GEN_FASTPATH_ENV, env)
            results[env] = draw_with_state(FixedKindWorkload(app, kind), 8, 4)
        assert results["1"] == results["0"]

    def test_faulted_workload_matches_reference(self, monkeypatch):
        results = {}
        for env in ("1", "0"):
            monkeypatch.setenv(GEN_FASTPATH_ENV, env)
            results[env] = draw_with_state(
                make_faulted_workload("tpcc", "lock_stall:0.4"), 15, 8
            )
        assert results["1"] == results["0"]
        # The fault rate must actually fire in 15 draws at p=0.4 for the
        # comparison to exercise injected stages.
        fingerprints, _ = results["1"]
        assert any(
            ("injected_fault", "lock_stall") in fp[4] for fp in fingerprints
        )


class TestRegistryRouting:
    @pytest.mark.parametrize("app", SERVER_APPS)
    def test_default_routes_to_fast_factory(self, app, monkeypatch):
        monkeypatch.delenv(GEN_FASTPATH_ENV, raising=False)
        assert type(make_workload(app)) is FAST_FACTORIES[app]

    @pytest.mark.parametrize("app", SERVER_APPS)
    def test_kill_switch_routes_to_reference(self, app, monkeypatch):
        monkeypatch.setenv(GEN_FASTPATH_ENV, "0")
        assert type(make_workload(app)) is REFERENCE_FACTORIES[app]

    def test_microbenchmarks_never_rerouted(self, monkeypatch):
        monkeypatch.delenv(GEN_FASTPATH_ENV, raising=False)
        assert "mbench_spin" not in FAST_FACTORIES
        assert make_workload("mbench_spin").name == "mbench_spin"
