"""Property-based suite for the jitter primitives (hypothesis).

The generation fast path's batched stamping is only sound if the scalar
chain in :func:`repro.workloads.util.jittered` /
:func:`~repro.workloads.util.jittered_int` has the exact properties the
vectorized replay assumes: the half-nominal floor always holds (so
skipping dataclass validation is safe), the ``lo`` floor always holds,
same-seed draws are bit-deterministic, and one ``standard_normal(n)``
block is bit-for-bit the same stream as n scalar ``standard_normal()``
calls.  These are checked here over adversarial inputs — including
jitter fractions far larger than any workload uses — rather than just
the constants the def tables happen to contain.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.workloads.util import jittered, jittered_int  # noqa: E402

finite_values = st.floats(
    min_value=1e-6, max_value=1e12, allow_nan=False, allow_infinity=False
)
# Deliberately adversarial: real def tables stay under ~0.3, but the
# floor must hold even when frac·z swings the factor hugely negative.
fracs = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(value=finite_values, frac=fracs, seed=seeds)
def test_half_nominal_floor(value, frac, seed):
    rng = np.random.default_rng(seed)
    assert jittered(rng, value, frac) >= 0.5 * value


@given(value=finite_values, frac=fracs, seed=seeds,
       lo=st.integers(min_value=0, max_value=10**6))
def test_int_floor(value, frac, seed, lo):
    rng = np.random.default_rng(seed)
    result = jittered_int(rng, value, frac, lo=lo)
    assert isinstance(result, int)
    assert result >= lo


@given(value=finite_values, frac=fracs, seed=seeds)
def test_same_seed_determinism(value, frac, seed):
    a = jittered(np.random.default_rng(seed), value, frac)
    b = jittered(np.random.default_rng(seed), value, frac)
    assert a == b  # bit-exact, no tolerance


@given(seed=seeds, n=st.integers(min_value=1, max_value=64))
def test_batched_normals_equal_scalar_stream(seed, n):
    """One standard_normal(n) block == n scalar draws, bit for bit.

    This is the load-bearing RNG fact behind PhaseBlock.stamp: drawing
    the block advances the bit generator exactly as the reference's
    scalar loop does, with identical doubles at every position.
    """
    block_rng = np.random.default_rng(seed)
    scalar_rng = np.random.default_rng(seed)
    block = block_rng.standard_normal(n)
    scalars = np.array([scalar_rng.standard_normal() for _ in range(n)])
    assert block.tobytes() == scalars.tobytes()
    assert block_rng.bit_generator.state == scalar_rng.bit_generator.state


@settings(max_examples=50)
@given(
    seed=seeds,
    params=st.lists(st.tuples(finite_values, fracs), min_size=1, max_size=32),
)
def test_vectorized_chain_equals_scalar_chain(seed, params):
    """The fast path's three vector ops replay the scalar chain exactly."""
    base = np.array([p[0] for p in params])
    frac = np.array([p[1] for p in params])

    vec_rng = np.random.default_rng(seed)
    z = vec_rng.standard_normal(len(params))
    j = base * (1.0 + frac * z)
    np.maximum(0.5 * base, j, out=j)
    ints = np.maximum(1000.0, np.rint(j)).astype(np.int64)

    scalar_rng = np.random.default_rng(seed)
    scalar_j = np.array([jittered(scalar_rng, b, f) for b, f in params])
    assert j.tobytes() == scalar_j.tobytes()

    # jittered_int consumes its own draw, so replay a third stream.
    int_rng = np.random.default_rng(seed)
    scalar_ints = [jittered_int(int_rng, b, f) for b, f in params]
    assert ints.tolist() == scalar_ints
