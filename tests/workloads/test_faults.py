"""Tests for fault injection and end-to-end anomaly-detection validation."""

import numpy as np
import pytest

from repro.core.anomaly import detect_by_centroid_distance
from repro.core.distances import unequal_length_penalty
from repro.core.dtw import dtw_distance
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.workloads.faults import FAULT_KINDS, FaultInjectingWorkload, score_detection
from repro.workloads.registry import FixedKindWorkload, make_workload


def draw(workload, n, seed=0):
    rng = np.random.default_rng(seed)
    return [workload.sample_request(rng, i) for i in range(n)]


class TestInjection:
    def test_probability_respected(self):
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_probability=0.3)
        specs = draw(w, 400, seed=1)
        rate = len(w.injected_ids) / len(specs)
        assert rate == pytest.approx(0.3, abs=0.07)

    def test_zero_probability_injects_nothing(self):
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_probability=0.0)
        draw(w, 50, seed=1)
        assert w.injected_ids == set()

    def test_lock_stall_adds_instructions(self):
        clean = make_workload("tpcc")
        faulty = FaultInjectingWorkload(clean, fault_probability=1.0)
        spec_clean = draw(clean, 1, seed=7)[0]
        spec_faulty = draw(faulty, 1, seed=7)[0]
        assert spec_faulty.total_instructions > spec_clean.total_instructions
        assert any(p.name == "fault_lock_stall" for p in spec_faulty.phases())
        assert spec_faulty.metadata["injected_fault"] == "lock_stall"

    def test_cache_thrash_span_properties(self):
        w = FaultInjectingWorkload(
            make_workload("tpcc"), fault_probability=1.0, fault_kind="cache_thrash"
        )
        spec = draw(w, 1, seed=7)[0]
        span = next(p for p in spec.phases() if p.name == "fault_cache_thrash")
        assert span.behavior.l2_miss_ratio > 0.7
        assert span.behavior.cache_footprint == 1.0

    def test_slowdown_preserves_structure(self):
        clean = make_workload("rubis")
        faulty = FaultInjectingWorkload(
            clean, fault_probability=1.0, fault_kind="slowdown", slowdown_factor=2.0
        )
        spec_clean = draw(clean, 1, seed=3)[0]
        spec_faulty = draw(faulty, 1, seed=3)[0]
        assert spec_faulty.total_instructions == spec_clean.total_instructions
        assert spec_faulty.solo_cpi(220.0) > 1.3 * spec_clean.solo_cpi(220.0)
        # Tier structure intact (propagation still works).
        assert [s.tier for s in spec_faulty.stages] == [
            s.tier for s in spec_clean.stages
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjectingWorkload(make_workload("tpcc"), fault_probability=1.5)
        with pytest.raises(ValueError):
            FaultInjectingWorkload(make_workload("tpcc"), fault_kind="gremlins")
        with pytest.raises(ValueError):
            FaultInjectingWorkload(
                make_workload("tpcc"), fault_span_fraction=0.0
            )

    def test_name_reflects_fault(self):
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_kind="slowdown")
        assert w.name == "tpcc+slowdown"


class TestEdgeCases:
    def test_rate_one_injects_everything(self):
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_probability=1.0)
        specs = draw(w, 30, seed=2)
        assert w.injected_ids == set(range(30))
        assert all(s.metadata["injected_fault"] == "lock_stall" for s in specs)

    def test_span_preserves_instruction_accounting(self):
        """faulty_total == clean_total + span instructions, exactly."""
        clean = make_workload("tpcc")
        for kind in ("lock_stall", "cache_thrash"):
            faulty = FaultInjectingWorkload(
                make_workload("tpcc"), fault_probability=1.0, fault_kind=kind
            )
            for seed in range(5):
                spec_clean = draw(clean, 1, seed=seed)[0]
                spec_faulty = draw(faulty, 1, seed=seed)[0]
                span = next(
                    p for p in spec_faulty.phases() if p.name == f"fault_{kind}"
                )
                assert (
                    spec_faulty.total_instructions
                    == spec_clean.total_instructions + span.instructions
                )

    def test_span_inserted_exactly_once(self):
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_probability=1.0)
        for seed in range(8):
            spec = draw(w, 1, seed=seed)[0]
            spans = [p for p in spec.phases() if p.name == "fault_lock_stall"]
            assert len(spans) == 1

    def test_position_at_phase_boundary_inserts_between_phases(self):
        """A fault position landing exactly on a phase boundary must insert
        the span right after that phase, keeping every original phase."""
        clean = make_workload("tpcc")
        spec = draw(clean, 1, seed=4)[0]
        phases = list(spec.phases())
        boundary = float(sum(p.instructions for p in phases[: len(phases) // 2]))

        class _PinnedFault(FaultInjectingWorkload):
            def _fault_position(self, spec, rng):
                return boundary

        w = _PinnedFault(make_workload("tpcc"), fault_probability=1.0)
        spec_faulty = draw(w, 1, seed=4)[0]
        names_clean = [p.name for p in phases]
        names_faulty = [p.name for p in spec_faulty.phases()]
        names_faulty.remove("fault_lock_stall")
        assert names_faulty == names_clean
        # The span sits immediately after the phase that crossed `boundary`.
        faulty_phases = list(spec_faulty.phases())
        span_index = next(
            i for i, p in enumerate(faulty_phases) if p.name == "fault_lock_stall"
        )
        before = sum(p.instructions for p in faulty_phases[:span_index])
        assert before == boundary

    def test_position_at_request_end_still_inserts(self):
        """A position at the very end (the >= comparison's far edge) must
        not drop the span."""

        class _EndFault(FaultInjectingWorkload):
            def _fault_position(self, spec, rng):
                return float(spec.total_instructions)

        w = _EndFault(make_workload("tpcc"), fault_probability=1.0)
        spec = draw(w, 1, seed=5)[0]
        assert any(p.name == "fault_lock_stall" for p in spec.phases())

    def test_stage_structure_preserved_with_spans(self):
        clean = make_workload("tpcc")
        w = FaultInjectingWorkload(make_workload("tpcc"), fault_probability=1.0)
        spec_clean = draw(clean, 1, seed=6)[0]
        spec_faulty = draw(w, 1, seed=6)[0]
        assert [s.tier for s in spec_faulty.stages] == [
            s.tier for s in spec_clean.stages
        ]

    def test_proxies_workload_surface(self):
        inner = make_workload("tpcc")
        w = FaultInjectingWorkload(inner, fault_probability=0.5)
        assert w.sampling_period_us == inner.sampling_period_us
        assert w.window_instructions == inner.window_instructions


class TestRegistryWiring:
    def test_parse_fault_spec(self):
        from repro.workloads.registry import parse_fault_spec

        assert parse_fault_spec("lock_stall:0.2") == ("lock_stall", 0.2)
        assert parse_fault_spec("slowdown:1") == ("slowdown", 1.0)
        for bad in ("lock_stall", "gremlins:0.2", "lock_stall:x",
                    "lock_stall:1.5", "lock_stall:-0.1"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)

    def test_make_faulted_workload(self):
        from repro.faults.schedule import ScheduledFaultWorkload
        from repro.workloads.registry import make_faulted_workload

        w = make_faulted_workload("tpcc", "cache_thrash:0.4")
        assert isinstance(w, ScheduledFaultWorkload)
        assert w.schedule.is_legacy
        (clause,) = w.schedule.clauses
        assert clause.kind == "cache_thrash"
        assert clause.rate == 0.4
        assert w.name == "tpcc+cache_thrash"
        with pytest.raises(ValueError):
            make_faulted_workload("nosuchapp", "lock_stall:0.2")


class TestScore:
    def test_perfect_detection(self):
        s = score_detection({1, 2}, {1, 2}, population=10)
        assert s["recall"] == 1.0 and s["precision"] == 1.0

    def test_partial(self):
        s = score_detection({1, 3}, {1, 2}, population=10)
        assert s["recall"] == 0.5
        assert s["precision"] == 0.5

    def test_empty_edges(self):
        assert score_detection(set(), set(), 5)["recall"] == 1.0
        assert score_detection(set(), {1}, 5)["recall"] == 0.0
        assert score_detection(set(), {1}, 5)["precision"] == 1.0


class TestEndToEndDetection:
    """The headline validation: the paper's centroid-distance detector must
    find the injected anomalies among same-semantics requests."""

    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    def test_detector_finds_injected_faults(self, fault_kind):
        inner = FixedKindWorkload("tpcc", "new_order")
        workload = FaultInjectingWorkload(
            inner,
            fault_probability=0.15,
            fault_kind=fault_kind,
            fault_span_fraction=0.15,
            slowdown_factor=1.8,
        )
        config = SimConfig(
            sampling=SamplingPolicy.interrupt(100.0),
            num_requests=40,
            concurrency=8,
            seed=11,
        )
        result = ServerSimulator(workload, config).run()
        traces = result.traces
        series = [t.series("cpi", 50_000).values for t in traces]
        rng = np.random.default_rng(11)
        penalty = unequal_length_penalty(np.concatenate(series), rng)

        n_injected = len(workload.injected_ids)
        assert n_injected >= 2, "seed produced too few faults for the test"
        cases = detect_by_centroid_distance(
            {"new_order": range(len(traces))},
            series,
            distance=lambda a, b: dtw_distance(a, b, asynchrony_penalty=penalty),
            top_per_group=2 * n_injected,
        )
        ranked = [traces[c.anomaly_index].spec.request_id for c in cases]
        at_n = score_detection(
            ranked[:n_injected], workload.injected_ids, len(traces)
        )
        at_2n = score_detection(ranked, workload.injected_ids, len(traces))
        # Ranked-retrieval view: injected faults dominate the suspect list
        # far beyond the 15% base rate.
        assert at_n["recall"] >= 0.5, (fault_kind, at_n)
        assert at_2n["recall"] >= 0.65, (fault_kind, at_2n)
