"""Tests for workload construction helpers."""

import numpy as np
import pytest

from repro.workloads.util import jittered, jittered_int, phase


class TestJittered:
    def test_zero_frac_identity(self, rng):
        assert jittered(rng, 5.0, 0.0) == 5.0

    def test_floor_at_half_nominal(self):
        """Even extreme draws never produce non-positive rates."""
        rng = np.random.default_rng(0)
        draws = [jittered(rng, 1.0, 3.0) for _ in range(2000)]
        assert min(draws) >= 0.5

    def test_scale_free(self, rng):
        """The floor scales with the value (no absolute cutoff that would
        clobber small rates like refs/ins)."""
        tiny = [jittered(np.random.default_rng(k), 0.001, 0.1) for k in range(200)]
        assert min(tiny) >= 0.0005
        assert max(tiny) < 0.0015

    def test_jittered_int_minimum(self, rng):
        assert jittered_int(rng, 10, 0.0) == 1000  # default floor
        assert jittered_int(rng, 10, 0.0, lo=5) == 10

    def test_mean_preserved(self):
        rng = np.random.default_rng(1)
        draws = [jittered(rng, 10.0, 0.1) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(10.0, rel=0.02)


class TestPhaseHelper:
    def test_builds_phase(self):
        p = phase("x", 1000, cpi=1.5, refs=0.01, miss=0.3, footprint=0.5)
        assert p.name == "x"
        assert p.instructions == 1000
        assert p.behavior.base_cpi == 1.5
        assert p.entry_syscall is None
        assert p.syscall_rate_per_ins == 0.0

    def test_entry_and_rate(self):
        p = phase(
            "y", 500, cpi=1.0, refs=0.0, miss=0.0, footprint=0.0,
            entry="read", rate=0.001, pool=("read",),
        )
        assert p.entry_syscall == "read"
        assert p.mean_syscall_distance_ins() == 1000.0

    def test_float_instructions_coerced(self):
        p = phase("z", 1000.7, cpi=1.0, refs=0.0, miss=0.0, footprint=0.0)
        assert p.instructions == 1000
