"""Regression tests for the repro-experiments runner CLI.

Covers the id-normalization bugs ('all' mixed with explicit ids rejected,
duplicated ids silently run twice), --scale validation, and the --jobs
experiment-level parallelism.
"""

import pytest

from repro.experiments.base import EXPERIMENTS
from repro.experiments.runner import (
    main,
    normalize_experiment_ids,
    run_experiments,
)


class TestNormalizeIds:
    def test_all_expands_in_place(self):
        assert normalize_experiment_ids(["all"]) == list(EXPERIMENTS)

    def test_all_mixed_with_explicit_ids(self):
        # 'all' already contains fig1; the mix must not be rejected and
        # fig1 must not run twice.
        assert normalize_experiment_ids(["all", "fig1"]) == list(EXPERIMENTS)

    def test_explicit_id_before_all_keeps_first_position(self):
        ids = normalize_experiment_ids(["fig6", "all"])
        assert ids[0] == "fig6"
        assert sorted(ids) == sorted(EXPERIMENTS)
        assert len(ids) == len(EXPERIMENTS)

    def test_duplicates_run_once_order_preserved(self):
        assert normalize_experiment_ids(["fig3", "fig1", "fig3", "fig1"]) == [
            "fig3",
            "fig1",
        ]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment ids"):
            normalize_experiment_ids(["fig1", "nope"])


class TestMainArguments:
    def test_mixed_all_runs_each_once(self, capsys, monkeypatch):
        # Stub the registry down to one cheap experiment so main() is fast.
        ran = []

        class FakeModule:
            @staticmethod
            def run(scale):
                ran.append(scale)
                from repro.experiments.base import ExperimentResult

                return ExperimentResult(exp_id="fig6", title="t", notes=["n"])

        monkeypatch.setattr(
            "repro.experiments.runner.get_experiment", lambda exp_id: FakeModule
        )
        assert main(["fig6", "fig6", "--scale", "0.1"]) == 0
        assert len(ran) == 1
        assert capsys.readouterr().out.count("[fig6 finished") == 1

    def test_unknown_id_exit_code(self, capsys):
        assert main(["all", "nope"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    @pytest.mark.parametrize("scale", ["0", "-1", "-0.5"])
    def test_rejects_non_positive_scale(self, scale, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--scale", scale])
        assert excinfo.value.code == 2
        assert "must be > 0" in capsys.readouterr().err

    def test_rejects_non_positive_jobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err


class TestOutFile:
    """--out must replace the file atomically, never append to it."""

    @pytest.fixture()
    def stub_experiment(self, monkeypatch):
        def install(note):
            class FakeModule:
                @staticmethod
                def run(scale):
                    from repro.experiments.base import ExperimentResult

                    return ExperimentResult(
                        exp_id="fig6", title="stub", notes=[note]
                    )

            monkeypatch.setattr(
                "repro.experiments.runner.get_experiment",
                lambda exp_id: FakeModule,
            )

        return install

    def test_out_replaces_instead_of_appending(
        self, tmp_path, stub_experiment, capsys
    ):
        # The original implementation opened --out in append mode, so a
        # rerun stacked a second copy of every section onto the first.
        path = tmp_path / "run.md"
        stub_experiment("first-marker")
        assert main(["fig6", "--out", str(path)]) == 0
        first = path.read_text()
        assert "first-marker" in first

        stub_experiment("second-marker")
        assert main(["fig6", "--out", str(path)]) == 0
        second = path.read_text()
        assert "second-marker" in second
        assert "first-marker" not in second
        assert second.count("stub") == 1

    def test_out_leaves_no_temp_droppings(
        self, tmp_path, stub_experiment, capsys
    ):
        path = tmp_path / "nested" / "run.md"
        stub_experiment("note")
        assert main(["fig6", "--out", str(path)]) == 0
        assert path.exists()
        assert [p.name for p in path.parent.iterdir()] == ["run.md"]

    def test_out_ends_with_single_newline(self, tmp_path, stub_experiment, capsys):
        path = tmp_path / "run.md"
        stub_experiment("note")
        assert main(["fig6", "--out", str(path)]) == 0
        text = path.read_text()
        assert text.endswith("\n")
        assert not text.endswith("\n\n")


class TestProfileAndMetrics:
    def test_profile_attaches_stage_seconds(self):
        results = list(run_experiments(["table1"], scale=0.05, profile=True))
        _, result, _ = results[0]
        assert "simulate" in result.stage_seconds
        entry = result.stage_seconds["simulate"]
        assert entry["calls"] >= 1
        assert entry["seconds"] > 0.0

    def test_profile_does_not_change_rendered_output(self):
        plain = next(iter(run_experiments(["table1"], scale=0.05)))[1].render()
        profiled = next(
            iter(run_experiments(["table1"], scale=0.05, profile=True))
        )[1].render()
        assert profiled == plain

    def test_profile_flag_prints_stage_table(self, capsys):
        assert main(["table1", "--scale", "0.05", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "stage profile" in out
        assert "simulate" in out

    def test_metrics_out_writes_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main(
            ["table1", "--scale", "0.05", "--metrics-out", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert "table1" in document
        assert document["table1"]["seconds"] > 0
        assert "simulate" in document["table1"]["stages"]

    def test_parallel_profile_timings_are_per_experiment(self):
        # Both experiments drive the simulator, so the snapshots must be
        # captured inside each fork worker, not in the parent.
        results = {
            exp_id: result.stage_seconds
            for exp_id, result, _ in run_experiments(
                ["table1", "sec32"], scale=0.05, jobs=2, profile=True
            )
        }
        assert all("simulate" in stages for stages in results.values())


class TestParallelRunner:
    def test_parallel_results_match_serial(self):
        ids = ["fig6", "fig4"]
        serial = [
            (exp_id, result.render())
            for exp_id, result, _ in run_experiments(ids, scale=0.1)
        ]
        parallel = [
            (exp_id, result.render())
            for exp_id, result, _ in run_experiments(ids, scale=0.1, jobs=2)
        ]
        assert parallel == serial

    def test_parallel_preserves_requested_order(self):
        ids = ["fig4", "fig6"]
        seen = [exp_id for exp_id, _, _ in run_experiments(ids, scale=0.1, jobs=2)]
        assert seen == ids
