"""Smoke and claim tests for the table/figure reproductions.

Each experiment runs at a small scale (statistical claims are validated at
full scale by the benchmark harness; here we verify structure plus the
cheap qualitative claims).
"""

import numpy as np
import pytest

from repro.experiments.base import EXPERIMENTS, ExperimentResult, get_experiment

SCALE = 0.15


@pytest.fixture(scope="module")
def results():
    """Run every experiment once at smoke scale."""
    out = {}
    for exp_id in EXPERIMENTS:
        out[exp_id] = get_experiment(exp_id).run(scale=SCALE)
    return out


class TestStructure:
    def test_all_experiments_registered(self):
        expected = {
            "fig1", "fig2", "table1", "fig3", "fig4", "fig5", "table2",
            "sec32", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "stream", "attribution", "sweep", "loadsweep",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError):
            get_experiment("fig99")

    def test_every_result_renders(self, results):
        for exp_id, result in results.items():
            assert isinstance(result, ExperimentResult)
            text = result.render()
            assert exp_id in text
            assert result.rows or result.panels, exp_id
            assert result.notes, exp_id


class TestTable1Claims:
    def test_recovers_injected_costs(self, results):
        rows = {(r["context"], r["workload"]): r for r in results["table1"].rows}
        spin_ik = rows[("in_kernel", "mbench_spin")]
        assert spin_ik["cycles"] == pytest.approx(1270, rel=0.02)
        assert spin_ik["instructions"] == pytest.approx(649, rel=0.02)
        spin_int = rows[("interrupt", "mbench_spin")]
        assert spin_int["cycles"] == pytest.approx(2276, rel=0.02)
        data_ik = rows[("in_kernel", "mbench_data")]
        assert data_ik["l2_refs"] == pytest.approx(13, rel=0.05)

    def test_interrupt_costlier_than_in_kernel(self, results):
        rows = {(r["context"], r["workload"]): r for r in results["table1"].rows}
        assert (
            rows[("interrupt", "mbench_spin")]["cycles"]
            > rows[("in_kernel", "mbench_spin")]["cycles"] + 900
        )


class TestFig1Claims:
    def test_tpch_obfuscated_webwork_not(self, results):
        rows = {r["app"]: r for r in results["fig1"].rows}
        assert rows["tpch"]["p90_ratio"] > 1.5
        assert rows["webwork"]["p90_ratio"] < 1.15

    def test_multicore_spreads_distributions(self, results):
        rows = {r["app"]: r for r in results["fig1"].rows}
        spread_ratios = [
            rows[a]["std_4core"] / max(rows[a]["std_1core"], 1e-9)
            for a in ("tpcc", "tpch", "rubis")
        ]
        assert np.median(spread_ratios) > 1.2


class TestFig3Claims:
    def test_intra_dominates_except_tpch(self, results):
        rows = {r["app"]: r for r in results["fig3"].rows}
        for app in ("webserver", "tpcc", "rubis", "webwork"):
            assert rows[app]["cpi:with_intra"] > 1.5 * rows[app]["cpi:inter"], app
        # At smoke scale the inter-request CoV of a dozen TPCH requests is
        # too noisy for a stable gain *ratio*; assert the robust form of
        # the claim — TPCH has the least intra-request fluctuation — and
        # leave the strict gain ordering to the full-scale benchmark.
        intra_values = {a: rows[a]["cpi:with_intra"] for a in rows}
        assert min(intra_values, key=intra_values.get) == "tpch"


class TestFig5Claims:
    def test_syscall_sampling_saves_overhead(self, results):
        for row in results["fig5"].rows:
            assert row["normalized_overhead"] < 1.0, row["app"]
        # The theoretical floor is the in-kernel/interrupt cost ratio
        # (up to the sample-count matching tolerance).
        for row in results["fig5"].rows:
            assert row["normalized_overhead"] > 1270 / 2276 - 0.08


class TestTable2Claims:
    def test_writev_is_strongest_increase(self, results):
        rows = results["table2"].rows
        assert rows[0]["syscall"] == "writev"
        assert rows[0]["direction"] == "increase"

    def test_majority_directions_agree(self, results):
        rows = [r for r in results["table2"].rows if r["agrees"]]
        agreeing = [r for r in rows if r["agrees"] == "yes"]
        assert len(agreeing) >= len(rows) * 0.6


class TestFig6Claims:
    def test_dtw_absorbs_drift_l1_does_not(self, results):
        rows = {r["pair"]: r for r in results["fig6"].rows}
        drift = rows["base vs drifted"]
        assert drift["dtw"] < drift["l1"]
        control = rows["base vs control(payment)"]
        assert control["dtw+penalty"] > 3 * drift["dtw+penalty"]


class TestFig11Claims:
    def test_vaewma_competitive(self, results):
        rows = results["fig11"].rows
        by_app = {}
        for row in rows:
            by_app.setdefault(row["app"], {})[row["predictor"]] = row["rmse"]
        for app, errors in by_app.items():
            best_va = min(
                v for k, v in errors.items() if k.startswith("vaEWMA")
            )
            assert best_va <= errors["request_average"] * 1.02, app
            assert best_va <= errors["last_value"] * 1.02, app


class TestFig12Claims:
    def test_contention_easing_reduces_quad_high(self, results):
        rows = [
            r for r in results["fig12"].rows if r["cores_high"] == "4 cores"
        ]
        # At smoke scale the reduction is noisy; require improvement on
        # average across the two applications.
        mean_reduction = np.mean([r["reduction_pct"] for r in rows])
        assert mean_reduction > 0


class TestRunner:
    def test_cli_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table2" in out

    def test_cli_unknown_id(self, capsys):
        from repro.experiments.runner import main

        assert main(["nope"]) == 2

    def test_cli_runs_experiment(self, capsys, tmp_path):
        from repro.experiments.runner import main

        out_file = tmp_path / "out.md"
        assert main(["fig6", "--scale", "0.1", "--out", str(out_file)]) == 0
        assert "fig6" in out_file.read_text()
