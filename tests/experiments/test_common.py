"""Tests for experiment plumbing (common helpers and specific internals)."""

import numpy as np
import pytest

from repro.experiments.common import (
    DEFAULT_REQUESTS,
    SAMPLING_PERIOD_US,
    all_apps,
    scaled,
    simulate,
    standard_run,
)
from repro.kernel.sampling import SamplingMode


class TestScaled:
    def test_identity_at_one(self):
        assert scaled(100, 1.0) == 100

    def test_rounds_up(self):
        assert scaled(10, 0.35) == 4

    def test_minimum_enforced(self):
        assert scaled(10, 0.01) == 4
        assert scaled(10, 0.01, minimum=7) == 7

    def test_scale_above_one(self):
        assert scaled(100, 2.0) == 200


class TestSimulate:
    def test_default_sampling_follows_paper_frequency(self):
        run = simulate("webserver", num_requests=4, seed=1)
        assert run.config.sampling.mode is SamplingMode.INTERRUPT
        assert run.config.sampling.interrupt_period_us == 10.0

    def test_serial_configuration(self):
        run = simulate("tpcc", num_requests=3, seed=1, cores=1)
        assert run.config.machine.num_cores == 1
        assert run.config.concurrency == 1

    def test_invalid_cores_rejected(self):
        with pytest.raises(ValueError):
            simulate("tpcc", num_requests=3, seed=1, cores=2)

    def test_config_overrides_forwarded(self):
        run = simulate("tpcc", num_requests=3, seed=1, compensate=False)
        trace = run.traces[0]
        assert np.allclose(trace.instructions, trace.raw_instructions)

    def test_all_apps_have_defaults(self):
        for app in all_apps():
            assert app in DEFAULT_REQUESTS
            assert app in SAMPLING_PERIOD_US

    def test_standard_run_scales(self):
        run = standard_run("webwork", scale=0.1, seed=1)
        assert len(run.traces) == scaled(DEFAULT_REQUESTS["webwork"], 0.1)


class TestFig5Tuning:
    def test_matched_run_converges(self):
        from repro.experiments.fig5_sampling_overhead import matched_syscall_run

        target = 800
        run, t_min = matched_syscall_run(
            "webserver", num_requests=30, seed=2, period_us=10.0,
            target_samples=target,
        )
        produced = (
            run.sampler_stats.in_kernel_samples
            + run.sampler_stats.interrupt_samples
        )
        assert produced == pytest.approx(target, rel=0.25)
        assert t_min > 0


class TestFig6Construction:
    def test_drift_pair_structure(self):
        from repro.experiments.fig6_drift_example import build_drift_pair

        base, drifted, control = build_drift_pair(seed=3)
        assert drifted.total_instructions > base.total_instructions
        names = [p.name for p in drifted.phases()]
        assert "lock_wait_stall" in names
        # The stall lands near 0.8M instructions.
        consumed = 0
        for p in drifted.phases():
            if p.name == "lock_wait_stall":
                break
            consumed += p.instructions
        assert 700_000 < consumed < 1_300_000
        assert control.kind != base.kind


class TestSchedRuns:
    def test_threshold_is_a_sane_mpi(self):
        from repro.experiments.sched_runs import high_usage_threshold

        threshold = high_usage_threshold("tpch", scale=0.1, seed=5)
        assert 0.001 < threshold < 0.05

    def test_runs_cached(self):
        from repro.experiments.sched_runs import scheduling_runs

        a = scheduling_runs("webwork", 0.1, 6)
        b = scheduling_runs("webwork", 0.1, 6)
        assert a is b  # lru_cache

    def test_run_counts(self):
        from repro.experiments.sched_runs import N_RUNS, scheduling_runs

        runs = scheduling_runs("webwork", 0.1, 7)
        assert len(runs["original"]) == N_RUNS
        assert len(runs["contention_easing"]) == N_RUNS
