"""Tests for the repro-online CLI (live, replay, and restore modes)."""

import json

import pytest

from repro.online.cli import main


class TestLiveMode:
    def test_faulted_run_produces_scored_report(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        assert main(
            ["tpcc", "--requests", "12", "--seed", "3", "--train", "8",
             "--faults", "lock_stall:0.3", "--report", str(report_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "online streaming report" in out
        document = json.loads(report_path.read_text())
        assert document["format"] == "repro-online-report"
        assert document["summary"]["population"] == 12
        assert len(document["requests"]) == 12
        assert 0.0 <= document["summary"]["precision"] <= 1.0
        assert 0.0 <= document["summary"]["recall"] <= 1.0

    def test_train_zero_disables_identification(self, capsys):
        assert main(
            ["tpcc", "--requests", "6", "--seed", "3", "--train", "0"]
        ) == 0
        assert "committed=0/6" in capsys.readouterr().out

    def test_metrics_out(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(
            ["tpcc", "--requests", "6", "--train", "0",
             "--metrics-out", str(path)]
        ) == 0
        document = json.loads(path.read_text())
        assert document["counters"]["online_requests_completed"] == 6

    def test_unknown_workload(self, capsys):
        assert main(["nosuchapp", "--train", "0"]) == 2
        assert "unknown workload" in capsys.readouterr().err


class TestReplayAndRestore:
    def test_replay_reproduces_live_report(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        live_report = tmp_path / "live.json"
        replay_report = tmp_path / "replay.json"
        ckpt = tmp_path / "ckpt.json"
        argv_live = [
            "tpcc", "--requests", "10", "--seed", "6", "--train", "8",
            "--faults", "cache_thrash:0.3",
            "--events-out", str(events), "--report", str(live_report),
            "--checkpoint", str(ckpt),
        ]
        assert main(argv_live) == 0
        capsys.readouterr()
        # Replay from the recorded stream, resuming from the checkpoint:
        # the cursor skips everything and the report must match exactly.
        assert main(
            ["tpcc", "--events", str(events), "--restore", str(ckpt),
             "--report", str(replay_report)]
        ) == 0
        assert replay_report.read_bytes() == live_report.read_bytes()

    def test_restore_requires_events(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--restore", "ckpt.json"])
        assert excinfo.value.code == 2
        assert "--restore requires --events" in capsys.readouterr().err


class TestValidation:
    @pytest.mark.parametrize(
        "spec", ["lock_stall", "gremlins:0.1", "lock_stall:nan?", "slowdown:2"]
    )
    def test_malformed_fault_spec(self, spec, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["tpcc", "--faults", spec])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_quantile_domain(self, capsys):
        with pytest.raises(SystemExit):
            main(["tpcc", "--quantile", "1.0"])

    def test_events_out_conflicts_with_events(self, capsys):
        with pytest.raises(SystemExit):
            main(["tpcc", "--events", "a.jsonl", "--events-out", "b.jsonl"])
