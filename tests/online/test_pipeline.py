"""End-to-end streaming pipeline behavior on a live faulted run."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_COLLECTOR
from repro.online.pipeline import OnlineConfig, OnlinePipeline
from repro.online.report import build_report


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineConfig(window_instructions=0)
        with pytest.raises(ValueError):
            OnlineConfig(commit_streak=0)
        with pytest.raises(ValueError):
            OnlineConfig(anomaly_quantile=1.0)
        with pytest.raises(ValueError):
            OnlineConfig(anomaly_margin=0.0)

    def test_null_collector_rejects_subscribers(self):
        pipeline = OnlinePipeline()
        with pytest.raises(ValueError, match="disabled collector"):
            NULL_COLLECTOR.subscribe(pipeline.process_event)


class TestLiveRun:
    def test_all_requests_complete(self, streamed_run):
        _, _, pipeline, result = streamed_run
        assert len(pipeline.records) == len(result.traces)
        assert not pipeline.open  # everything closed out

    def test_ground_truth_captured_from_events(self, streamed_run):
        workload, _, pipeline, _ = streamed_run
        flagged_truth = {
            r["request_id"]
            for r in pipeline.records
            if r["injected_fault"] is not None
        }
        assert flagged_truth == workload.injected_ids
        kinds = {r["injected_fault"] for r in pipeline.records} - {None}
        assert kinds == {"lock_stall"}

    def test_bounded_memory_pattern_cap(self, streamed_run):
        _, _, pipeline, _ = streamed_run
        cap = pipeline.config.max_windows
        assert all(len(r.pattern) <= cap for r in pipeline.open.values())

    def test_windows_match_trace_lengths(self, streamed_run):
        """The streaming window count equals the offline per-trace count."""
        _, _, pipeline, result = streamed_run
        window = pipeline.config.window_instructions
        offline = {
            t.spec.request_id: t.series("cpi", window).values.size
            for t in result.traces
        }
        for record in pipeline.records:
            assert record["windows"] == offline[record["request_id"]]

    def test_identification_commits_early_and_correctly(self, streamed_run):
        _, _, pipeline, _ = streamed_run
        committed = [
            r for r in pipeline.records if r["committed_label"] is not None
        ]
        assert committed, "no request ever committed an identification"
        correct = [r for r in committed if r["label_correct"]]
        assert len(correct) / len(committed) >= 0.6
        for record in committed:
            assert record["commit_instructions"] <= record[
                "instructions_observed"
            ]

    def test_replay_equals_live(self, streamed_run, trained_identifier):
        _, events, live, _ = streamed_run
        replayed = OnlinePipeline(identifier=trained_identifier)
        replayed.process_events(events)
        assert build_report(replayed).to_json() == build_report(live).to_json()

    def test_events_are_idempotent_by_seq(self, streamed_run, trained_identifier):
        _, events, live, _ = streamed_run
        twice = OnlinePipeline(identifier=trained_identifier)
        twice.process_events(events)
        twice.process_events(events)  # duplicates skipped by cursor
        assert build_report(twice).to_json() == build_report(live).to_json()


class TestDetection:
    def test_report_scores_against_ground_truth(self, streamed_run):
        workload, _, pipeline, _ = streamed_run
        report = build_report(pipeline)
        s = report.summary
        assert s["population"] == len(pipeline.records)
        assert s["injected"] == len(workload.injected_ids)
        assert 0.0 <= s["precision"] <= 1.0
        assert 0.0 <= s["recall"] <= 1.0
        if s["median_time_to_detect_instructions"] is not None:
            assert s["median_time_to_detect_instructions"] > 0
        assert s["periods"] == pipeline.periods_seen
        assert report.to_json() == build_report(pipeline).to_json()

    def test_render_mentions_key_numbers(self, streamed_run):
        _, _, pipeline, _ = streamed_run
        text = build_report(pipeline).render()
        assert "precision=" in text and "recall=" in text
        assert "median_ttd_ins=" in text


class TestMetricsRegistry:
    def test_counters_and_histograms_populated(self, streamed_run, trained_identifier):
        _, events, _, _ = streamed_run
        registry = MetricsRegistry()
        pipeline = OnlinePipeline(
            identifier=trained_identifier, registry=registry
        )
        pipeline.process_events(events)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["online_periods"] == pipeline.periods_seen
        assert counters["online_windows"] == pipeline.windows_seen
        assert counters["online_requests_completed"] == len(pipeline.records)
        assert "online_prediction_abs_error" in snapshot["histograms"]
        assert "online_anomaly_score" in snapshot["histograms"]
        assert snapshot["histograms"]["online_anomaly_score"]["count"] > 0
