"""Incremental windower: unit behavior and parity with offline resampling."""

import numpy as np
import pytest

from repro.online.windows import COUNTER_FIELDS, IncrementalWindower, window_metric


def period(ins, cyc=0.0, refs=0.0, misses=0.0):
    return {
        "instructions": ins,
        "cycles": cyc,
        "l2_refs": refs,
        "l2_misses": misses,
    }


class TestWindower:
    def test_emits_on_exact_boundary(self):
        w = IncrementalWindower(100.0)
        assert w.feed(period(100.0, cyc=200.0)) == [
            {"instructions": 100.0, "cycles": 200.0, "l2_refs": 0.0, "l2_misses": 0.0}
        ]
        assert w.windows_emitted == 1

    def test_spreads_period_across_windows(self):
        w = IncrementalWindower(100.0)
        out = w.feed(period(250.0, cyc=500.0))
        assert len(out) == 2
        for win in out:
            assert win["instructions"] == pytest.approx(100.0)
            assert win["cycles"] == pytest.approx(200.0)
        # 50 instructions remain in the open window.
        assert w.to_state()["fill"] == pytest.approx(50.0)

    def test_accumulates_small_periods(self):
        w = IncrementalWindower(100.0)
        assert w.feed(period(60.0, refs=6.0)) == []
        out = w.feed(period(60.0, refs=6.0))
        assert len(out) == 1
        assert out[0]["l2_refs"] == pytest.approx(6.0 + 6.0 * 40 / 60)

    def test_zero_instruction_period_folds_activity(self):
        w = IncrementalWindower(100.0)
        w.feed(period(0.0, cyc=50.0))
        out = w.feed(period(100.0))
        assert out[0]["cycles"] == pytest.approx(50.0)

    def test_flush_only_when_no_window_emitted(self):
        short = IncrementalWindower(100.0)
        short.feed(period(30.0, cyc=90.0))
        assert short.flush()[0]["instructions"] == pytest.approx(30.0)
        # A request past one window drops its partial tail (offline
        # total // window convention).
        longer = IncrementalWindower(100.0)
        longer.feed(period(130.0))
        assert longer.flush() == []

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            IncrementalWindower(0.0)

    def test_state_round_trip_mid_window(self):
        w = IncrementalWindower(100.0)
        w.feed(period(70.0, cyc=99.0, refs=3.0))
        restored = IncrementalWindower.from_state(w.to_state())
        a = w.feed(period(60.0, cyc=120.0))
        b = restored.feed(period(60.0, cyc=120.0))
        assert a == b


class TestWindowMetric:
    def test_metrics(self):
        win = {"instructions": 10.0, "cycles": 25.0, "l2_refs": 5.0, "l2_misses": 2.0}
        assert window_metric(win, "cpi") == pytest.approx(2.5)
        assert window_metric(win, "l2_refs_per_ins") == pytest.approx(0.5)
        assert window_metric(win, "l2_miss_per_ins") == pytest.approx(0.2)
        assert window_metric(win, "l2_miss_ratio") == pytest.approx(0.4)

    def test_zero_denominator_is_zero(self):
        win = {"instructions": 0.0, "cycles": 5.0, "l2_refs": 0.0, "l2_misses": 0.0}
        assert window_metric(win, "cpi") == 0.0
        assert window_metric(win, "l2_miss_ratio") == 0.0

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            window_metric({f: 1.0 for f in COUNTER_FIELDS}, "ipc")


class TestOfflineParity:
    def test_matches_request_trace_windowing(self, tpcc_run):
        """Feeding compensated period counters incrementally reproduces the
        offline cumulative-interpolation window series."""
        window = 100_000.0
        for trace in tpcc_run.traces[:10]:
            w = IncrementalWindower(window)
            online = []
            for i in range(trace.num_periods):
                online.extend(
                    w.feed(
                        {
                            "instructions": trace.instructions[i],
                            "cycles": trace.cycles[i],
                            "l2_refs": trace.l2_refs[i],
                            "l2_misses": trace.l2_misses[i],
                        }
                    )
                )
            online.extend(w.flush())
            offline = trace.series("cpi", window).values
            assert len(online) == offline.size
            got = np.array([window_metric(win, "cpi") for win in online])
            np.testing.assert_allclose(got, offline, rtol=1e-9, atol=1e-12)
