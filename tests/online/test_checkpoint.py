"""Checkpoint/restore: the byte-identity contract and format validation."""

import json

import pytest

from repro.online.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    checkpoint_from_json,
    checkpoint_to_json,
    load_checkpoint,
    save_checkpoint,
)
from repro.online.pipeline import OnlinePipeline
from repro.online.report import build_report


def fresh_pipeline(trained_identifier):
    """A pipeline whose identifier went through one state round trip, so
    live and restored sides share identical serialized provenance."""
    blob = checkpoint_to_json(OnlinePipeline(identifier=trained_identifier))
    return checkpoint_from_json(blob)


class TestByteIdentity:
    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.9])
    def test_mid_stream_restore_is_byte_identical(
        self, streamed_run, trained_identifier, fraction
    ):
        """Kill at an arbitrary point, restore, replay the whole stream:
        the final report and final checkpoint match an uninterrupted run."""
        _, events, _, _ = streamed_run
        uninterrupted = fresh_pipeline(trained_identifier)
        uninterrupted.process_events(events)
        reference_report = build_report(uninterrupted).to_json()
        reference_state = checkpoint_to_json(uninterrupted)

        cut = int(len(events) * fraction)
        first_half = fresh_pipeline(trained_identifier)
        first_half.process_events(events[:cut])
        resumed = checkpoint_from_json(checkpoint_to_json(first_half))
        # Full stream: the seq cursor must skip the already-folded prefix.
        resumed.process_events(events)

        assert build_report(resumed).to_json() == reference_report
        assert checkpoint_to_json(resumed) == reference_state

    def test_checkpoint_serialization_is_stable(
        self, streamed_run, trained_identifier
    ):
        _, events, _, _ = streamed_run
        pipeline = fresh_pipeline(trained_identifier)
        pipeline.process_events(events[: len(events) // 3])
        blob = checkpoint_to_json(pipeline)
        assert checkpoint_to_json(checkpoint_from_json(blob)) == blob

    def test_open_request_state_survives(self, streamed_run, trained_identifier):
        """Cut inside an in-flight request: its windower fill, streaks, and
        predictor estimate must survive the round trip."""
        _, events, _, _ = streamed_run
        pipeline = fresh_pipeline(trained_identifier)
        cut = next(
            i
            for i, e in enumerate(events)
            if e.kind == "period_sample" and i > len(events) // 4
        )
        pipeline.process_events(events[: cut + 1])
        assert pipeline.open, "cut did not land inside any in-flight request"
        restored = checkpoint_from_json(checkpoint_to_json(pipeline))
        assert set(restored.open) == set(pipeline.open)
        for rid, original in pipeline.open.items():
            assert restored.open[rid].to_state() == original.to_state()


class TestFileRoundTrip:
    def test_save_load(self, streamed_run, trained_identifier, tmp_path):
        _, events, _, _ = streamed_run
        pipeline = fresh_pipeline(trained_identifier)
        pipeline.process_events(events[: len(events) // 2])
        path = tmp_path / "ckpt.json"
        save_checkpoint(pipeline, str(path))
        restored = load_checkpoint(str(path))
        assert checkpoint_to_json(restored) == checkpoint_to_json(pipeline)


class TestValidation:
    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            checkpoint_from_json("not json{")

    def test_rejects_foreign_document(self):
        with pytest.raises(ValueError, match="not a repro online checkpoint"):
            checkpoint_from_json(json.dumps({"format": "something-else"}))

    def test_rejects_future_version(self):
        payload = {
            "format": "repro-online-checkpoint",
            "version": CHECKPOINT_VERSION + 1,
            "state": {},
        }
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            checkpoint_from_json(json.dumps(payload))

    def test_pipeline_without_identifier_round_trips(self):
        pipeline = OnlinePipeline()
        restored = checkpoint_from_json(checkpoint_to_json(pipeline))
        assert restored.identifier is None


class TestCorruptPayloads:
    """Corrupt/truncated checkpoints must raise CheckpointError (a
    ValueError), never a raw KeyError/JSONDecodeError from the payload
    internals — the serve failover path depends on telling 'retry with
    tail replay' apart from a crash."""

    def test_truncated_document(self):
        blob = checkpoint_to_json(OnlinePipeline())
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            checkpoint_from_json(blob[: len(blob) // 2])

    def test_empty_document(self):
        with pytest.raises(CheckpointError, match="empty checkpoint"):
            checkpoint_from_json("   \n")

    def test_missing_state_key(self):
        payload = {"format": "repro-online-checkpoint",
                   "version": CHECKPOINT_VERSION}
        with pytest.raises(CheckpointError, match="no state object"):
            checkpoint_from_json(json.dumps(payload))

    def test_corrupt_state_payload_names_version(self):
        blob = json.loads(checkpoint_to_json(OnlinePipeline()))
        del blob["state"]["centroids"]  # would surface as a raw KeyError
        with pytest.raises(CheckpointError, match="version 1"):
            checkpoint_from_json(json.dumps(blob))

    def test_wrong_typed_state_payload(self):
        blob = json.loads(checkpoint_to_json(OnlinePipeline()))
        blob["state"]["open"] = {"not": "a list"}
        with pytest.raises(CheckpointError, match="corrupt checkpoint state"):
            checkpoint_from_json(json.dumps(blob))

    def test_truncated_file_on_disk(self, tmp_path):
        path = tmp_path / "ckpt.json"
        save_checkpoint(OnlinePipeline(), str(path))
        path.write_text(path.read_text()[:40])
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))

    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)
