"""Unit and integration tests for online cause attribution.

The classifier is exercised two ways: synthetic feature windows that
isolate each taxonomy signature (the decision tree's branches, one by
one), and a live faulted run through the full pipeline with attribution
enabled — including the mid-stream checkpoint/restore byte-identity
contract for attribution state and decisions.
"""

from __future__ import annotations

import json

import pytest

from repro.faults.taxonomy import FAULT_TAXONOMY
from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import TraceCollector
from repro.online.attribution import (
    ATTRIBUTION_UNKNOWN,
    AttributionThresholds,
    CauseAttributor,
    score_attribution,
    _median3,
    _overall_mean,
    _runs,
    _transitions,
)
from repro.online.pipeline import OnlineConfig, OnlinePipeline
from repro.online.report import build_report
from repro.workloads.registry import make_faulted_workload

BASE = (1.0, 1.0, 0.1)


def warm(attributor, kind="q", windows=12, requests=8):
    """Feed flat healthy baselines so ratios equal the raw features."""
    for _ in range(requests):
        for index in range(windows):
            attributor.observe_window(kind, index, *BASE)
    return attributor


def features(count=8, **overrides):
    """``count`` baseline windows with per-index (cpi, refs, miss)
    overrides."""
    windows = [list(BASE) for _ in range(count)]
    for index, window in overrides.items():
        windows[int(index.lstrip("w"))] = list(window)
    return windows


class TestHelpers:
    def test_runs_counts_maximal_consecutive_groups(self):
        assert _runs([]) == 0
        assert _runs([3]) == 1
        assert _runs([1, 2, 3]) == 1
        assert _runs([1, 2, 5, 6, 9]) == 3

    def test_median3_smooths_single_spikes(self):
        assert _median3([1.0, 5.0, 1.0, 1.0]) == [1.0, 1.0, 1.0, 1.0]
        assert _median3([1.0, 2.0]) == [1.0, 2.0]
        # Two-wide plateaus survive.
        assert _median3([1.0, 2.0, 2.0, 1.0]) == [1.0, 2.0, 2.0, 1.0]

    def test_transitions_hysteresis(self):
        # Clean alternation counts every flip.
        assert _transitions([1.4, 1.0, 1.4, 1.0], 1.25, 1.1) == 3
        # Mid-band windows hold the current state (no flip).
        assert _transitions([1.4, 1.2, 1.4], 1.25, 1.1) == 0
        assert _transitions([1.0, 1.0], 1.25, 1.1) == 0

    def test_overall_mean_weights_by_population(self):
        attributor = CauseAttributor()
        attributor.observe_window("q", 0, 1.0, 2.0, 0.1)
        attributor.observe_window("q", 0, 1.0, 2.0, 0.1)
        attributor.observe_window("q", 1, 1.0, 5.0, 0.1)
        mean = _overall_mean(attributor.refs_centroids.group("q"))
        assert mean == pytest.approx((2.0 + 2.0 + 5.0) / 3)


class TestClassifySignatures:
    """Each taxonomy kind's synthetic counter signature lands on its
    branch of the decision tree."""

    def test_gc_pause_refs_collapse(self):
        a = warm(CauseAttributor())
        f = features(w3=(2.5, 0.1, 0.05))
        assert a.classify("q", f) == "gc_pause"

    def test_membw_saturation_sustained_streaming(self):
        a = warm(CauseAttributor())
        f = features(w2=(1.3, 2.5, 0.3), w3=(1.3, 2.5, 0.3),
                     w4=(1.3, 2.5, 0.3))
        assert a.classify("q", f) == "membw_saturation"

    def test_membw_saturation_single_streaming_peak(self):
        a = warm(CauseAttributor())
        f = features(w3=(1.4, 3.0, 0.3))
        assert a.classify("q", f) == "membw_saturation"

    def test_cache_thrash_peak_with_pathological_misses(self):
        a = warm(CauseAttributor())
        f = features(w3=(1.5, 3.0, 0.9))
        assert a.classify("q", f) == "cache_thrash"

    def test_lock_stall_single_spin_spike(self):
        a = warm(CauseAttributor())
        f = features(w3=(1.8, 0.5, 0.1))
        assert a.classify("q", f) == "lock_stall"

    def test_lock_convoy_disjoint_spin_runs(self):
        a = warm(CauseAttributor())
        f = features(w1=(1.6, 0.5, 0.1), w5=(1.6, 0.5, 0.1))
        assert a.classify("q", f) == "lock_convoy"

    def test_slowdown_uniform_inflation(self):
        a = warm(CauseAttributor())
        f = [[1.3, 1.0, 0.1] for _ in range(8)]
        assert a.classify("q", f) == "slowdown"

    def test_slow_replica_healthy_head_elevated_tail(self):
        a = warm(CauseAttributor())
        f = (
            [[1.0, 1.0, 0.1]] * 3
            + [[1.2, 1.0, 0.1]] * 3
            + [[1.4, 1.0, 0.1]] * 3
        )
        assert a.classify("q", f) == "slow_replica"

    def test_gray_degradation_on_off_alternation(self):
        a = warm(CauseAttributor())
        f = []
        for block in range(3):
            f += [[1.0, 1.0, 0.1]] * 2 + [[1.4, 1.0, 0.1]] * 2
        assert a.classify("q", f) == "gray_degradation"


class TestClassifyGuards:
    def test_cold_baseline_is_unknown(self):
        a = CauseAttributor()
        assert a.classify("q", features(w3=(2.5, 0.1, 0.05))) == (
            ATTRIBUTION_UNKNOWN
        )

    def test_empty_features_is_unknown(self):
        a = warm(CauseAttributor())
        assert a.classify("q", []) == ATTRIBUTION_UNKNOWN

    def test_no_elevation_is_unknown(self):
        a = warm(CauseAttributor())
        assert a.classify("q", features()) == ATTRIBUTION_UNKNOWN

    def test_pooled_fallback_for_rare_kind(self):
        a = warm(CauseAttributor(), kind="common")
        assert not a.warm("rare")
        assert a.warm(a.POOLED)
        f = features(w3=(2.5, 0.1, 0.05))
        assert a.classify("rare", f) == "gc_pause"

    def test_custom_thresholds_change_the_verdict(self):
        strict = CauseAttributor(
            AttributionThresholds(gc_min_elevation=10.0, gc_refs_ratio=0.01)
        )
        warm(strict)
        f = features(w3=(2.5, 0.1, 0.05))
        # The collapse no longer clears the gc gate; depressed refs with
        # elevated CPI falls through to the spin family.
        assert strict.classify("q", f) == "lock_stall"


class TestCheckpoint:
    def test_state_round_trips_byte_identically(self):
        a = warm(CauseAttributor())
        a.observe_window("other", 0, 1.5, 0.8, 0.2)
        state = a.to_state()
        restored = CauseAttributor.from_state(state)
        assert restored.to_state() == state
        assert json.dumps(restored.to_state(), sort_keys=True) == json.dumps(
            state, sort_keys=True
        )

    def test_restored_attributor_decides_identically(self):
        a = warm(CauseAttributor())
        restored = CauseAttributor.from_state(a.to_state())
        cases = [
            features(w3=(2.5, 0.1, 0.05)),
            features(w3=(1.8, 0.5, 0.1)),
            features(w2=(1.3, 2.5, 0.3), w3=(1.3, 2.5, 0.3),
                     w4=(1.3, 2.5, 0.3)),
        ]
        for f in cases:
            assert restored.classify("q", f) == a.classify("q", f)


class TestScoreAttribution:
    def test_perfect_attribution(self):
        records = [
            {"injected_fault": "gc_pause", "attributed_cause": "gc_pause"},
            {"injected_fault": "lock_stall", "attributed_cause": "lock_stall"},
            {"injected_fault": None, "attributed_cause": None},
        ]
        scored = score_attribution(records)
        assert scored["detected"] == 2
        assert scored["correct"] == 2
        assert scored["accuracy"] == 1.0
        assert scored["false_attributions"] == 0
        by_kind = {row["kind"]: row for row in scored["per_kind"]}
        assert by_kind["gc_pause"]["recall"] == 1.0
        assert by_kind["gc_pause"]["precision"] == 1.0

    def test_confusion_and_misses(self):
        records = [
            {"injected_fault": "gc_pause", "attributed_cause": "lock_stall"},
            {"injected_fault": "gc_pause", "attributed_cause": None},
            {"injected_fault": None, "attributed_cause": "slowdown"},
        ]
        scored = score_attribution(records)
        assert scored["confusion"]["gc_pause"] == {
            "lock_stall": 1, "missed": 1,
        }
        assert scored["confusion"]["none"] == {"slowdown": 1}
        assert scored["false_attributions"] == 1
        assert scored["accuracy"] == 0.0
        (row,) = scored["per_kind"]
        assert row["injected"] == 2
        assert row["detected"] == 1
        assert row["accuracy_given_detected"] == 0.0

    def test_precision_counts_all_attributions_of_a_kind(self):
        records = [
            {"injected_fault": "gc_pause", "attributed_cause": "gc_pause"},
            {"injected_fault": "slowdown", "attributed_cause": "gc_pause"},
        ]
        scored = score_attribution(records)
        by_kind = {row["kind"]: row for row in scored["per_kind"]}
        assert by_kind["gc_pause"]["precision"] == 0.5

    def test_empty_records(self):
        scored = score_attribution([])
        assert scored["detected"] == 0
        assert scored["accuracy"] is None
        assert scored["per_kind"] == []
        assert scored["confusion"] == {}


def _live_run(pipeline, faults="gc_pause:0.3", requests=30, seed=21):
    workload = make_faulted_workload("tpcc", faults)
    collector = TraceCollector()
    collector.subscribe(pipeline.process_event)
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=requests,
        concurrency=8,
        seed=seed,
        collector=collector,
    )
    ServerSimulator(workload, config).run()
    return workload, collector.events


class TestPipelineIntegration:
    def test_attribution_rides_the_live_pipeline(self, trained_identifier):
        pipeline = OnlinePipeline(
            identifier=trained_identifier,
            config=OnlineConfig(attribute=True),
        )
        workload, _ = _live_run(pipeline)
        report = build_report(pipeline)
        assert report.attribution is not None
        assert all("attributed_cause" in r for r in report.requests)
        causes = {
            r["attributed_cause"]
            for r in report.requests
            if r["attributed_cause"] is not None
        }
        assert causes, "no request was flagged and attributed at this seed"
        assert causes <= set(FAULT_TAXONOMY) | {ATTRIBUTION_UNKNOWN}
        # Scoring is keyed off the same records the report carries.
        assert report.attribution == score_attribution(report.requests)
        # The attribution key joins the JSON document only when enabled.
        assert "attribution" in json.loads(report.to_json())

    def test_attribution_off_keeps_record_bytes(self, trained_identifier):
        pipeline = OnlinePipeline(identifier=trained_identifier)
        _live_run(pipeline)
        report = build_report(pipeline)
        assert report.attribution is None
        assert all("attributed_cause" not in r for r in report.requests)
        assert "attribution" not in json.loads(report.to_json())

    def test_midstream_checkpoint_restores_attribution_decisions(
        self, trained_identifier
    ):
        reference = OnlinePipeline(
            identifier=trained_identifier,
            config=OnlineConfig(attribute=True),
        )
        _, events = _live_run(reference)

        split = len(events) // 2
        left = OnlinePipeline(
            identifier=trained_identifier,
            config=OnlineConfig(attribute=True),
        )
        for event in events[:split]:
            left.process_event(event)
        state = left.to_state()
        assert "attributor" in state
        resumed = OnlinePipeline.from_state(state)
        for event in events[split:]:
            resumed.process_event(event)

        assert resumed.records == reference.records
        assert build_report(resumed).to_json() == build_report(reference).to_json()
        assert build_report(resumed).attribution == build_report(reference).attribution
