"""Shared fixtures for the streaming-pipeline tests: one faulted live run."""

from __future__ import annotations

import pytest

from repro.kernel.sampling import SamplingPolicy
from repro.kernel.simulator import ServerSimulator, SimConfig
from repro.obs.trace import TraceCollector
from repro.online.pipeline import OnlinePipeline, train_identifier
from repro.workloads.registry import make_faulted_workload, make_workload


@pytest.fixture(scope="session")
def trained_identifier():
    return train_identifier(make_workload("tpcc"), num_requests=12, seed=900)


@pytest.fixture(scope="session")
def streamed_run(trained_identifier):
    """One live faulted TPCC run: (workload, events, live pipeline, result)."""
    workload = make_faulted_workload("tpcc", "lock_stall:0.25")
    collector = TraceCollector()
    pipeline = OnlinePipeline(identifier=trained_identifier)
    collector.subscribe(pipeline.process_event)
    config = SimConfig(
        sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
        num_requests=30,
        concurrency=8,
        seed=21,
        collector=collector,
    )
    result = ServerSimulator(workload, config).run()
    return workload, collector.events, pipeline, result
