"""TraceCollector ring buffer, span building, and JSONL round trips."""

from __future__ import annotations

import pytest

from repro.obs.trace import (
    EVENT_KINDS,
    NULL_COLLECTOR,
    NullCollector,
    ObsEvent,
    TraceCollector,
    events_to_jsonl,
    load_events,
    parse_events_jsonl,
    save_events,
)


def _fill(collector, n, kind="sample"):
    for i in range(n):
        collector.emit(kind, cycle=float(i * 10), request_id=i % 3, core=0)


class TestRingBuffer:
    def test_capacity_bounds_storage(self):
        collector = TraceCollector(capacity=10)
        _fill(collector, 25)
        assert len(collector) == 10
        assert collector.emitted == 25
        assert collector.dropped == 15

    def test_oldest_events_drop_first(self):
        collector = TraceCollector(capacity=10)
        _fill(collector, 25)
        seqs = [e.seq for e in collector.events]
        assert seqs == list(range(15, 25))

    def test_sequence_numbers_survive_drops(self):
        collector = TraceCollector(capacity=4)
        _fill(collector, 9)
        # seq keeps counting even though earlier events fell out.
        assert [e.seq for e in collector.events] == [5, 6, 7, 8]

    def test_clear_resets_everything(self):
        collector = TraceCollector(capacity=4)
        _fill(collector, 9)
        collector.clear()
        assert len(collector) == 0
        assert collector.emitted == 0
        assert collector.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=-1)

    def test_dispatch_only_retains_nothing(self):
        collector = TraceCollector(capacity=0)
        seen = []
        collector.subscribe(seen.append)
        _fill(collector, 5)
        assert len(collector) == 0
        assert collector.events == []
        assert collector.emitted == 5
        # Not retaining by design is not data loss.
        assert collector.dropped == 0
        assert [e.seq for e in seen] == [0, 1, 2, 3, 4]

    def test_unknown_kind_rejected(self):
        collector = TraceCollector()
        with pytest.raises(ValueError):
            collector.emit("not_a_kind", cycle=0.0)

    def test_unknown_kind_rejected_even_when_filtered_out(self):
        collector = TraceCollector(kinds={"sample"})
        with pytest.raises(ValueError):
            collector.emit("not_a_kind", cycle=0.0)


class TestKindFilter:
    def test_only_selected_kinds_collected(self):
        collector = TraceCollector(kinds={"sample", "request_admitted"})
        collector.emit("request_admitted", cycle=0.0, request_id=1)
        collector.emit("phase_transition", cycle=1.0, request_id=1)
        collector.emit("sample", cycle=2.0, request_id=1)
        collector.emit("syscall", cycle=3.0, request_id=1)
        assert [e.kind for e in collector.events] == ["request_admitted", "sample"]
        # seq numbers only advance for collected events.
        assert [e.seq for e in collector.events] == [0, 1]

    def test_filtered_kinds_skip_subscribers(self):
        collector = TraceCollector(kinds={"sample"})
        seen = []
        collector.subscribe(seen.append)
        collector.emit("syscall", cycle=0.0)
        collector.emit("sample", cycle=1.0)
        assert [e.kind for e in seen] == ["sample"]

    def test_unknown_kind_in_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown event kinds"):
            TraceCollector(kinds={"sample", "bogus"})

    def test_wants(self):
        unfiltered = TraceCollector()
        assert unfiltered.wants("sample")
        filtered = TraceCollector(kinds={"sample"})
        assert filtered.wants("sample")
        assert not filtered.wants("syscall")
        assert not NULL_COLLECTOR.wants("sample")


class TestNullCollector:
    def test_disabled_and_inert(self):
        null = NullCollector()
        assert not null.enabled
        null.emit("sample", cycle=0.0)
        assert len(null) == 0
        assert null.emitted == 0

    def test_singleton_is_disabled(self):
        assert not NULL_COLLECTOR.enabled


class TestSpans:
    def test_spans_built_from_lifecycle_events(self):
        collector = TraceCollector()
        collector.emit("request_admitted", cycle=0.0, request_id=7, app="tpcc")
        collector.emit("task_dispatched", cycle=5.0, request_id=7, core=1)
        collector.emit("phase_transition", cycle=9.0, request_id=7, stage=0)
        collector.emit("syscall", cycle=10.0, request_id=7, name="read")
        collector.emit("sample", cycle=12.0, request_id=7, core=1)
        collector.emit("request_completed", cycle=20.0, request_id=7)
        spans = collector.request_spans()
        assert set(spans) == {7}
        span = spans[7]
        assert span.complete
        assert span.admitted_cycle == 0.0
        assert span.completed_cycle == 20.0
        assert span.latency_cycles == 20.0
        assert span.dispatches == 1
        assert span.phase_transitions == 1
        assert span.syscalls == 1
        assert span.samples == 1
        assert span.cores == [1]

    def test_incomplete_span(self):
        collector = TraceCollector()
        collector.emit("request_admitted", cycle=3.0, request_id=0)
        span = collector.request_spans()[0]
        assert not span.complete
        assert span.latency_cycles is None


class TestJsonlRoundTrip:
    def test_export_import_reexport_lossless(self):
        collector = TraceCollector()
        collector.emit("run_start", cycle=0.0, workload="tpcc", seed=1)
        _fill(collector, 7)
        collector.emit("run_end", cycle=99.0, completed=3)
        text = events_to_jsonl(collector.events, dropped=collector.dropped)
        events, dropped = parse_events_jsonl(text)
        assert dropped == 0
        assert events_to_jsonl(events, dropped=dropped) == text
        assert [e.seq for e in events] == [e.seq for e in collector.events]

    def test_save_load_files(self, tmp_path):
        collector = TraceCollector()
        _fill(collector, 5)
        path = tmp_path / "events.jsonl"
        save_events(collector, str(path))
        events, dropped = load_events(str(path))
        assert len(events) == 5
        assert dropped == 0
        assert events[0].kind == "sample"

    def test_dropped_count_round_trips(self):
        collector = TraceCollector(capacity=3)
        _fill(collector, 8)
        text = events_to_jsonl(collector.events, dropped=collector.dropped)
        _, dropped = parse_events_jsonl(text)
        assert dropped == 5

    def test_event_dict_round_trip(self):
        event = ObsEvent(
            seq=4, cycle=8.0, kind="syscall", request_id=2, task_id=9,
            core=3, data={"name": "poll"},
        )
        assert ObsEvent.from_dict(event.to_dict()) == event


class TestMalformedInput:
    def test_empty_text(self):
        with pytest.raises(ValueError, match="empty"):
            parse_events_jsonl("")

    def test_malformed_header(self):
        with pytest.raises(ValueError, match="header"):
            parse_events_jsonl("not json\n")

    def test_foreign_format(self):
        with pytest.raises(ValueError, match="not a repro obs"):
            parse_events_jsonl('{"format":"something-else","version":1}\n')

    def test_unsupported_version(self):
        with pytest.raises(ValueError, match="version"):
            parse_events_jsonl(
                '{"format":"repro-obs-events","version":99,"events":0,"dropped":0}\n'
            )

    def test_malformed_event_line_reports_line_number(self):
        collector = TraceCollector()
        _fill(collector, 2)
        lines = events_to_jsonl(collector.events).splitlines()
        lines[2] = "{broken"
        with pytest.raises(ValueError, match="line 3"):
            parse_events_jsonl("\n".join(lines) + "\n")

    def test_event_count_mismatch(self):
        collector = TraceCollector()
        _fill(collector, 3)
        lines = events_to_jsonl(collector.events).splitlines()
        del lines[-1]
        with pytest.raises(ValueError, match="declares"):
            parse_events_jsonl("\n".join(lines) + "\n")

    def test_missing_required_event_keys(self):
        with pytest.raises(ValueError):
            ObsEvent.from_dict({"seq": 0, "cycle": 1.0})

    def test_blank_lines_do_not_shift_reported_line_numbers(self):
        """Line numbers must index the *file*, not the non-blank subset
        (the serve tier replays tails from these files; a debugging session
        that opens the file at the reported line must land on the bad one)."""
        collector = TraceCollector()
        _fill(collector, 2)
        lines = events_to_jsonl(collector.events).splitlines()
        lines.insert(1, "")  # blank separator after the header
        lines[3] = "{broken"  # file line 4 (1-based), not non-blank line 3
        with pytest.raises(ValueError, match="line 4"):
            parse_events_jsonl("\n".join(lines) + "\n")

    def test_wrong_typed_field_reports_line_number(self):
        """A TypeError inside record decoding (seq: null) must surface as a
        numbered ValueError, not a raw TypeError."""
        collector = TraceCollector()
        _fill(collector, 2)
        lines = events_to_jsonl(collector.events).splitlines()
        lines[2] = lines[2].replace('"seq":1', '"seq":null')
        with pytest.raises(ValueError, match="line 3"):
            parse_events_jsonl("\n".join(lines) + "\n")


class TestSubscribers:
    def test_subscriber_sees_every_event_in_order(self):
        collector = TraceCollector(capacity=5)
        seen = []
        collector.subscribe(seen.append)
        _fill(collector, 12)
        # The ring dropped events, but the live subscriber saw all of them.
        assert len(seen) == 12
        assert [e.seq for e in seen] == list(range(12))

    def test_unsubscribe_stops_delivery(self):
        collector = TraceCollector()
        seen = []
        collector.subscribe(seen.append)
        _fill(collector, 3)
        collector.unsubscribe(seen.append)
        _fill(collector, 3)
        assert len(seen) == 3

    def test_multiple_subscribers(self):
        collector = TraceCollector()
        a, b = [], []
        collector.subscribe(a.append)
        collector.subscribe(b.append)
        _fill(collector, 4)
        assert [e.seq for e in a] == [e.seq for e in b] == [0, 1, 2, 3]

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            TraceCollector().subscribe("not-a-function")

    def test_null_collector_rejects_subscription(self):
        with pytest.raises(ValueError, match="disabled collector"):
            NULL_COLLECTOR.subscribe(lambda e: None)


class TestPeriodSampleEvents:
    def test_simulator_emits_period_samples(self):
        from tests.conftest import run_small

        collector = TraceCollector()
        run = run_small("tpcc", num_requests=5, seed=12, collector=collector)
        periods = collector.events_of_kind("period_sample")
        assert periods, "no period_sample events emitted"
        # Every kept period of every trace appears in the stream.
        assert len(periods) == sum(t.num_periods for t in run.traces)
        sample = periods[0]
        for key in ("instructions", "cycles", "l2_refs", "l2_misses",
                    "injected_in_kernel", "injected_interrupt", "start_cycle"):
            assert key in sample.data
        # The final period of a request precedes its completion event.
        completed = {e.request_id: e.seq
                     for e in collector.events_of_kind("request_completed")}
        for event in periods:
            assert event.seq < completed[event.request_id]


def test_event_kind_registry_is_closed():
    """Every kind used by the simulator is declared exactly once."""
    assert len(EVENT_KINDS) == len(set(EVENT_KINDS))
    assert "request_admitted" in EVENT_KINDS
    assert "request_completed" in EVENT_KINDS
    assert "period_sample" in EVENT_KINDS
