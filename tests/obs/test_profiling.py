"""Stage profiler: accumulation, ambient activation, no-op default."""

from __future__ import annotations

import pytest

from repro.obs.profiling import (
    STAGES,
    StageProfiler,
    activated,
    active_profiler,
    profiled_stage,
)


def test_stage_accumulates_seconds_and_counts():
    profiler = StageProfiler()
    with profiler.stage("simulate"):
        pass
    with profiler.stage("simulate"):
        pass
    assert profiler.count("simulate") == 2
    assert profiler.seconds("simulate") >= 0.0
    assert profiler.count("distance") == 0


def test_add_external_duration():
    profiler = StageProfiler()
    profiler.add("distance", 1.5)
    profiler.add("distance", 0.5, count=3)
    assert profiler.seconds("distance") == pytest.approx(2.0)
    assert profiler.count("distance") == 4
    with pytest.raises(ValueError):
        profiler.add("distance", -1.0)


def test_snapshot_shape():
    profiler = StageProfiler()
    profiler.add("generate", 0.25)
    snapshot = profiler.snapshot()
    assert snapshot == {"generate": {"seconds": 0.25, "calls": 1}}


def test_profiled_stage_is_noop_without_activation():
    assert active_profiler() is None
    with profiled_stage("simulate"):
        pass  # must not raise and must not record anywhere


def test_activation_is_scoped_and_restores_previous():
    outer, inner = StageProfiler(), StageProfiler()
    with activated(outer):
        with profiled_stage("cluster"):
            pass
        with activated(inner):
            assert active_profiler() is inner
            with profiled_stage("cluster"):
                pass
        assert active_profiler() is outer
    assert active_profiler() is None
    assert outer.count("cluster") == 1
    assert inner.count("cluster") == 1


def test_simulator_reports_stage_time():
    from tests.conftest import run_small

    profiler = StageProfiler()
    with activated(profiler):
        run_small("webserver", num_requests=4, seed=3)
    assert profiler.count("simulate") == 1
    assert profiler.seconds("simulate") > 0.0
    # "generate" counts workload construction plus per-request synthesis
    # (attributed out of the simulate stage), so one call per request on
    # top of construction and any block-ahead fill.
    assert profiler.count("generate") >= 1 + 4
    assert profiler.seconds("generate") > 0.0


def test_canonical_stage_names():
    assert STAGES == ("generate", "simulate", "distance", "cluster")
