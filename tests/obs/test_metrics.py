"""Metrics registry: counters, gauges, weighted histograms, snapshots."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, PeriodHistogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_none_until_set_then_last_write_wins(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(3)
        gauge.set(7.5)
        assert gauge.value == 7.5


class TestPeriodHistogram:
    def test_empty_snapshot_is_all_none(self):
        snapshot = PeriodHistogram().snapshot()
        assert snapshot["count"] == 0
        assert all(
            snapshot[key] is None
            for key in ("mean", "p50", "p80", "p95", "min", "max", "p80_online")
        )

    def test_single_observation(self):
        histogram = PeriodHistogram()
        histogram.observe(4.0, weight=10.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["mean"] == 4.0
        assert snapshot["p50"] == 4.0
        assert snapshot["min"] == snapshot["max"] == 4.0

    def test_weighted_mean_respects_weights(self):
        histogram = PeriodHistogram()
        histogram.observe(1.0, weight=3.0)
        histogram.observe(5.0, weight=1.0)
        assert histogram.mean() == pytest.approx(2.0)

    def test_duplicate_heavy_stream(self):
        histogram = PeriodHistogram()
        for _ in range(95):
            histogram.observe(2.0)
        for _ in range(5):
            histogram.observe(9.0)
        snapshot = histogram.snapshot()
        assert snapshot["p50"] == pytest.approx(2.0)
        assert snapshot["p80"] == pytest.approx(2.0)
        assert snapshot["max"] == 9.0
        # Streaming p80 stays in the observed value range.
        assert 2.0 <= snapshot["p80_online"] <= 9.0

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            PeriodHistogram().observe(1.0, weight=0.0)

    def test_online_estimate_tracks_percentile(self):
        histogram = PeriodHistogram(online_quantile=0.8)
        rng = np.random.default_rng(42)
        values = rng.uniform(0.0, 100.0, size=2000)
        for value in values:
            histogram.observe(float(value))
        true_p80 = float(np.percentile(values, 80))
        assert histogram.online_estimate() == pytest.approx(true_p80, abs=5.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc()
        assert registry.counter("a").value == 2

    def test_cross_type_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc(2)
        registry.counter("alpha").inc(1)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0, weight=2.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["alpha", "zeta"]
        json.dumps(snapshot)  # must not raise

    def test_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("events").inc(4)
        path = tmp_path / "metrics.json"
        registry.write_json(str(path), extra={"seed": 7})
        document = json.loads(path.read_text())
        assert document["counters"]["events"] == 4
        assert document["seed"] == 7


class TestSimResultIntegration:
    def test_register_metrics_from_run(self, tpcc_run):
        registry = MetricsRegistry()
        tpcc_run.register_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests_completed"] == len(tpcc_run.traces)
        assert snapshot["gauges"]["wall_cycles"] == tpcc_run.wall_cycles
        cpi = snapshot["histograms"]["request_cpi"]
        assert cpi["count"] == len(tpcc_run.traces)
        expected = tpcc_run.request_cpis()
        assert cpi["min"] == pytest.approx(float(expected.min()))
        assert cpi["max"] == pytest.approx(float(expected.max()))
