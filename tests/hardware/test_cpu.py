"""Tests for core execution state and effective-rate computation."""

import pytest

from repro.hardware.cache import SharedL2Model
from repro.hardware.counters import CounterSnapshot
from repro.hardware.cpu import (
    CoreState,
    EffectiveRates,
    PhaseBehavior,
    compute_effective_rates,
)
from repro.hardware.memory import MemoryBusModel
from repro.hardware.platform import WOODCREST, serial_machine

SCAN = PhaseBehavior(
    base_cpi=0.95, l2_refs_per_ins=0.024, l2_miss_ratio=0.35, cache_footprint=1.0
)
COMPUTE = PhaseBehavior(
    base_cpi=1.3, l2_refs_per_ins=0.002, l2_miss_ratio=0.15, cache_footprint=0.05
)


def rates_for(behaviors, machine=WOODCREST):
    return compute_effective_rates(
        machine, SharedL2Model(), MemoryBusModel(), behaviors
    )


class TestPhaseBehavior:
    def test_solo_cpi(self):
        b = PhaseBehavior(1.0, 0.01, 0.5, 0.5)
        assert b.solo_cpi(200.0) == pytest.approx(1.0 + 200 * 0.01 * 0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_cpi=0.0, l2_refs_per_ins=0.0, l2_miss_ratio=0.0, cache_footprint=0.0),
            dict(base_cpi=1.0, l2_refs_per_ins=-0.1, l2_miss_ratio=0.0, cache_footprint=0.0),
            dict(base_cpi=1.0, l2_refs_per_ins=0.0, l2_miss_ratio=1.5, cache_footprint=0.0),
            dict(base_cpi=1.0, l2_refs_per_ins=0.0, l2_miss_ratio=0.0, cache_footprint=2.0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PhaseBehavior(**kwargs)


class TestEffectiveRates:
    def test_counters_for_instructions(self):
        r = EffectiveRates(cpi=2.0, l2_refs_per_ins=0.01, l2_miss_ratio=0.5)
        c = r.counters_for_instructions(1000)
        assert c.cycles == pytest.approx(2000)
        assert c.instructions == pytest.approx(1000)
        assert c.l2_refs == pytest.approx(10)
        assert c.l2_misses == pytest.approx(5)

    def test_instructions_for_cycles_inverse(self):
        r = EffectiveRates(cpi=2.5, l2_refs_per_ins=0.0, l2_miss_ratio=0.0)
        assert r.instructions_for_cycles(250) == pytest.approx(100)


class TestComputeEffectiveRates:
    def test_solo_matches_solo_cpi(self):
        rates = rates_for({0: SCAN}, machine=serial_machine())
        assert rates[0].cpi == pytest.approx(
            SCAN.solo_cpi(WOODCREST.l2_miss_penalty_cycles)
        )
        assert rates[0].l2_miss_ratio == pytest.approx(SCAN.l2_miss_ratio)

    def test_l2_peer_inflates(self):
        solo = rates_for({0: SCAN})
        pair = rates_for({0: SCAN, 1: SCAN})
        assert pair[0].cpi > solo[0].cpi
        assert pair[0].l2_miss_ratio > solo[0].l2_miss_ratio

    def test_cross_die_couples_only_through_bus(self):
        """A core on the other die adds bus pressure but no L2 inflation."""
        solo = rates_for({0: SCAN})
        cross = rates_for({0: SCAN, 2: SCAN})
        assert cross[0].l2_miss_ratio == pytest.approx(solo[0].l2_miss_ratio)
        assert cross[0].cpi > solo[0].cpi  # bus contention only

    def test_same_die_hurts_more_than_cross_die(self):
        same = rates_for({0: SCAN, 1: SCAN})
        cross = rates_for({0: SCAN, 2: SCAN})
        assert same[0].cpi > cross[0].cpi

    def test_compute_phase_barely_affected(self):
        """The WeBWorK story: tiny footprint -> negligible obfuscation."""
        solo = rates_for({0: COMPUTE}, machine=serial_machine())
        crowded = rates_for({0: COMPUTE, 1: SCAN, 2: SCAN, 3: SCAN})
        assert crowded[0].cpi < solo[0].cpi * 1.15

    def test_scan_heavily_affected_when_crowded(self):
        solo = rates_for({0: SCAN}, machine=serial_machine())
        crowded = rates_for({0: SCAN, 1: SCAN, 2: SCAN, 3: SCAN})
        assert crowded[0].cpi > solo[0].cpi * 1.3

    def test_idle_cores_absent_from_result(self):
        rates = rates_for({2: SCAN})
        assert set(rates) == {2}

    def test_symmetry(self):
        rates = rates_for({0: SCAN, 1: SCAN, 2: SCAN, 3: SCAN})
        assert rates[0].cpi == pytest.approx(rates[3].cpi)


class TestCoreState:
    def test_advance_accumulates(self):
        core = CoreState(core_id=0)
        core.set_rates(EffectiveRates(cpi=2.0, l2_refs_per_ins=0.01, l2_miss_ratio=0.5))
        delta = core.advance(1000.0)
        assert delta.cycles == pytest.approx(1000.0)
        assert delta.instructions == pytest.approx(500.0)
        assert core.busy_cycles == pytest.approx(1000.0)

    def test_idle_advance_is_empty(self):
        core = CoreState(core_id=0)
        delta = core.advance(500.0)
        assert delta.instructions == 0.0
        assert core.last_advance_cycle == 500.0

    def test_advance_into_stall_window_is_noop(self):
        core = CoreState(core_id=0)
        core.set_rates(EffectiveRates(cpi=1.0, l2_refs_per_ins=0.0, l2_miss_ratio=0.0))
        core.inject(CounterSnapshot(cycles=1000.0))
        delta = core.advance(500.0)  # before the stall window ends
        assert delta.instructions == 0.0
        assert core.last_advance_cycle == pytest.approx(1000.0)

    def test_inject_counts_and_stalls(self):
        core = CoreState(core_id=0)
        core.set_rates(EffectiveRates(cpi=1.0, l2_refs_per_ins=0.0, l2_miss_ratio=0.0))
        core.inject(CounterSnapshot(cycles=100.0, instructions=50.0))
        assert core.total.instructions == pytest.approx(50.0)
        assert core.last_advance_cycle == pytest.approx(100.0)
        # After the stall, execution resumes normally.
        delta = core.advance(300.0)
        assert delta.instructions == pytest.approx(200.0)

    def test_is_busy(self):
        core = CoreState(core_id=0)
        assert not core.is_busy
        core.set_rates(EffectiveRates(cpi=1.0, l2_refs_per_ins=0.0, l2_miss_ratio=0.0))
        assert core.is_busy
