"""Tests for the memory-bus bandwidth model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.memory import MemoryBusModel


class TestMissTraffic:
    def setup_method(self):
        self.model = MemoryBusModel()

    def test_zero_misses_zero_traffic(self):
        assert self.model.miss_traffic(0.0, 0.5, 2.0) == 0.0

    def test_traffic_scales_with_miss_rate(self):
        low = self.model.miss_traffic(0.01, 0.2, 2.0)
        high = self.model.miss_traffic(0.02, 0.2, 2.0)
        assert high == pytest.approx(2 * low)

    def test_clamped_at_max_occupancy(self):
        t = self.model.miss_traffic(1.0, 1.0, 0.5)
        assert t == self.model.max_occupancy

    def test_invalid_cpi_raises(self):
        with pytest.raises(ValueError):
            self.model.miss_traffic(0.01, 0.2, 0.0)


class TestEffectivePenalty:
    def setup_method(self):
        self.model = MemoryBusModel()

    def test_no_contention_keeps_base(self):
        assert self.model.effective_miss_penalty(220.0, 0.0) == pytest.approx(220.0)

    def test_superlinear_in_occupancy(self):
        """Quad-high coincidences cost more than twice duo-high ones."""
        duo = self.model.effective_miss_penalty(220.0, 0.1) - 220.0
        quad = self.model.effective_miss_penalty(220.0, 0.3) - 220.0
        assert quad > 3 * duo

    def test_negative_occupancy_treated_as_zero(self):
        assert self.model.effective_miss_penalty(220.0, -5.0) == pytest.approx(220.0)

    def test_finite_at_extreme_occupancy(self):
        penalty = self.model.effective_miss_penalty(220.0, 1e9)
        cap = (self.model.machine_cores - 1) * self.model.max_occupancy
        expected = 220.0 * (
            1 + self.model.contention_gamma * cap + self.model.contention_beta * cap**2
        )
        assert penalty == pytest.approx(expected)

    @given(st.floats(0.0, 3.0), st.floats(0.0, 3.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert self.model.effective_miss_penalty(220.0, hi) >= (
            self.model.effective_miss_penalty(220.0, lo) - 1e-9
        )
