"""Tests for the shared-L2 contention model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import SharedL2Model, phase_pressure

probabilities = st.floats(0.0, 1.0, allow_nan=False)
pressures = st.floats(0.0, 0.1, allow_nan=False)


class TestPhasePressure:
    def test_zero_refs_zero_pressure(self):
        assert phase_pressure(0.0, 1.0, 1.0) == 0.0

    def test_zero_footprint_zero_pressure(self):
        assert phase_pressure(0.05, 1.0, 0.0) == 0.0

    def test_refs_per_cycle_scaling(self):
        # Doubling CPI halves the per-cycle reference pressure.
        fast = phase_pressure(0.02, 1.0, 1.0)
        slow = phase_pressure(0.02, 2.0, 1.0)
        assert fast == pytest.approx(2 * slow)

    def test_invalid_cpi_raises(self):
        with pytest.raises(ValueError):
            phase_pressure(0.02, 0.0, 1.0)


class TestSharedL2Model:
    def setup_method(self):
        self.model = SharedL2Model()

    def test_no_pressure_keeps_base(self):
        assert self.model.effective_miss_ratio(0.3, 1.0, 0.0) == pytest.approx(0.3)

    def test_zero_footprint_immune(self):
        """A phase that barely uses the cache cannot be hurt (WeBWorK)."""
        assert self.model.effective_miss_ratio(0.2, 0.0, 0.05) == pytest.approx(0.2)

    def test_pressure_inflates(self):
        base = 0.3
        inflated = self.model.effective_miss_ratio(base, 1.0, 0.02)
        assert inflated > base

    def test_capped(self):
        inflated = self.model.effective_miss_ratio(0.8, 1.0, 10.0)
        assert inflated <= self.model.miss_ratio_cap

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            self.model.effective_miss_ratio(1.5, 1.0, 0.0)

    def test_negative_pressure_raises(self):
        with pytest.raises(ValueError):
            self.model.effective_miss_ratio(0.5, 1.0, -0.1)

    @given(probabilities, probabilities, pressures)
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, base, footprint, pressure):
        m = self.model.effective_miss_ratio(base, footprint, pressure)
        assert base - 1e-12 <= m <= max(self.model.miss_ratio_cap, base) + 1e-12

    @given(probabilities, st.floats(0.1, 1.0), pressures, pressures)
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_pressure(self, base, footprint, p1, p2):
        lo, hi = sorted((p1, p2))
        m_lo = self.model.effective_miss_ratio(base, footprint, lo)
        m_hi = self.model.effective_miss_ratio(base, footprint, hi)
        assert m_hi >= m_lo - 1e-12

    def test_ref_rate_inflation_bounded(self):
        base = 0.02
        inflated = self.model.effective_ref_rate(base, 100.0)
        assert base < inflated <= base * (1 + self.model.ref_inflation) + 1e-12

    def test_ref_rate_no_pressure(self):
        assert self.model.effective_ref_rate(0.02, 0.0) == pytest.approx(0.02)


class TestSensitivityStory:
    """The application-dependent obfuscation of Figure 1 in miniature."""

    def test_tpch_like_suffers_more_than_webwork_like(self):
        model = SharedL2Model()
        co_pressure = phase_pressure(0.024, 1.0, 1.0)  # a TPCH scan peer
        tpch = model.effective_miss_ratio(0.35, 1.0, co_pressure)
        webwork = model.effective_miss_ratio(0.15, 0.05, co_pressure)
        assert (tpch - 0.35) / 0.35 > 5 * (webwork - 0.15) / 0.15
