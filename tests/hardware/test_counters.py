"""Tests for counters and the sampling observer-effect model."""

import pytest

from repro.hardware.counters import (
    CounterSnapshot,
    SamplingContext,
    SamplingCostModel,
)


class TestCounterSnapshot:
    def test_add(self):
        a = CounterSnapshot(1, 2, 3, 4)
        b = CounterSnapshot(10, 20, 30, 40)
        s = a + b
        assert (s.cycles, s.instructions, s.l2_refs, s.l2_misses) == (11, 22, 33, 44)

    def test_sub(self):
        a = CounterSnapshot(10, 20, 30, 40)
        b = CounterSnapshot(1, 2, 3, 4)
        d = a - b
        assert (d.cycles, d.instructions, d.l2_refs, d.l2_misses) == (9, 18, 27, 36)

    def test_cpi(self):
        assert CounterSnapshot(cycles=10, instructions=4).cpi() == pytest.approx(2.5)

    def test_cpi_without_instructions_raises(self):
        with pytest.raises(ValueError):
            CounterSnapshot(cycles=10).cpi()

    def test_default_is_zero(self):
        z = CounterSnapshot()
        assert z.cycles == 0 and z.instructions == 0


class TestSamplingCostModel:
    def setup_method(self):
        self.model = SamplingCostModel()

    def test_table1_spin_values(self):
        """Zero-pollution costs reproduce the paper's Mbench-Spin row."""
        ik = self.model.cost(SamplingContext.IN_KERNEL, 0.0)
        assert ik.cycles == pytest.approx(1270)
        assert ik.instructions == pytest.approx(649)
        assert ik.l2_refs == 0
        it = self.model.cost(SamplingContext.INTERRUPT, 0.0)
        assert it.cycles == pytest.approx(2276)
        assert it.instructions == pytest.approx(724)

    def test_table1_data_values(self):
        """Full-pollution costs reproduce the Mbench-Data row."""
        ik = self.model.cost(SamplingContext.IN_KERNEL, 1.0)
        assert ik.cycles == pytest.approx(1374)
        assert ik.l2_refs == pytest.approx(13)
        it = self.model.cost(SamplingContext.INTERRUPT, 1.0)
        assert it.cycles == pytest.approx(2388)
        assert it.instructions == pytest.approx(734)
        assert it.l2_refs == pytest.approx(12)

    def test_time_costs_at_3ghz(self):
        """The paper's 0.42us / 0.76us per-sample times at 3 GHz."""
        assert self.model.time_cost_us(
            SamplingContext.IN_KERNEL, 3.0
        ) == pytest.approx(0.423, abs=0.01)
        assert self.model.time_cost_us(
            SamplingContext.INTERRUPT, 3.0
        ) == pytest.approx(0.759, abs=0.01)

    def test_pollution_clamped(self):
        over = self.model.cost(SamplingContext.IN_KERNEL, 5.0)
        full = self.model.cost(SamplingContext.IN_KERNEL, 1.0)
        assert over.cycles == full.cycles
        under = self.model.cost(SamplingContext.IN_KERNEL, -1.0)
        zero = self.model.cost(SamplingContext.IN_KERNEL, 0.0)
        assert under.cycles == zero.cycles

    def test_minimum_cost_is_never_above_actual(self):
        """'Do no harm': minimum cost never exceeds any actual cost."""
        for context in SamplingContext:
            minimum = self.model.minimum_cost(context)
            for pollution in (0.0, 0.3, 0.7, 1.0):
                actual = self.model.cost(context, pollution)
                assert minimum.cycles <= actual.cycles
                assert minimum.instructions <= actual.instructions
                assert minimum.l2_refs <= actual.l2_refs

    def test_interrupt_costs_exceed_in_kernel(self):
        """The extra user/kernel domain switch costs >1000 cycles."""
        ik = self.model.cost(SamplingContext.IN_KERNEL, 0.0)
        it = self.model.cost(SamplingContext.INTERRUPT, 0.0)
        assert it.cycles - ik.cycles > 1000
