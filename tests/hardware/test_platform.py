"""Tests for machine topology and clock configuration."""

import pytest

from repro.hardware.platform import WOODCREST, MachineConfig, serial_machine


class TestMachineConfig:
    def test_woodcrest_defaults(self):
        assert WOODCREST.num_cores == 4
        assert WOODCREST.frequency_ghz == 3.0
        assert WOODCREST.l2_size_kb == 4096
        assert WOODCREST.l2_hit_latency_cycles == 14

    def test_cycle_conversions_roundtrip(self):
        cycles = WOODCREST.us_to_cycles(10.0)
        assert cycles == pytest.approx(30_000)
        assert WOODCREST.cycles_to_us(cycles) == pytest.approx(10.0)

    def test_ms_to_cycles(self):
        assert WOODCREST.ms_to_cycles(1.0) == pytest.approx(3_000_000)

    def test_l2_domains(self):
        assert WOODCREST.l2_domain_of(0) == WOODCREST.l2_domain_of(1)
        assert WOODCREST.l2_domain_of(2) == WOODCREST.l2_domain_of(3)
        assert WOODCREST.l2_domain_of(0) != WOODCREST.l2_domain_of(2)

    def test_l2_peers(self):
        assert WOODCREST.l2_peers_of(0) == (1,)
        assert WOODCREST.l2_peers_of(3) == (2,)

    def test_serial_machine(self):
        m = serial_machine()
        assert m.num_cores == 1
        assert m.l2_peers_of(0) == ()

    def test_incomplete_domains_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=4, l2_domains=((0, 1),))

    def test_duplicate_core_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=2, l2_domains=((0, 0),))

    def test_frozen(self):
        with pytest.raises(Exception):
            WOODCREST.num_cores = 8
