"""Determinism golden tests: same seed => byte-identical artifacts.

The repository's figures are only trustworthy if a run is a pure function
of its seed.  These tests pin that property at the byte level (hashing
exported JSONL) and across execution strategies (serial vs. forked
parallel experiment runs).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.kernel.trace_io import traces_to_jsonl
from repro.obs.trace import TraceCollector, events_to_jsonl
from tests.conftest import run_small


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _traced(app, seed):
    collector = TraceCollector()
    result = run_small(app, num_requests=10, seed=seed, collector=collector)
    return result, collector


@pytest.mark.parametrize("app", ["webserver", "tpcc"])
def test_same_seed_runs_export_identical_event_streams(app):
    _, first = _traced(app, seed=33)
    _, second = _traced(app, seed=33)
    text_a = events_to_jsonl(first.events, dropped=first.dropped)
    text_b = events_to_jsonl(second.events, dropped=second.dropped)
    assert _digest(text_a) == _digest(text_b)


def test_different_seeds_diverge():
    _, first = _traced("tpcc", seed=1)
    _, second = _traced("tpcc", seed=2)
    assert _digest(events_to_jsonl(first.events)) != _digest(
        events_to_jsonl(second.events)
    )


def test_same_seed_runs_export_identical_request_traces():
    first, _ = _traced("webserver", seed=12)
    second, _ = _traced("webserver", seed=12)
    assert _digest(traces_to_jsonl(first.traces)) == _digest(
        traces_to_jsonl(second.traces)
    )


def test_tracing_does_not_change_exported_traces():
    """The trace artifact is identical with and without observability on."""
    plain = run_small("tpcc", num_requests=10, seed=44)
    traced, _ = _traced("tpcc", seed=44)
    assert _digest(traces_to_jsonl(plain.traces)) == _digest(
        traces_to_jsonl(traced.traces)
    )


class TestParallelExperimentParity:
    """`repro-experiments --jobs N` must render exactly the serial output."""

    EXPERIMENTS = ["table1", "sec32"]
    SCALE = 0.05

    @staticmethod
    def _rendered(jobs):
        from repro.experiments.runner import run_experiments

        return {
            exp_id: result.render()
            for exp_id, result, _ in run_experiments(
                TestParallelExperimentParity.EXPERIMENTS,
                TestParallelExperimentParity.SCALE,
                jobs=jobs,
            )
        }

    def test_jobs2_matches_serial(self):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        serial = self._rendered(jobs=1)
        parallel = self._rendered(jobs=2)
        assert parallel == serial
