"""Weighted statistics primitives shared across the library.

The paper's metrics are all ratios of cumulative hardware-counter values
measured over execution periods of unequal length, so every statistic here
takes an optional weight vector (period lengths).  Equation numbers refer to
the ASPLOS 2010 paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _as_arrays(values, weights):
    """Validate a (values, weights) pair for weighted statistics.

    Every failure mode that would otherwise surface as a crash deep in
    numpy or as a silent NaN result — empty inputs, zero total weight,
    NaN/inf contamination — raises a clear ``ValueError`` here instead.
    (LatencyStore percentile columns and the metrics-registry histograms
    are built on these; a NaN p99 in a load-sweep table is worse than an
    error.)
    """
    values = np.asarray(values, dtype=float)
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape:
        raise ValueError(
            f"values shape {values.shape} != weights shape {weights.shape}"
        )
    if values.size == 0:
        raise ValueError(
            "empty input: weighted statistics need at least one sample"
        )
    if np.any(np.isnan(values)):
        raise ValueError("values contain NaN")
    if not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite (no NaN/inf)")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    if not np.any(weights > 0):
        raise ValueError(
            "total weight is zero: at least one weight must be positive"
        )
    return values, weights


def weighted_mean(values, weights=None) -> float:
    """Length-weighted mean of per-period metric values."""
    values, weights = _as_arrays(values, weights)
    return float(np.sum(weights * values) / np.sum(weights))


def coefficient_of_variation(values, weights=None, overall=None) -> float:
    """Time-weighted coefficient of variation (Equation 1 of the paper).

    ``values`` are per-period metric values, ``weights`` the period lengths
    (t_i).  ``overall`` is the overall metric value x-bar for the whole
    execution; when omitted it is the weighted mean of ``values``.
    """
    values, weights = _as_arrays(values, weights)
    xbar = weighted_mean(values, weights) if overall is None else float(overall)
    if xbar == 0.0:
        raise ValueError("overall metric value is zero; CoV undefined")
    variance = np.sum(weights * (values - xbar) ** 2) / np.sum(weights)
    return float(np.sqrt(variance) / abs(xbar))


def weighted_percentile(values, q, weights=None) -> float:
    """Weighted percentile (q in [0, 100]) using the cumulative-weight CDF.

    The returned value is the smallest sample whose cumulative weight share
    reaches ``q`` percent, matching how the paper marks "90-percentile
    request CPI" over populations of unequally long requests.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    values, weights = _as_arrays(values, weights)
    order = np.argsort(values, kind="stable")
    values = values[order]
    weights = weights[order]
    cdf = np.cumsum(weights) / np.sum(weights)
    idx = int(np.searchsorted(cdf, q / 100.0, side="left"))
    idx = min(idx, values.size - 1)
    return float(values[idx])


def root_mean_square_error(actual, predicted, weights=None) -> float:
    """Length-weighted RMS prediction error (Equation 7 of the paper)."""
    actual = np.asarray(actual, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if actual.shape != predicted.shape:
        raise ValueError("actual and predicted must have the same shape")
    errors, weights = _as_arrays(actual - predicted, weights)
    mse = np.sum(weights * errors**2) / np.sum(weights)
    return float(np.sqrt(mse))


@dataclass(frozen=True)
class Histogram:
    """A probability histogram over fixed-width bins (as in Figure 1)."""

    bin_edges: np.ndarray
    probabilities: np.ndarray

    @property
    def bin_width(self) -> float:
        return float(self.bin_edges[1] - self.bin_edges[0])

    @property
    def bin_centers(self) -> np.ndarray:
        return (self.bin_edges[:-1] + self.bin_edges[1:]) / 2.0

    def mode_bin(self) -> float:
        """Center of the most probable bin."""
        return float(self.bin_centers[int(np.argmax(self.probabilities))])


def histogram(values, lo: float, hi: float, bin_width: float) -> Histogram:
    """Probability histogram with fixed-width bins over ``[lo, hi]``.

    Values outside the range are clamped into the first/last bin so that
    probabilities always sum to one (Figure 1 plots are probability plots).
    """
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty input")
    n_bins = max(1, int(round((hi - lo) / bin_width)))
    edges = lo + bin_width * np.arange(n_bins + 1)
    clamped = np.clip(values, lo, np.nextafter(edges[-1], lo))
    counts, _ = np.histogram(clamped, bins=edges)
    return Histogram(bin_edges=edges, probabilities=counts / values.size)
