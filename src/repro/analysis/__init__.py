"""Statistics helpers and ASCII reporting used by experiments and tests."""

from repro.analysis.stats import (
    Histogram,
    coefficient_of_variation,
    histogram,
    root_mean_square_error,
    weighted_mean,
    weighted_percentile,
)

__all__ = [
    "Histogram",
    "coefficient_of_variation",
    "histogram",
    "root_mean_square_error",
    "weighted_mean",
    "weighted_percentile",
]
