"""ASCII rendering of experiment outputs (tables and simple bar charts)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    rows: Sequence[Dict], columns: Optional[List[str]] = None, title: str = ""
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_metrics(snapshot: Dict, title: str = "metrics") -> str:
    """Render a :class:`repro.obs.metrics.MetricsRegistry` snapshot.

    Counters and gauges become one two-column table; histograms one row
    per distribution with their summary statistics.
    """
    parts = []
    scalar_rows = [
        {"metric": name, "value": value}
        for section in ("counters", "gauges")
        for name, value in snapshot.get(section, {}).items()
    ]
    if scalar_rows:
        parts.append(format_table(scalar_rows, title=title))
    histogram_rows = [
        {"histogram": name, **summary}
        for name, summary in snapshot.get("histograms", {}).items()
    ]
    if histogram_rows:
        parts.append(
            format_table(
                histogram_rows,
                columns=["histogram", "count", "mean", "p50", "p80", "p95", "max"],
                title=f"{title}: distributions",
            )
        )
    if not parts:
        return f"{title}\n(no metrics)"
    return "\n\n".join(parts)


def format_series_plot(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 12,
    title: str = "",
    x_labels: Optional[Sequence] = None,
) -> str:
    """Render one or more numeric series as an ASCII chart.

    Each series gets its own glyph; values are resampled onto ``width``
    columns and scaled into ``height`` rows.  Used to give experiment
    outputs a visual shape check (histograms, CDFs, time series) without
    any plotting dependency.
    """
    if not series:
        return "(empty plot)"
    glyphs = "*o+x#@%&"
    values = {
        name: [float(v) for v in data] for name, data in series.items() if len(data)
    }
    if not values:
        return "(empty plot)"
    lo = min(min(v) for v in values.values())
    hi = max(max(v) for v in values.values())
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, data) in enumerate(values.items()):
        glyph = glyphs[idx % len(glyphs)]
        for col in range(width):
            # Nearest-sample resampling onto the column grid.
            pos = col * (len(data) - 1) / max(width - 1, 1) if len(data) > 1 else 0
            value = data[int(round(pos))]
            row = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{format_value(hi)}".rjust(10))
    lines.extend("          |" + "".join(row) for row in grid)
    lines.append(f"{format_value(lo)}".rjust(10) + " +" + "-" * width)
    if x_labels is not None and len(x_labels) >= 2:
        label_line = (
            " " * 11
            + str(x_labels[0])
            + str(x_labels[-1]).rjust(width - len(str(x_labels[0])))
        )
        lines.append(label_line)
    legend = "   ".join(
        f"{glyphs[i % len(glyphs)]} {name}" for i, name in enumerate(values)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40, title: str = ""
) -> str:
    """Horizontal ASCII bar chart (used for distribution-style figures)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / peak)))
        lines.append(f"{str(label).rjust(label_width)} |{bar} {format_value(value)}")
    return "\n".join(lines)
