"""Distributed request tracking analysis and component placement.

The paper's future work (Section 7): "The online management of request
behavior variations across a distributed server architecture can expose
both local and inter-machine variations ... It may also guide additional
distributed system resource management such as component placement."

Given traces from a multi-machine run (``cluster_machine`` platform with a
``tier_placement``), this module decomposes each request's behavior by
machine and compares candidate component placements by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.stats import coefficient_of_variation
from repro.hardware.platform import MachineConfig


@dataclass(frozen=True)
class MachineShare:
    """One request's execution share on one machine."""

    machine: int
    instructions: float
    cycles: float

    @property
    def cpi(self) -> float:
        if self.instructions <= 0:
            raise ValueError("no instructions executed on this machine")
        return self.cycles / self.instructions


def machine_breakdown(trace, machine: MachineConfig) -> Dict[int, MachineShare]:
    """Split one request's counters by the machine that executed them."""
    shares: Dict[int, List[float]] = {}
    for core, instructions, cycles in zip(
        trace.core, trace.instructions, trace.cycles
    ):
        domain = machine.bus_domain_of(int(core))
        acc = shares.setdefault(domain, [0.0, 0.0])
        acc[0] += float(instructions)
        acc[1] += float(cycles)
    return {
        domain: MachineShare(machine=domain, instructions=ins, cycles=cyc)
        for domain, (ins, cyc) in shares.items()
    }


def per_machine_variation(traces, machine: MachineConfig) -> Dict[int, dict]:
    """Local and population CPI variation per machine.

    For each machine: the inter-request CoV of per-request local CPI
    (requests weighted by local instructions), the mean local CPI, and the
    machine's share of total instructions.  A machine with high local
    variation is where adaptive management (or re-placement) pays off.
    """
    per_machine_values: Dict[int, List[float]] = {}
    per_machine_weights: Dict[int, List[float]] = {}
    total_instructions = 0.0
    for trace in traces:
        total_instructions += trace.total_instructions
        for domain, share in machine_breakdown(trace, machine).items():
            if share.instructions <= 0:
                continue
            per_machine_values.setdefault(domain, []).append(share.cpi)
            per_machine_weights.setdefault(domain, []).append(share.instructions)

    report = {}
    for domain, values in per_machine_values.items():
        weights = per_machine_weights[domain]
        machine_ins = float(np.sum(weights))
        report[domain] = {
            "mean_cpi": float(np.average(values, weights=weights)),
            "cpi_cov": coefficient_of_variation(values, weights),
            "instruction_share": machine_ins / total_instructions,
            "requests_seen": len(values),
        }
    return report


def compare_placements(
    workload_name: str,
    placements: Dict[str, Dict[str, int]],
    machine: MachineConfig,
    num_requests: int = 30,
    concurrency: Optional[int] = None,
    seed: int = 0,
    network_delay_us: float = 50.0,
) -> List[dict]:
    """Simulate candidate tier placements and report their performance.

    ``placements`` maps a label to a tier->machine assignment.  Returns one
    row per placement with mean/p95 request CPI and latency, sorted by mean
    latency — the data a placement controller would act on.
    """
    from repro.kernel.sampling import SamplingPolicy
    from repro.kernel.simulator import ServerSimulator, SimConfig
    from repro.workloads.registry import make_workload

    if concurrency is None:
        concurrency = 2 * machine.num_cores
    rows = []
    for label, placement in placements.items():
        workload = make_workload(workload_name)
        config = SimConfig(
            machine=machine,
            sampling=SamplingPolicy.interrupt(workload.sampling_period_us),
            num_requests=num_requests,
            concurrency=concurrency,
            seed=seed,
            tier_placement=placement,
            network_delay_us=network_delay_us,
        )
        result = ServerSimulator(workload, config).run()
        cpis = result.request_cpis()
        latencies = np.array(
            [
                (t.completion_cycle - t.arrival_cycle)
                / (machine.frequency_ghz * 1000.0)
                for t in result.traces
            ]
        )
        rows.append(
            {
                "placement": label,
                "mean_cpi": float(cpis.mean()),
                "p95_cpi": float(np.percentile(cpis, 95)),
                "mean_latency_us": float(latencies.mean()),
                "p95_latency_us": float(np.percentile(latencies, 95)),
                "throughput_req_per_s": len(result.traces)
                / (result.wall_cycles / (machine.frequency_ghz * 1e9)),
            }
        )
    rows.sort(key=lambda r: r["mean_latency_us"])
    return rows
