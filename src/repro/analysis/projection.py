"""Cross-platform performance projection from request traces.

The paper's future-work section proposes that "fine-grained behavior
variation patterns can help project request resource consumption on a new
hardware platform."  A request's captured timeline separates base
execution (instructions at base CPI) from shared-resource costs (L2 miss
traffic); projecting onto a machine with a different memory latency or
clock only requires re-pricing the miss component per period — which the
variation pattern localizes, unlike a whole-request average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.platform import MachineConfig


@dataclass(frozen=True)
class ProjectionResult:
    """Projected request cost on a target platform."""

    projected_cycles: float
    projected_cpi: float
    projected_cpu_time_us: float
    #: Observed values on the source platform, for comparison.
    observed_cycles: float
    observed_cpi: float


def project_trace(
    trace,
    source: MachineConfig,
    target: MachineConfig,
) -> ProjectionResult:
    """Project one request's cost from ``source`` onto ``target``.

    Per period, the observed cycles decompose into a memory component
    (misses x source miss penalty) and a core component (everything
    else); the target cost re-prices the memory component with the target
    penalty.  Frequency differences affect wall-clock time, not cycles.
    """
    memory_cycles = trace.l2_misses * source.l2_miss_penalty_cycles
    core_cycles = np.maximum(trace.cycles - memory_cycles, 0.0)
    projected = core_cycles + trace.l2_misses * target.l2_miss_penalty_cycles
    total = float(projected.sum())
    instructions = trace.total_instructions
    return ProjectionResult(
        projected_cycles=total,
        projected_cpi=total / instructions,
        projected_cpu_time_us=total / (target.frequency_ghz * 1000.0),
        observed_cycles=trace.total_cycles,
        observed_cpi=trace.overall_cpi(),
    )


def project_population(traces, source: MachineConfig, target: MachineConfig):
    """Project a request population; returns arrays of projected CPIs and
    CPU times (us)."""
    results = [project_trace(t, source, target) for t in traces]
    return (
        np.array([r.projected_cpi for r in results]),
        np.array([r.projected_cpu_time_us for r in results]),
    )
