"""The composable fault taxonomy: per-kind injectors over request specs.

Each injector is a pure function ``(spec, rng, **params) -> RequestSpec``
that perturbs one sampled request with a known behavioral fault and tags
it with ground truth (``metadata["injected_fault"]``).  The three legacy
kinds (``lock_stall``, ``cache_thrash``, ``slowdown``) are extracted from
the original :class:`~repro.workloads.faults.FaultInjectingWorkload`
verbatim — same RNG draw order, same span sizing, same metadata — so the
old wrapper and the new :class:`~repro.faults.schedule.
ScheduledFaultWorkload` produce byte-identical specs for the old
``kind:rate`` syntax.  Five further kinds widen the taxonomy along the
signature axes the online :class:`~repro.online.attribution.
CauseAttributor` discriminates on:

``lock_convoy``
    Repeated spin bursts (a convoy re-forming at each lock hand-off):
    several disjoint low-reference, high-CPI spans instead of the single
    ``lock_stall`` span.
``membw_saturation``
    A long streaming span saturating the memory bus: reference rate far
    above baseline but only a moderate miss *ratio* — the locality dual
    of ``cache_thrash`` (few references, nearly all missing).
``gc_pause``
    A stop-the-world collection: one span of extreme CPI with almost no
    cache traffic, far beyond what lock spinning reaches.
``slow_replica``
    A degraded replica/tier late in the pipeline: uniform CPI inflation
    confined to the tail of the request (the back stages), clean head.
``gray_degradation``
    Gray failure: mild uniform CPI inflation, well below ``slowdown`` —
    the hard, low-contrast end of the attribution problem.

Span sizes are fractions of the request's instruction total with floors
chosen to survive fixed-instruction windowing (the online pipeline's
windows are 10k-100k instructions depending on workload), so every kind
leaves a readable signature in at least one full window.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase, RequestSpec, Stage

__all__ = [
    "FAULT_TAXONOMY",
    "LEGACY_FAULT_KINDS",
    "INJECTORS",
    "fault_position",
    "inject_fault",
]

#: Every fault kind, in taxonomy (and documentation) order.  The first
#: three are the legacy kinds and stay byte-compatible with the original
#: single-kind injector.
FAULT_TAXONOMY = (
    "lock_stall",
    "cache_thrash",
    "slowdown",
    "lock_convoy",
    "membw_saturation",
    "gc_pause",
    "slow_replica",
    "gray_degradation",
)

LEGACY_FAULT_KINDS = ("lock_stall", "cache_thrash", "slowdown")

#: Spinning on a contended lock: dependent chain, almost no data
#: footprint, the lock line bouncing between cores (legacy behavior).
SPIN_BEHAVIOR = PhaseBehavior(
    base_cpi=4.2, l2_refs_per_ins=0.008, l2_miss_ratio=0.6, cache_footprint=0.05
)

#: Pathological locality (e.g. a degenerate hash): every access misses
#: (legacy behavior).
THRASH_BEHAVIOR = PhaseBehavior(
    base_cpi=1.2, l2_refs_per_ins=0.05, l2_miss_ratio=0.85, cache_footprint=1.0
)

#: Streaming through memory at full bandwidth: reference rate well above
#: any application phase, but prefetch-friendly (moderate miss ratio).
MEMBW_BEHAVIOR = PhaseBehavior(
    base_cpi=1.3, l2_refs_per_ins=0.09, l2_miss_ratio=0.4, cache_footprint=1.0
)

#: Stop-the-world pause: extreme CPI, essentially no cache traffic.
GC_BEHAVIOR = PhaseBehavior(
    base_cpi=14.0, l2_refs_per_ins=0.001, l2_miss_ratio=0.5, cache_footprint=0.02
)


def fault_position(rng, total_instructions: float) -> float:
    """The legacy strike offset: uniform in the middle half of the request."""
    return float(rng.uniform(0.25, 0.75)) * total_instructions


def _insert_spans(
    spec: RequestSpec,
    inserts: Sequence[Tuple[float, Phase]],
    kind: str,
) -> RequestSpec:
    """Insert span phases after the phases covering the given offsets.

    ``inserts`` must be ordered by ascending instruction offset.  A span
    lands immediately after the first phase whose cumulative instruction
    count reaches its offset — for a single span this reproduces the
    legacy ``_inject_span`` walk exactly.
    """
    pending = list(inserts)
    consumed = 0
    new_stages: List[Stage] = []
    for stage in spec.stages:
        phases: List[Phase] = []
        for p in stage.phases:
            phases.append(p)
            consumed += p.instructions
            while pending and consumed >= pending[0][0]:
                phases.append(pending.pop(0)[1])
        new_stages.append(Stage(tier=stage.tier, phases=tuple(phases)))
    return RequestSpec(
        request_id=spec.request_id,
        app=spec.app,
        kind=spec.kind,
        stages=tuple(new_stages),
        metadata={**spec.metadata, "injected_fault": kind},
    )


def _scaled_phase(p: Phase, factor: float) -> Phase:
    return Phase(
        name=p.name,
        instructions=p.instructions,
        behavior=PhaseBehavior(
            base_cpi=p.behavior.base_cpi * factor,
            l2_refs_per_ins=p.behavior.l2_refs_per_ins,
            l2_miss_ratio=p.behavior.l2_miss_ratio,
            cache_footprint=p.behavior.cache_footprint,
        ),
        entry_syscall=p.entry_syscall,
        syscall_rate_per_ins=p.syscall_rate_per_ins,
        syscall_pool=p.syscall_pool,
    )


def inject_lock_stall(
    spec: RequestSpec,
    rng,
    *,
    span_fraction: float = 0.08,
    position: Optional[float] = None,
) -> RequestSpec:
    """One spin span mid-request (the Section 4.3 contention hypothesis)."""
    if position is None:
        position = fault_position(rng, spec.total_instructions)
    span = Phase(
        name="fault_lock_stall",
        instructions=max(5_000, int(span_fraction * spec.total_instructions)),
        behavior=SPIN_BEHAVIOR,
    )
    return _insert_spans(spec, [(position, span)], "lock_stall")


def inject_cache_thrash(
    spec: RequestSpec,
    rng,
    *,
    span_fraction: float = 0.08,
    position: Optional[float] = None,
) -> RequestSpec:
    """One span with pathological locality."""
    if position is None:
        position = fault_position(rng, spec.total_instructions)
    span = Phase(
        name="fault_cache_thrash",
        instructions=max(5_000, int(span_fraction * spec.total_instructions)),
        behavior=THRASH_BEHAVIOR,
    )
    return _insert_spans(spec, [(position, span)], "cache_thrash")


def inject_slowdown(
    spec: RequestSpec, rng=None, *, factor: float = 1.6
) -> RequestSpec:
    """Uniformly elevated CPI (e.g. debug logging left enabled)."""
    new_stages = [
        Stage(
            tier=stage.tier,
            phases=tuple(_scaled_phase(p, factor) for p in stage.phases),
        )
        for stage in spec.stages
    ]
    return RequestSpec(
        request_id=spec.request_id,
        app=spec.app,
        kind=spec.kind,
        stages=tuple(new_stages),
        metadata={**spec.metadata, "injected_fault": "slowdown"},
    )


def inject_lock_convoy(
    spec: RequestSpec,
    rng,
    *,
    span_fraction: float = 0.07,
    spans: int = 3,
    gap_fraction: float = 0.22,
) -> RequestSpec:
    """Several disjoint spin bursts: a convoy re-forming at each hand-off.

    One RNG draw places the first burst early; the rest follow at fixed
    gaps, so the signature is >= 2 separated low-reference CPI spikes
    (versus the single ``lock_stall`` span).
    """
    total = spec.total_instructions
    start = float(rng.uniform(0.10, 0.35)) * total
    size = max(6_000, int(span_fraction * total))
    inserts = [
        (
            start + index * gap_fraction * total,
            Phase(
                name=f"fault_lock_convoy_{index}",
                instructions=size,
                behavior=SPIN_BEHAVIOR,
            ),
        )
        for index in range(spans)
    ]
    return _insert_spans(spec, inserts, "lock_convoy")


def inject_membw_saturation(
    spec: RequestSpec,
    rng,
    *,
    span_fraction: float = 0.30,
    position: Optional[float] = None,
) -> RequestSpec:
    """A long full-bandwidth streaming span (a co-runner hogging the bus)."""
    if position is None:
        position = float(rng.uniform(0.20, 0.50)) * spec.total_instructions
    span = Phase(
        name="fault_membw_saturation",
        instructions=max(20_000, int(span_fraction * spec.total_instructions)),
        behavior=MEMBW_BEHAVIOR,
    )
    return _insert_spans(spec, [(position, span)], "membw_saturation")


def inject_gc_pause(
    spec: RequestSpec,
    rng,
    *,
    span_fraction: float = 0.10,
    position: Optional[float] = None,
) -> RequestSpec:
    """A stop-the-world collection pause: extreme CPI, no cache traffic.

    The floor is sized to fill the online pipeline's largest default
    analysis window (100k instructions), so at least one window shows
    the near-undiluted pause CPI — the feature separating a pause from
    mere lock spinning.
    """
    if position is None:
        position = float(rng.uniform(0.30, 0.70)) * spec.total_instructions
    span = Phase(
        name="fault_gc_pause",
        instructions=max(120_000, int(span_fraction * spec.total_instructions)),
        behavior=GC_BEHAVIOR,
    )
    return _insert_spans(spec, [(position, span)], "gc_pause")


def inject_slow_replica(
    spec: RequestSpec, rng=None, *, factor: float = 2.2
) -> RequestSpec:
    """A degraded replica/tier: CPI inflation confined to the tail.

    Multi-stage requests degrade every stage from the one containing the
    instruction midpoint onward (the back tiers of the pipeline); single
    stage requests degrade the phases starting in the back half.  Either
    way the head of the request stays clean — the discriminating shape.
    """
    total = spec.total_instructions
    midpoint = 0.5 * total
    new_stages: List[Stage] = []
    if len(spec.stages) > 1:
        consumed = 0
        degraded = False
        for stage in spec.stages:
            stage_end = consumed + stage.instructions
            if not degraded and stage_end >= midpoint:
                degraded = True
            if degraded:
                phases = tuple(_scaled_phase(p, factor) for p in stage.phases)
            else:
                phases = stage.phases
            new_stages.append(Stage(tier=stage.tier, phases=phases))
            consumed = stage_end
    else:
        stage = spec.stages[0]
        consumed = 0
        phases: List[Phase] = []
        scaled_any = False
        for p in stage.phases:
            if consumed >= midpoint:
                phases.append(_scaled_phase(p, factor))
                scaled_any = True
            else:
                phases.append(p)
            consumed += p.instructions
        if not scaled_any and phases:
            phases[-1] = _scaled_phase(stage.phases[-1], factor)
        new_stages.append(Stage(tier=stage.tier, phases=tuple(phases)))
    return RequestSpec(
        request_id=spec.request_id,
        app=spec.app,
        kind=spec.kind,
        stages=tuple(new_stages),
        metadata={**spec.metadata, "injected_fault": "slow_replica"},
    )


def inject_gray_degradation(
    spec: RequestSpec,
    rng=None,
    *,
    factor: float = 1.9,
    band_fraction: float = 0.17,
    period_fraction: float = 0.34,
) -> RequestSpec:
    """Gray failure: *partial* degradation, intermittent not uniform.

    Phases whose midpoints fall into periodic bands (the first
    ``band_fraction`` of every ``period_fraction`` of the request) run
    degraded; everything between is healthy.  The signature is several
    disjoint moderate elevations with normal cache behavior — unlike a
    ``slowdown`` (uniform), a ``lock_convoy`` (spin counters), or a
    ``slow_replica`` (clean head, elevated tail).
    """
    total = spec.total_instructions
    consumed = 0
    new_stages: List[Stage] = []
    for stage in spec.stages:
        phases: List[Phase] = []
        for p in stage.phases:
            midpoint_fraction = (consumed + p.instructions / 2.0) / total
            in_band = (midpoint_fraction % period_fraction) < band_fraction
            phases.append(_scaled_phase(p, factor) if in_band else p)
            consumed += p.instructions
        new_stages.append(Stage(tier=stage.tier, phases=tuple(phases)))
    return RequestSpec(
        request_id=spec.request_id,
        app=spec.app,
        kind=spec.kind,
        stages=tuple(new_stages),
        metadata={**spec.metadata, "injected_fault": "gray_degradation"},
    )


INJECTORS = {
    "lock_stall": inject_lock_stall,
    "cache_thrash": inject_cache_thrash,
    "slowdown": inject_slowdown,
    "lock_convoy": inject_lock_convoy,
    "membw_saturation": inject_membw_saturation,
    "gc_pause": inject_gc_pause,
    "slow_replica": inject_slow_replica,
    "gray_degradation": inject_gray_degradation,
}

assert tuple(INJECTORS) == FAULT_TAXONOMY


def inject_fault(kind: str, spec: RequestSpec, rng) -> RequestSpec:
    """Apply one taxonomy injector with its default parameters."""
    try:
        injector = INJECTORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {FAULT_TAXONOMY}"
        ) from None
    return injector(spec, rng)
