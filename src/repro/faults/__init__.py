"""Composable fault taxonomy and seeded fault schedules.

The ground-truth half of the detection/attribution loop: a taxonomy of
behavioral fault kinds (:mod:`repro.faults.taxonomy`) and composable,
seeded schedules over them (:mod:`repro.faults.schedule`), parsed from
the ``--faults`` spec grammar.  The analysis half — classifying *why* a
flagged request is anomalous — lives in
:mod:`repro.online.attribution`, scored against the ground truth this
package records.
"""

from repro.faults.schedule import (
    FaultClause,
    FaultSchedule,
    ScheduledFaultWorkload,
    parse_fault_schedule,
)
from repro.faults.taxonomy import (
    FAULT_TAXONOMY,
    INJECTORS,
    LEGACY_FAULT_KINDS,
    inject_fault,
)

__all__ = [
    "FAULT_TAXONOMY",
    "INJECTORS",
    "LEGACY_FAULT_KINDS",
    "FaultClause",
    "FaultSchedule",
    "ScheduledFaultWorkload",
    "inject_fault",
    "parse_fault_schedule",
]
