"""Composable, seeded fault schedules parsed from ``--faults`` specs.

A :class:`FaultSchedule` is an ordered tuple of :class:`FaultClause`\\ s,
each an independent injection process that can be time-windowed (by
request index), targeted (at one request kind or one tenant), and
correlated (bursts of consecutive faulted requests).  The grammar joins
clauses with ``+``::

    spec    := clause ("+" clause)*
    clause  := kind ":" rate option*
    option  := "@" lo "-" hi          # active for request ids in [lo, hi)
             | "%" "kind=" NAME       # only requests of this kind
             | "%" "tenant=" N        # only requests of this tenant
             | "*" N                  # burst: a hit faults the next N-1 too

Examples::

    lock_stall:0.25                      # the legacy syntax, unchanged
    gc_pause:0.2+cache_thrash:0.1@0-40   # two concurrent processes
    membw_saturation:0.15*4              # correlated bursts of four
    slow_replica:0.3%kind=new_order      # targeted at one request kind

:class:`ScheduledFaultWorkload` wraps any workload generator and applies
the schedule per sampled request.  The single-clause legacy specs keep
the exact RNG draw order of the original ``FaultInjectingWorkload`` (one
uniform draw for the fire decision, then the injector's draws), so old
specs produce byte-identical request streams — the property pinned by
``tests/workloads/test_fault_schedules.py``.

Malformed specs raise :class:`ValueError` naming the offending token;
both CLIs wrap this in ``argparse.ArgumentTypeError`` so a bad
``--faults`` exits with a clear usage message.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.taxonomy import FAULT_TAXONOMY, INJECTORS, LEGACY_FAULT_KINDS

__all__ = [
    "FaultClause",
    "FaultSchedule",
    "ScheduledFaultWorkload",
    "parse_fault_schedule",
]

_OPTION_SPLIT = re.compile(r"[@%*][^@%*]*")
_HEAD = re.compile(r"^(?P<head>[^@%*]*)(?P<options>(?:[@%*][^@%*]*)*)$")
_WINDOW = re.compile(r"^@(\d+)-(\d+)$")
_BURST = re.compile(r"^\*(\d+)$")


@dataclass(frozen=True)
class FaultClause:
    """One independent injection process within a schedule."""

    kind: str
    rate: float
    #: Half-open request-index activation window ``[lo, hi)``; ``None``
    #: means always active.
    window: Optional[Tuple[int, int]] = None
    #: Only requests of this application kind are eligible.
    target_kind: Optional[str] = None
    #: Only requests of this tenant are eligible (requires a tenant-tagged
    #: arrival process; untagged traffic never matches).
    target_tenant: Optional[int] = None
    #: A hit also faults the next ``burst - 1`` eligible requests.
    burst: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_TAXONOMY:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_TAXONOMY}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate {self.rate} must be in [0, 1]")
        if self.window is not None:
            lo, hi = self.window
            if lo < 0 or hi <= lo:
                raise ValueError(
                    f"activation window {lo}-{hi} must satisfy 0 <= lo < hi"
                )
        if self.burst < 1:
            raise ValueError(f"burst {self.burst} must be >= 1")

    @property
    def is_legacy(self) -> bool:
        """True when the clause is expressible in the old ``kind:rate``."""
        return (
            self.kind in LEGACY_FAULT_KINDS
            and self.window is None
            and self.target_kind is None
            and self.target_tenant is None
            and self.burst == 1
        )

    def eligible(self, request_id: int, request_kind: str,
                 tenant: Optional[int]) -> bool:
        if self.window is not None:
            lo, hi = self.window
            if not lo <= request_id < hi:
                return False
        if self.target_kind is not None and request_kind != self.target_kind:
            return False
        if self.target_tenant is not None and tenant != self.target_tenant:
            return False
        return True

    def to_spec(self) -> str:
        parts = [f"{self.kind}:{self.rate:g}"]
        if self.window is not None:
            parts.append(f"@{self.window[0]}-{self.window[1]}")
        if self.target_kind is not None:
            parts.append(f"%kind={self.target_kind}")
        if self.target_tenant is not None:
            parts.append(f"%tenant={self.target_tenant}")
        if self.burst != 1:
            parts.append(f"*{self.burst}")
        return "".join(parts)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered composition of fault clauses."""

    clauses: Tuple[FaultClause, ...]

    def __post_init__(self):
        if not self.clauses:
            raise ValueError("a fault schedule needs at least one clause")

    @property
    def is_legacy(self) -> bool:
        """Single legacy clause — the old wrapper's exact semantics."""
        return len(self.clauses) == 1 and self.clauses[0].is_legacy

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(clause.kind for clause in self.clauses)

    def to_spec(self) -> str:
        return "+".join(clause.to_spec() for clause in self.clauses)


def _parse_clause(text: str, where: str) -> FaultClause:
    if not text:
        raise ValueError(f"{where}: empty fault clause")
    match = _HEAD.match(text)
    if match is None:  # pragma: no cover - _HEAD matches any string
        raise ValueError(f"{where}: malformed fault clause {text!r}")
    head = match.group("head")
    kind, sep, rate_text = head.partition(":")
    if not sep:
        raise ValueError(
            f"{where}: clause {text!r} must start with kind:rate "
            "(e.g. lock_stall:0.2)"
        )
    if kind not in FAULT_TAXONOMY:
        raise ValueError(
            f"{where}: unknown fault kind {kind!r}; choose from {FAULT_TAXONOMY}"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise ValueError(
            f"{where}: fault rate {rate_text!r} is not a number"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{where}: fault rate {rate} must be in [0, 1]")

    window: Optional[Tuple[int, int]] = None
    target_kind: Optional[str] = None
    target_tenant: Optional[int] = None
    burst = 1
    for token in _OPTION_SPLIT.findall(match.group("options")):
        if token.startswith("@"):
            if window is not None:
                raise ValueError(
                    f"{where}: duplicate activation window {token!r}"
                )
            window_match = _WINDOW.match(token)
            if window_match is None:
                raise ValueError(
                    f"{where}: bad activation window {token!r}; expected "
                    "@lo-hi (request-index range, e.g. @0-40)"
                )
            lo, hi = int(window_match.group(1)), int(window_match.group(2))
            if hi <= lo:
                raise ValueError(
                    f"{where}: empty activation window {token!r} (lo < hi "
                    "required)"
                )
            window = (lo, hi)
        elif token.startswith("%"):
            key, eq, value = token[1:].partition("=")
            if not eq or not value:
                raise ValueError(
                    f"{where}: bad target {token!r}; expected %kind=NAME "
                    "or %tenant=N"
                )
            if key == "kind":
                if target_kind is not None:
                    raise ValueError(f"{where}: duplicate target {token!r}")
                target_kind = value
            elif key == "tenant":
                if target_tenant is not None:
                    raise ValueError(f"{where}: duplicate target {token!r}")
                try:
                    target_tenant = int(value)
                except ValueError:
                    raise ValueError(
                        f"{where}: tenant {value!r} in {token!r} is not an "
                        "integer"
                    ) from None
            else:
                raise ValueError(
                    f"{where}: unknown target {token!r}; expected %kind=NAME "
                    "or %tenant=N"
                )
        elif token.startswith("*"):
            if burst != 1:
                raise ValueError(f"{where}: duplicate burst option {token!r}")
            burst_match = _BURST.match(token)
            if burst_match is None:
                raise ValueError(
                    f"{where}: bad burst {token!r}; expected *N (e.g. *4)"
                )
            burst = int(burst_match.group(1))
            if burst < 1:
                raise ValueError(f"{where}: burst {token!r} must be >= 1")
        else:  # pragma: no cover - findall only yields @%* prefixes
            raise ValueError(f"{where}: bad option {token!r}")
    return FaultClause(
        kind=kind,
        rate=rate,
        window=window,
        target_kind=target_kind,
        target_tenant=target_tenant,
        burst=burst,
    )


def parse_fault_schedule(text: str) -> FaultSchedule:
    """Parse a ``--faults`` spec string into a :class:`FaultSchedule`."""
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"empty fault spec {text!r}")
    clauses = []
    for clause_text in text.split("+"):
        clause_text = clause_text.strip()
        where = f"fault spec clause {clause_text!r}"
        clauses.append(_parse_clause(clause_text, where))
    return FaultSchedule(clauses=tuple(clauses))


class ScheduledFaultWorkload:
    """Wrap a workload generator, applying a composed fault schedule.

    Ground truth is recorded in ``injected_ids`` (all faulted request
    ids) and ``injected_kinds`` (request id -> primary fault kind), and
    the spec metadata carries ``injected_fault`` (primary kind; also
    ``injected_faults`` when several clauses hit the same request).

    Activation-window transitions are queued as structured events for
    the simulator to drain into the observability stream (``
    fault_window_start`` / ``fault_window_end``), so a trace records
    exactly when each scheduled process switched on and off.
    """

    def __init__(self, inner, schedule: FaultSchedule):
        self.inner = inner
        self.schedule = schedule
        self.injected_ids: Set[int] = set()
        self.injected_kinds: Dict[int, str] = {}
        self._burst_left = [0] * len(schedule.clauses)
        self._window_open = [False] * len(schedule.clauses)
        self._pending_events: List[dict] = []
        self._next_tenant: Optional[int] = None

    @property
    def name(self) -> str:
        return f"{self.inner.name}+" + "+".join(self.schedule.kinds)

    @property
    def sampling_period_us(self) -> float:
        return self.inner.sampling_period_us

    @property
    def window_instructions(self) -> float:
        return self.inner.window_instructions

    # -- simulator hooks -------------------------------------------------

    def note_tenant(self, tenant: Optional[int]) -> None:
        """Record the tenant of the next sampled request (set by the
        simulator's admission path, which knows the arrival's tenant tag
        before the workload draws the request)."""
        self._next_tenant = tenant

    def drain_fault_events(self) -> List[dict]:
        """Pop queued activation-window transition events."""
        if not self._pending_events:
            return []
        events, self._pending_events = self._pending_events, []
        return events

    # -- sampling --------------------------------------------------------

    def _track_window(self, index: int, clause: FaultClause,
                      request_id: int) -> None:
        lo, hi = clause.window
        if not self._window_open[index] and lo <= request_id < hi:
            self._window_open[index] = True
            self._pending_events.append(
                {
                    "kind": "fault_window_start",
                    "clause": index,
                    "fault": clause.kind,
                    "request_id": request_id,
                    "window_lo": lo,
                    "window_hi": hi,
                }
            )
        elif self._window_open[index] and request_id >= hi:
            self._window_open[index] = False
            self._pending_events.append(
                {
                    "kind": "fault_window_end",
                    "clause": index,
                    "fault": clause.kind,
                    "request_id": request_id,
                    "window_lo": lo,
                    "window_hi": hi,
                }
            )

    def sample_request(self, rng, request_id: int):
        tenant = self._next_tenant
        self._next_tenant = None
        spec = self.inner.sample_request(rng, request_id)
        fired: List[FaultClause] = []
        for index, clause in enumerate(self.schedule.clauses):
            if clause.window is not None:
                self._track_window(index, clause, request_id)
            if not clause.eligible(request_id, spec.kind, tenant):
                continue
            if self._burst_left[index] > 0:
                self._burst_left[index] -= 1
                fired.append(clause)
                continue
            # The legacy wrapper drew exactly one uniform per request and
            # fired iff r < p; keep that partition bit-for-bit.
            if rng.random() < clause.rate:
                fired.append(clause)
                if clause.burst > 1:
                    self._burst_left[index] = clause.burst - 1
        if not fired:
            return spec
        for clause in fired:
            spec = INJECTORS[clause.kind](spec, rng)
        primary = fired[0].kind
        self.injected_ids.add(request_id)
        self.injected_kinds[request_id] = primary
        if len(fired) > 1:
            # Injectors each stamped their own kind; restore the primary
            # (first clause in spec order) and keep the full list.
            spec.metadata["injected_fault"] = primary
            spec.metadata["injected_faults"] = [c.kind for c in fired]
        return spec
