"""Parallel + cached pairwise-distance engine.

Every modeling technique in Section 4 is built on pairwise differencing —
DTW with asynchrony penalty, L1 with unequal-length penalty, Levenshtein
over syscall sequences — and the experiments compute O(n^2) of those
distances per application and measure.  This module centralizes that work:

* :class:`DistanceEngine` computes dense matrices, explicit pair lists,
  and one-to-many sweeps, optionally fanning the pair computations out to
  a :class:`~concurrent.futures.ProcessPoolExecutor` in index chunks;
  batchable measures (:class:`~repro.core.kernels.PenaltyDtw`) are
  instead routed through the vectorized one-vs-many kernel in index
  blocks — no per-pair Python dispatch at all;
* :class:`DistanceCache` memoizes distances keyed by *content* (a stable
  hash of both operands plus a caller-supplied distance key), optionally
  persisted as JSON under ``results/.cache/`` so repeated experiments and
  k-sweeps never recompute a pair.

Determinism: each matrix cell is one independent distance evaluation, so
chunked parallel execution performs exactly the same arithmetic as the
serial loop and the assembled matrix is bit-identical to it (given a
deterministic distance callable).  There is no cross-pair reduction whose
order could differ.  The batched kernel path is likewise bit-identical:
per bank row the vectorized DP performs exactly the serial DP's
elementwise operations (see :mod:`repro.core.kernels`), and
``REPRO_DTW_KERNELS=0`` disables the routing to prove it.

Parallel execution uses the ``fork`` start method so non-picklable
distance callables (the experiments use parameter-capturing lambdas) and
large item lists are inherited by the workers instead of serialized; when
``fork`` is unavailable, or the pair count is too small to amortize pool
startup, the engine transparently falls back to the serial path.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import struct
import tempfile
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.profiling import profiled_stage

__all__ = [
    "ContentCache",
    "DistanceCache",
    "DistanceEngine",
    "default_cache_path",
    "sequence_key",
]

#: Below this many uncached pairs a process pool cannot pay for its own
#: startup; the engine stays serial regardless of ``jobs``.
MIN_PARALLEL_PAIRS = 32


def default_cache_path(directory: str = os.path.join("results", ".cache")) -> str:
    """The conventional on-disk location for a persistent distance cache."""
    return os.path.join(directory, "distances.json")


def sequence_key(item) -> str:
    """Stable content hash of one distance operand.

    Supports the operand types the differencing measures consume: numpy
    arrays (metric value sequences), lists/tuples of event-name strings or
    numbers (syscall sequences), and bare strings/scalars.  The digest
    covers dtype and shape, so ``[1, 2]`` as int64 and float64 do not
    collide.
    """
    h = hashlib.blake2b(digest_size=16)
    if isinstance(item, np.ndarray):
        arr = np.ascontiguousarray(item)
        h.update(b"nd|")
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(item, (list, tuple)):
        h.update(b"seq|")
        for token in item:
            if isinstance(token, str):
                h.update(b"s")
                h.update(token.encode())
            elif isinstance(token, (int, float, np.integer, np.floating)):
                h.update(b"f")
                h.update(struct.pack("<d", float(token)))
            else:
                raise TypeError(
                    f"unhashable sequence element type {type(token).__name__!r}"
                )
            h.update(b"\x00")
    elif isinstance(item, str):
        h.update(b"str|")
        h.update(item.encode())
    elif isinstance(item, (int, float, np.integer, np.floating)):
        h.update(b"num|")
        h.update(struct.pack("<d", float(item)))
    else:
        raise TypeError(f"unhashable operand type {type(item).__name__!r}")
    return h.hexdigest()


class ContentCache:
    """Content-keyed memo cache persisted as a JSON document.

    In-memory by default; pass ``path`` to persist.  ``load`` is called by
    the constructor when the file exists; ``save`` writes atomically (temp
    file + rename).  A corrupt or unreadable cache file is a performance,
    not a correctness, artifact: loading it silently starts empty.

    Subclasses pin down the value type via :meth:`_encode` /
    :meth:`_decode` — :class:`DistanceCache` stores floats, the sweep
    orchestrator's :class:`~repro.sweep.cache.ScenarioCache` stores whole
    result documents.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if path is not None and os.path.exists(path):
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def _encode(value):
        return value

    @staticmethod
    def _decode(value):
        return value

    def get(self, key: str):
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: str, value) -> None:
        self._entries[key] = self._encode(value)
        self._dirty = True

    def load(self) -> None:
        try:
            with open(self.path) as fh:
                payload = json.load(fh)
            entries = payload.get("entries", {})
            self._entries.update(
                {str(k): self._decode(v) for k, v in entries.items()}
            )
        except (OSError, ValueError, TypeError):
            pass

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        payload = {"version": 1, "entries": self._entries}
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self.path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self._dirty = False


class DistanceCache(ContentCache):
    """Content-keyed memo cache: (distance key, operand hashes) -> distance.

    The engine invokes ``save`` after each computation that added entries.
    """

    _encode = staticmethod(float)
    _decode = staticmethod(float)

    @staticmethod
    def entry_key(distance_key: str, key_a: str, key_b: str, ordered: bool) -> str:
        """The cache key for one pair; unordered pairs are normalized."""
        if not ordered and key_b < key_a:
            key_a, key_b = key_b, key_a
        return f"{distance_key}|{key_a}|{key_b}"


# Worker-process state, installed by the fork initializer.  With the fork
# start method these travel by address-space inheritance, so lambdas and
# large sequence lists never cross a pickle boundary.
_WORKER_ITEMS_A: Sequence = ()
_WORKER_ITEMS_B: Sequence = ()
_WORKER_DISTANCE: Optional[Callable] = None


def _init_worker(items_a, items_b, distance) -> None:
    global _WORKER_ITEMS_A, _WORKER_ITEMS_B, _WORKER_DISTANCE
    _WORKER_ITEMS_A = items_a
    _WORKER_ITEMS_B = items_b
    _WORKER_DISTANCE = distance


def _compute_chunk(pairs: List[Tuple[int, int]]) -> List[float]:
    return [
        float(_WORKER_DISTANCE(_WORKER_ITEMS_A[i], _WORKER_ITEMS_B[j]))
        for i, j in pairs
    ]


class DistanceEngine:
    """Chunked, multiprocess, memoizing pairwise-distance computer.

    ``jobs`` bounds worker processes (1 = serial); ``cache`` attaches a
    :class:`DistanceCache`.  Caching only activates for calls that supply
    a ``distance_key`` naming the measure *and its parameters* (e.g.
    ``"dtw:p=0.41"``): the operands are hashed by content, but the
    callable cannot be, so an unkeyed call is computed rather than risk a
    collision between differently-parameterized measures.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[DistanceCache] = None,
        chunk_pairs: int = 256,
    ):
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunk_pairs < 1:
            raise ValueError("chunk_pairs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.chunk_pairs = chunk_pairs

    # -- public API ----------------------------------------------------

    def matrix(
        self,
        items: Sequence,
        distance: Callable,
        symmetric: bool = True,
        distance_key: Optional[str] = None,
    ) -> np.ndarray:
        """Dense pairwise distance matrix (zero diagonal).

        Bit-identical to the serial double loop; ``symmetric=True``
        computes the upper triangle and mirrors it.
        """
        n = len(items)
        matrix = np.zeros((n, n))
        if symmetric:
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        else:
            pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        values = self._pair_values(
            items, items, pairs, distance, distance_key, ordered=not symmetric
        )
        for (i, j), d in zip(pairs, values):
            matrix[i, j] = d
            if symmetric:
                matrix[j, i] = d
        return matrix

    def pair_distances(
        self,
        items: Sequence,
        pairs: Sequence[Tuple[int, int]],
        distance: Callable,
        distance_key: Optional[str] = None,
        symmetric: bool = False,
    ) -> np.ndarray:
        """Distances for an explicit ``(i, j)`` pair list over ``items``."""
        values = self._pair_values(
            items, items, list(pairs), distance, distance_key, ordered=not symmetric
        )
        return np.array(values, dtype=float)

    def one_to_many(
        self,
        item,
        others: Sequence,
        distance: Callable,
        distance_key: Optional[str] = None,
    ) -> np.ndarray:
        """``distance(item, other)`` for every element of ``others``.

        The workhorse of online bank matching: one partial pattern against
        every bank signature prefix.
        """
        pairs = [(0, j) for j in range(len(others))]
        values = self._pair_values(
            [item], others, pairs, distance, distance_key, ordered=True
        )
        return np.array(values, dtype=float)

    # -- internals -----------------------------------------------------

    def _pair_values(
        self,
        items_a: Sequence,
        items_b: Sequence,
        pairs: List[Tuple[int, int]],
        distance: Callable,
        distance_key: Optional[str],
        ordered: bool,
    ) -> List[float]:
        with profiled_stage("distance"):
            return self._pair_values_inner(
                items_a, items_b, pairs, distance, distance_key, ordered
            )

    def _pair_values_inner(
        self,
        items_a: Sequence,
        items_b: Sequence,
        pairs: List[Tuple[int, int]],
        distance: Callable,
        distance_key: Optional[str],
        ordered: bool,
    ) -> List[float]:
        if not pairs:
            return []
        use_cache = self.cache is not None and distance_key is not None
        values: List[Optional[float]] = [None] * len(pairs)
        cache_keys: List[Optional[str]] = [None] * len(pairs)
        missing: List[int] = []

        if use_cache:
            keys_a = {i for i, _ in pairs}
            keys_b = {j for _, j in pairs}
            hash_a = {i: sequence_key(items_a[i]) for i in keys_a}
            hash_b = {j: sequence_key(items_b[j]) for j in keys_b}
            for idx, (i, j) in enumerate(pairs):
                key = DistanceCache.entry_key(
                    distance_key, hash_a[i], hash_b[j], ordered
                )
                cache_keys[idx] = key
                cached = self.cache.get(key)
                if cached is None:
                    missing.append(idx)
                else:
                    values[idx] = cached
        else:
            missing = list(range(len(pairs)))

        if missing:
            todo = [pairs[idx] for idx in missing]
            computed = self._compute(items_a, items_b, todo, distance)
            for idx, value in zip(missing, computed):
                values[idx] = value
                if use_cache:
                    self.cache.put(cache_keys[idx], value)
            if use_cache:
                self.cache.save()
        return values  # type: ignore[return-value]

    def _compute(
        self,
        items_a: Sequence,
        items_b: Sequence,
        pairs: List[Tuple[int, int]],
        distance: Callable,
    ) -> List[float]:
        batched = self._compute_batched(items_a, items_b, pairs, distance)
        if batched is not None:
            return batched
        if (
            self.jobs <= 1
            or len(pairs) < MIN_PARALLEL_PAIRS
            or "fork" not in multiprocessing.get_all_start_methods()
        ):
            return [float(distance(items_a[i], items_b[j])) for i, j in pairs]
        return self._compute_parallel(items_a, items_b, pairs, distance)

    def _compute_batched(
        self,
        items_a: Sequence,
        items_b: Sequence,
        pairs: List[Tuple[int, int]],
        distance: Callable,
    ) -> Optional[List[float]]:
        """Block-batched evaluation for batchable kernels, or None.

        Pairs are grouped by their first index; each group becomes one
        vectorized one-vs-many DP over a padded bank of the second
        operands.  Bit-identical to the per-pair loop, and fast enough
        that it is preferred over the process pool whenever available.
        """
        from repro.core.kernels import PenaltyDtw, kernels_enabled

        if not isinstance(distance, PenaltyDtw) or not kernels_enabled():
            return None
        if len(pairs) < 2:
            return None
        groups: Dict[int, List[Tuple[int, int]]] = {}
        for idx, (i, j) in enumerate(pairs):
            groups.setdefault(i, []).append((idx, j))
        values: List[float] = [0.0] * len(pairs)
        for i, entries in groups.items():
            bank = distance.bank([items_b[j] for _, j in entries])
            distances = distance.one_to_many(items_a[i], bank)
            for (idx, _), value in zip(entries, distances):
                values[idx] = float(value)
        return values

    def _compute_parallel(
        self,
        items_a: Sequence,
        items_b: Sequence,
        pairs: List[Tuple[int, int]],
        distance: Callable,
    ) -> List[float]:
        from concurrent.futures import ProcessPoolExecutor

        chunk = max(1, min(self.chunk_pairs, len(pairs) // self.jobs or 1))
        chunks = [pairs[k : k + chunk] for k in range(0, len(pairs), chunk)]
        context = multiprocessing.get_context("fork")
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(chunks)),
                mp_context=context,
                initializer=_init_worker,
                initargs=(items_a, items_b, distance),
            ) as pool:
                futures = [pool.submit(_compute_chunk, c) for c in chunks]
                values: List[float] = []
                # Collect in submission order: assembly order never
                # depends on worker completion order.
                for future in futures:
                    values.extend(future.result())
            return values
        except (OSError, RuntimeError):
            # Pool startup can fail in constrained sandboxes; the serial
            # path is always available and produces identical results.
            return [float(distance(items_a[i], items_b[j])) for i, j in pairs]


#: Shared serial engine for call sites that do not thread one through.
_DEFAULT_ENGINE = DistanceEngine(jobs=1)


def get_default_engine() -> DistanceEngine:
    return _DEFAULT_ENGINE
