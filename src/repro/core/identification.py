"""End-to-end online request identification pipeline (Section 4.4).

:class:`OnlineIdentifier` packages the paper's signature workflow — build
a bank of representative request signatures from completed traces, then
identify incoming requests from their partial executions and predict
request properties — behind one object, so server-management code does not
re-derive windows, penalties, and thresholds every time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distances import unequal_length_penalty
from repro.core.signatures import BankMatch, SignatureBank


@dataclass(frozen=True)
class Identification:
    """Outcome of identifying one partial request execution.

    ``has_evidence`` is False when the partial pattern was empty (nothing
    observed yet): the prediction then falls back to the no-information
    prior — CPU time at the population threshold, not expensive, no label.
    """

    predicted_cpu_time_us: float
    predicted_expensive: bool
    matched_label: Optional[str]
    windows_used: int
    has_evidence: bool = True


class OnlineIdentifier:
    """Identify requests online from partial variation patterns.

    Parameters mirror the paper's choices: the signature metric defaults
    to L2 references per instruction (it reflects inherent behavior rather
    than dynamic contention), differencing defaults to the cheap L1
    distance, and the expensive/cheap threshold defaults to the median CPU
    time of the training population.
    """

    def __init__(
        self,
        metric: str = "l2_refs_per_ins",
        window_instructions: float = 100_000,
        method: str = "variation",
        threshold_us: Optional[float] = None,
        seed: int = 0,
    ):
        if window_instructions <= 0:
            raise ValueError("window_instructions must be positive")
        self.metric = metric
        self.window_instructions = float(window_instructions)
        self.method = method
        self._explicit_threshold = threshold_us
        self.threshold_us: Optional[float] = threshold_us
        self._seed = seed
        self._bank: Optional[SignatureBank] = None

    @property
    def is_fitted(self) -> bool:
        return self._bank is not None and len(self._bank) > 0

    def fit(self, traces: Sequence) -> "OnlineIdentifier":
        """Build the signature bank from completed request traces."""
        if not traces:
            raise ValueError("need at least one training trace")
        patterns = [
            t.series(self.metric, self.window_instructions).values for t in traces
        ]
        cpu_times = np.array([t.cpu_time_us() for t in traces])
        if self._explicit_threshold is None:
            self.threshold_us = float(np.median(cpu_times))
        rng = np.random.default_rng(self._seed)
        if sum(p.size for p in patterns) < 2:
            raise ValueError("training traces too short for signatures")
        penalty = unequal_length_penalty(np.concatenate(patterns), rng)
        bank = SignatureBank(penalty=penalty, method=self.method)
        for pattern, cpu, trace in zip(patterns, cpu_times, traces):
            bank.add(pattern, cpu, label=trace.spec.kind)
        self._bank = bank
        return self

    def pattern_of(self, trace) -> np.ndarray:
        """The signature pattern of a (possibly partial) trace."""
        return trace.series(self.metric, self.window_instructions).values

    def identify(self, partial_pattern) -> Identification:
        """Identify a request from its observed partial pattern.

        An empty partial pattern (no execution observed yet) is valid
        online input, not an error: the result is a defined "no evidence"
        identification predicting the population prior.
        """
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        partial = np.asarray(partial_pattern, dtype=float)
        if partial.size == 0:
            return Identification(
                predicted_cpu_time_us=float(self.threshold_us),
                predicted_expensive=False,
                matched_label=None,
                windows_used=0,
                has_evidence=False,
            )
        match = self._bank.identify(partial)
        return Identification(
            predicted_cpu_time_us=match.cpu_time_us,
            predicted_expensive=match.cpu_time_us > self.threshold_us,
            matched_label=match.label,
            windows_used=int(partial.size),
        )

    def match(self, partial_pattern) -> Optional[BankMatch]:
        """Scored prefix identification (None on an empty pattern).

        This is the streaming pipeline's per-window poll: it needs the
        best/runner-up distances to build a commit-confidence margin, not
        just the winning label.
        """
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        partial = np.asarray(partial_pattern, dtype=float)
        if partial.size == 0:
            return None
        return self._bank.match(partial)

    def nearest_label(self, partial_pattern) -> Optional[str]:
        """Winning signature label only (None on an empty pattern).

        The cheap per-window variant of :meth:`match` for pollers that
        drive commitment off label stability rather than distance margins.
        """
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        if len(partial_pattern) == 0:
            return None
        return self._bank.nearest_label(partial_pattern)

    def prefix_rows(self) -> tuple:
        """Bank rows + penalty for incremental per-window prefix sweeps
        (see :meth:`repro.core.signatures.SignatureBank.prefix_rows`)."""
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        return self._bank.prefix_rows()

    def prefix_sweeper(self) -> tuple:
        """``(sweeper, labels)`` for vectorized incremental prefix sweeps
        over large banks (see
        :meth:`repro.core.signatures.SignatureBank.prefix_sweeper`)."""
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        return self._bank.prefix_sweeper()

    def identify_trace_prefix(self, trace, max_instructions: float) -> Identification:
        """Identify from the first ``max_instructions`` of a trace."""
        pattern = self.pattern_of(trace)
        windows = max(1, int(max_instructions // self.window_instructions))
        return self.identify(pattern[:windows])

    def to_state(self) -> dict:
        """JSON-ready snapshot of the fitted identifier (for checkpoints)."""
        return {
            "metric": self.metric,
            "window_instructions": self.window_instructions,
            "method": self.method,
            "threshold_us": self.threshold_us,
            "explicit_threshold": self._explicit_threshold,
            "seed": self._seed,
            "bank": self._bank.to_state() if self._bank is not None else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineIdentifier":
        identifier = cls(
            metric=state["metric"],
            window_instructions=state["window_instructions"],
            method=state["method"],
            threshold_us=state["explicit_threshold"],
            seed=state["seed"],
        )
        identifier.threshold_us = state["threshold_us"]
        if state["bank"] is not None:
            identifier._bank = SignatureBank.from_state(state["bank"])
        return identifier

    def evaluate(
        self, traces: Sequence, prefix_windows: Sequence[int]
    ) -> List[float]:
        """Misprediction rate of expensive/cheap at each prefix length."""
        if not self.is_fitted:
            raise RuntimeError("identifier not fitted; call fit() first")
        errors = []
        patterns = [self.pattern_of(t) for t in traces]
        actual = [t.cpu_time_us() > self.threshold_us for t in traces]
        for windows in prefix_windows:
            if windows < 1:
                raise ValueError("prefix windows must be positive")
            wrong = sum(
                self.identify(pattern[:windows]).predicted_expensive != truth
                for pattern, truth in zip(patterns, actual)
            )
            errors.append(wrong / len(traces))
        return errors
