"""Request differencing measures (Section 4.1), except dynamic time warping.

* :func:`l1_distance` — element-wise L1 over two fixed-window metric value
  sequences plus a per-element penalty for unequal lengths (Equation 2);
* :func:`average_metric_distance` — the prior-work baseline: the absolute
  difference of whole-request average metric values;
* :func:`levenshtein_distance` — Magpie-style software-event differencing:
  string edit distance between two system-call name sequences;
* :func:`unequal_length_penalty` — the paper's choice of the penalty ``p``:
  the 99-percentile of metric differences between two arbitrary points of
  the application's execution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def l1_distance(x, y, penalty: float) -> float:
    """L1 distance of two metric value sequences (Equation 2).

    The common prefix contributes element-wise absolute differences; each
    surplus element of the longer sequence contributes ``penalty``.
    """
    if penalty < 0:
        raise ValueError("penalty must be non-negative")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    n = min(x.size, y.size)
    if n == 0:
        raise ValueError("empty sequence")
    return float(np.abs(x[:n] - y[:n]).sum() + abs(x.size - y.size) * penalty)


def average_metric_distance(x, y) -> float:
    """Difference of average metric values (the paper's prior signature)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("empty sequence")
    return float(abs(x.mean() - y.mean()))


def levenshtein_distance(a: Sequence, b: Sequence) -> int:
    """Edit distance between two event sequences (insert/delete/substitute).

    Used on request system-call name sequences as the software-metric-only
    baseline from Magpie.  Runs a row-vectorized dynamic program.
    """
    if len(a) == 0:
        return len(b)
    if len(b) == 0:
        return len(a)
    # Map tokens to small ints for fast vector comparison.
    vocab = {}
    for token in a:
        vocab.setdefault(token, len(vocab))
    for token in b:
        vocab.setdefault(token, len(vocab))
    a_ids = np.array([vocab[t] for t in a])
    b_ids = np.array([vocab[t] for t in b])

    n = b_ids.size
    columns = np.arange(1, n + 1)
    previous = np.arange(n + 1)
    for i, a_id in enumerate(a_ids, start=1):
        substitution = previous[:-1] + (b_ids != a_id)
        deletion = previous[1:] + 1
        best = np.minimum(substitution, deletion)
        # Insertion has a within-row dependency:
        #   current[j] = min(best[j], current[j-1] + 1)
        # which unrolls to current[j] = j + min(i, min_{k<=j}(best[k] - k)).
        current = np.empty_like(previous)
        current[0] = i
        current[1:] = columns + np.minimum(
            i, np.minimum.accumulate(best - columns)
        )
        previous = current
    return int(previous[-1])


def unequal_length_penalty(
    sample_values, rng: np.random.Generator, n_pairs: int = 20_000, q: float = 99.0
) -> float:
    """The penalty ``p`` of Equation 2 for one application.

    Drawn as the ``q``-percentile of the distribution of metric differences
    at two arbitrary points of application execution, estimated from the
    pooled per-window metric values of the workload.

    Sampling is over *distinct* point pairs: a draw with ``i == j``
    compares an execution point with itself and contributes an artificial
    zero difference, which on small pools deflates the upper percentile —
    with ``n`` pooled values a fraction ``1/n`` of naive draws is zero,
    pulling the 99th percentile down to roughly the
    ``(0.99 - 1/n) / (1 - 1/n)`` quantile of the true distribution.
    """
    values = np.asarray(sample_values, dtype=float)
    if values.size < 2:
        raise ValueError("need at least two sample values")
    i = rng.integers(values.size, size=n_pairs)
    # j uniform over the *other* indices: offset by 1..n-1 modulo n.
    j = (i + rng.integers(1, values.size, size=n_pairs)) % values.size
    diffs = np.abs(values[i] - values[j])
    return float(np.percentile(diffs, q))
