"""Dynamic time warping with an asynchrony penalty (Section 4.1).

Two pointers walk the two metric value sequences; each warp step is either
*synchronous* (both pointers advance) or *asynchronous* (one advances).
The path distance sums the metric difference at the pointer locations over
all steps (Equation 3), and the DTW distance is the minimum over valid
paths — solvable by dynamic programming in O(m*n).

Plain DTW lets asynchronous steps absorb time shifting at no cost, which
the paper found *under*-estimates request differences badly (Figure 7's
plain-DTW bars).  The paper's enhancement charges each asynchronous step a
penalty ``p`` (the same unequal-length penalty as Equation 2's L1
distance), which restores high classification quality.

The DP row recurrence

    D[i][j] = c[i][j] + min(D[i-1][j-1], D[i-1][j] + p, D[i][j-1] + p)

has a within-row dependency through the third term; it unrolls into a
prefix minimum, making every row a few vector operations:

    A[j]    = min(D_prev[j-1], D_prev[j] + p)        (entry points at row i)
    D[i][j] = C[j] + j*p + min_{k<=j} (A[k] - C[k-1] - k*p)

with C the prefix sums of the current cost row c[i][:].
"""

from __future__ import annotations

import numpy as np


def dtw_distance(x, y, asynchrony_penalty: float = 0.0) -> float:
    """DTW distance between two value sequences (Equation 3).

    ``asynchrony_penalty`` is the per-asynchronous-step charge ``p``; zero
    recovers classic dynamic time warping.
    """
    if asynchrony_penalty < 0:
        raise ValueError("asynchrony_penalty must be non-negative")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("empty sequence")
    p = float(asynchrony_penalty)
    n = y.size
    js = np.arange(1, n)

    # Row 0: only asynchronous steps along y.
    row = np.empty(n)
    row[0] = abs(x[0] - y[0])
    if n > 1:
        row[1:] = row[0] + np.cumsum(np.abs(x[0] - y[1:]) + p)

    for i in range(1, x.size):
        cost = np.abs(x[i] - y)
        new_row = np.empty(n)
        new_row[0] = row[0] + cost[0] + p  # asynchronous step along x
        if n > 1:
            # Entry values A[j] for j = 1..n-1: arrive from the previous row
            # either diagonally (synchronous) or vertically (asynchronous).
            entry = np.minimum(row[:-1], row[1:] + p)
            prefix_cost = np.cumsum(cost)  # C[j] = sum of cost[0..j]
            offsets = np.minimum.accumulate(entry - prefix_cost[:-1] - js * p)
            anchor = new_row[0] - prefix_cost[0]  # A-like term for k = 0
            new_row[1:] = prefix_cost[1:] + js * p + np.minimum(anchor, offsets)
        row = new_row
    return float(row[-1])
