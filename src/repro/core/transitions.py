"""Behavior transition signals from system calls (Section 3.2, Table 2).

During an online training process, each occurrence of a system call is
mapped to the change of a target execution metric over windows before and
after the call.  Per syscall name the trainer maintains the running mean
and standard deviation of the metric change (Welford's online algorithm):
the mean indicates the significance of the subsequent behavior transition,
the standard deviation its uniformity.  The most-correlated names become
sampling triggers for the enhanced syscall-triggered sampler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class _Welford:
    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return float(np.sqrt(self.m2 / (self.count - 1)))


@dataclass(frozen=True)
class TransitionSignal:
    """Learned metric-change statistics for one system call name."""

    name: str
    mean_change: float
    std_change: float
    occurrences: int

    @property
    def direction(self) -> str:
        return "increase" if self.mean_change >= 0 else "decrease"


class TransitionSignalTrainer:
    """Online trainer of syscall-name -> metric-change mappings."""

    def __init__(self, window_us: float = 10.0, metric: str = "cpi"):
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        self.window_us = window_us
        self.metric = metric
        self._stats: Dict[str, _Welford] = {}

    def observe(self, name: str, metric_before: float, metric_after: float) -> None:
        self._stats.setdefault(name, _Welford()).update(metric_after - metric_before)

    def train_on_trace(self, trace, min_occurrence_gap_us: float = 0.0) -> int:
        """Feed every recorded syscall of a request trace; returns count used.

        The before/after windows are measured on the request's *execution*
        timeline (scheduling gaps removed), matching in-kernel bookkeeping
        that reads cumulative per-request counters.
        """
        window_cycles = self.window_us * trace.frequency_ghz * 1000.0
        used = 0
        last_offset = -np.inf
        gap_cycles = min_occurrence_gap_us * trace.frequency_ghz * 1000.0
        for cycle, name in trace.syscall_events:
            offset = trace.exec_offset_of_cycle(cycle)
            if offset - last_offset < gap_cycles:
                continue
            before = trace.counters_in_exec_window(offset - window_cycles, offset)
            after = trace.counters_in_exec_window(offset, offset + window_cycles)
            if before.instructions <= 0 or after.instructions <= 0:
                continue
            if self.metric == "cpi":
                change = (before.cpi(), after.cpi())
            elif self.metric == "l2_miss_per_ins":
                change = (
                    before.l2_misses / before.instructions,
                    after.l2_misses / after.instructions,
                )
            else:
                raise ValueError(f"unsupported training metric {self.metric!r}")
            self.observe(name, change[0], change[1])
            last_offset = offset
            used += 1
        return used

    def signals(self, min_occurrences: int = 5) -> List[TransitionSignal]:
        """All learned signals, strongest mean change first."""
        out = [
            TransitionSignal(
                name=name,
                mean_change=stats.mean,
                std_change=stats.std,
                occurrences=stats.count,
            )
            for name, stats in self._stats.items()
            if stats.count >= min_occurrences
        ]
        out.sort(key=lambda s: abs(s.mean_change), reverse=True)
        return out

    def select_triggers(
        self, top: int = 4, min_occurrences: int = 5
    ) -> Tuple[str, ...]:
        """The syscall names most correlated with behavior transitions."""
        return tuple(s.name for s in self.signals(min_occurrences)[:top])
