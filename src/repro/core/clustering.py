"""k-medoids request classification (Section 4.2).

The mean of a set of request variation patterns is not well defined, so the
paper replaces k-means with k-medoids: each cluster is represented by its
*centroid request* — the member whose summed distance to all other members
is minimal — and requests are iteratively reassigned to the nearest
centroid.  The implementation works on a precomputed distance matrix so any
differencing measure from Section 4.1 plugs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.distengine import DistanceEngine, get_default_engine
from repro.obs.profiling import profiled_stage


def distance_matrix(
    items: Sequence,
    distance: Callable,
    symmetric: bool = True,
    *,
    jobs: int = 1,
    engine: Optional[DistanceEngine] = None,
    distance_key: Optional[str] = None,
) -> np.ndarray:
    """Dense pairwise distance matrix for ``items``.

    Computed through the distance engine: ``jobs > 1`` (or an explicit
    ``engine``) parallelizes the pair evaluations, and an engine with an
    attached cache memoizes them under ``distance_key``.  All paths return
    matrices bit-identical to the serial double loop.
    """
    if engine is None:
        engine = get_default_engine() if jobs == 1 else DistanceEngine(jobs=jobs)
    return engine.matrix(
        items, distance, symmetric=symmetric, distance_key=distance_key
    )


@dataclass(frozen=True)
class KMedoidsResult:
    """Outcome of one k-medoids run."""

    medoids: np.ndarray
    labels: np.ndarray
    iterations: int
    total_cost: float

    def members(self, cluster: int) -> np.ndarray:
        return np.flatnonzero(self.labels == cluster)


def _init_medoids(matrix: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Greedy farthest-point seeding (deterministic given the rng)."""
    n = matrix.shape[0]
    first = int(rng.integers(n))
    medoids = [first]
    min_dist = matrix[first].copy()
    while len(medoids) < k:
        candidate = int(np.argmax(min_dist))
        if min_dist[candidate] == 0.0:
            # Remaining points coincide with existing medoids; fill randomly.
            remaining = np.setdiff1d(np.arange(n), medoids)
            extra = rng.choice(remaining, size=k - len(medoids), replace=False)
            medoids.extend(int(e) for e in extra)
            break
        medoids.append(candidate)
        min_dist = np.minimum(min_dist, matrix[candidate])
    return np.array(medoids, dtype=int)


def k_medoids(
    matrix: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator] = None,
    max_iterations: int = 50,
    initial_medoids: Optional[Sequence[int]] = None,
) -> KMedoidsResult:
    """Cluster by iterative medoid refinement over a distance matrix.

    Seeding is greedy farthest-point from an rng-chosen start by default;
    ``initial_medoids`` pins the seeds explicitly instead, which makes the
    refinement a pure function of (matrix, seeds) — the metamorphic tests
    use this to check permutation equivariance without the seeding's
    positional rng draw getting in the way.
    """
    with profiled_stage("cluster"):
        return _k_medoids(matrix, k, rng, max_iterations, initial_medoids)


def _k_medoids(
    matrix: np.ndarray,
    k: int,
    rng: Optional[np.random.Generator],
    max_iterations: int,
    initial_medoids: Optional[Sequence[int]] = None,
) -> KMedoidsResult:
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if rng is None:
        rng = np.random.default_rng(0)

    if initial_medoids is not None:
        medoids = np.asarray(initial_medoids, dtype=int)
        if medoids.shape != (k,):
            raise ValueError(f"initial_medoids must have length {k}")
        if len(set(medoids.tolist())) != k:
            raise ValueError("initial_medoids must be distinct")
        if medoids.min() < 0 or medoids.max() >= n:
            raise ValueError(f"initial_medoids must index [0, {n})")
    else:
        medoids = _init_medoids(matrix, k, rng)
    labels = np.argmin(matrix[:, medoids], axis=1)
    clusters = np.arange(k)
    for iteration in range(1, max_iterations + 1):
        # The centroid request per cluster: minimum summed distance to
        # members.  One grouped label-sum (matrix @ one-hot membership)
        # replaces the per-cluster np.ix_ submatrix copies:
        # member_sums[i, c] = sum of matrix[i, j] over members j of c.
        membership = (labels == clusters[:, None]).T.astype(float)
        member_sums = matrix @ membership
        candidates = np.where(
            labels[:, None] == clusters, member_sums, np.inf
        )
        counts = np.bincount(labels, minlength=k)
        # Move a medoid only on *strict* improvement.  np.argmin breaks
        # exact ties by position, and exact ties are common (both members
        # of a two-point cluster tie by symmetry), so displacing the
        # current medoid for an equal-cost member would make the result
        # depend on input order.  Keeping the incumbent is position-free:
        # the same rule under any permutation of the inputs.
        best = np.argmin(candidates, axis=0)
        incumbent_sums = candidates[medoids, clusters]
        improved = candidates[best, clusters] < incumbent_sums
        new_medoids = np.where((counts > 0) & improved, best, medoids)
        new_labels = np.argmin(matrix[:, new_medoids], axis=1)
        converged = np.array_equal(new_medoids, medoids) and np.array_equal(
            new_labels, labels
        )
        medoids, labels = new_medoids, new_labels
        if converged:
            break
    total_cost = float(matrix[np.arange(n), medoids[labels]].sum())
    return KMedoidsResult(
        medoids=medoids, labels=labels, iterations=iteration, total_cost=total_cost
    )


def silhouette_score(matrix: np.ndarray, result: KMedoidsResult) -> float:
    """Mean silhouette coefficient of a clustering over a distance matrix.

    For each request: a = mean distance to its own cluster's other members,
    b = smallest mean distance to another cluster; silhouette =
    (b - a) / max(a, b).  Singleton clusters contribute 0 (the standard
    convention).  Higher is better; useful for choosing k when the paper's
    k = 10 is not obviously right for a new workload.
    """
    matrix = np.asarray(matrix, dtype=float)
    n = matrix.shape[0]
    labels = np.asarray(result.labels)
    present = np.unique(labels)
    if present.size < 2:
        raise ValueError("silhouette needs at least two clusters")
    # Grouped label sums: member_sums[i, c] = sum of matrix[i, j] over
    # members j of cluster c (one matmul instead of a per-request loop).
    membership = (labels == present[:, None]).T.astype(float)
    member_sums = matrix @ membership
    counts = membership.sum(axis=0)
    own_column = np.searchsorted(present, labels)
    own_count = counts[own_column]
    # a: mean distance to the own cluster's *other* members (the own row's
    # diagonal term is excluded; it is zero for a distance matrix but is
    # subtracted explicitly so arbitrary square inputs stay correct).
    own_sums = member_sums[np.arange(n), own_column] - np.diagonal(matrix)
    with np.errstate(invalid="ignore"):
        a = own_sums / (own_count - 1)
    # b: smallest mean distance to another cluster.
    other_means = member_sums / counts
    other_means[np.arange(n), own_column] = np.inf
    b = other_means.min(axis=1)
    denominator = np.maximum(a, b)
    scores = np.zeros(n)
    valid = (own_count > 1) & (denominator > 0)  # singletons contribute 0
    scores[valid] = (b[valid] - a[valid]) / denominator[valid]
    return float(scores.mean())


def choose_k(
    matrix: np.ndarray,
    k_range=range(2, 11),
    rng: Optional[np.random.Generator] = None,
) -> KMedoidsResult:
    """Cluster with the k from ``k_range`` maximizing the silhouette."""
    if rng is None:
        rng = np.random.default_rng(0)
    best = None
    best_score = -np.inf
    n = np.asarray(matrix).shape[0]
    for k in k_range:
        if not 2 <= k <= max(2, n - 1):
            continue
        result = k_medoids(matrix, k=k, rng=np.random.default_rng(rng.integers(2**31)))
        score = silhouette_score(matrix, result)
        if score > best_score:
            best_score = score
            best = result
    if best is None:
        raise ValueError("no feasible k in range")
    return best


def divergence_from_centroid(
    properties: np.ndarray, result: KMedoidsResult
) -> float:
    """Mean divergence of a request property from its cluster centroid.

    For request property value ``v_r`` and its centroid's value ``v_c``
    the divergence is ``|v_r - v_c| / v_c`` (Section 4.2); the return value
    averages over all requests, expressed as a fraction (0.2 = 20%).
    """
    properties = np.asarray(properties, dtype=float)
    centroid_values = properties[result.medoids[result.labels]]
    if np.any(centroid_values == 0):
        raise ValueError("centroid property value of zero")
    return float(np.mean(np.abs(properties - centroid_values) / centroid_values))
