"""Incremental per-window group centroids for streaming anomaly detection.

The offline centroid-distance detector (:mod:`repro.core.anomaly`) needs
the full pairwise distance matrix of a finished request group to locate
the member closest to everyone else.  A streaming detector cannot afford
that: it maintains, per semantic group, the *running mean* metric value of
every fixed-instruction window index — an O(windows) summary updated in
O(1) per observation — and scores an in-flight request by its mean
absolute deviation from the group mean over the windows observed so far.

The window-indexed mean handles requests of unequal length naturally:
window ``w`` of the centroid only aggregates requests that ran at least
``w + 1`` windows, exactly like the prefix comparison of the paper's
online signature matching.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class IncrementalCentroid:
    """Running per-window mean pattern of one request group.

    ``max_windows`` bounds memory: window indices at or beyond it are
    ignored (long-tail windows carry little population evidence anyway).
    """

    def __init__(self, max_windows: int = 512):
        if max_windows < 1:
            raise ValueError("max_windows must be positive")
        self.max_windows = max_windows
        self._means: List[float] = []
        self._counts: List[int] = []

    def __len__(self) -> int:
        return len(self._means)

    def observe(self, window_index: int, value: float) -> None:
        """Fold one request's window value into the running mean."""
        if window_index < 0:
            raise ValueError("window_index must be non-negative")
        if window_index >= self.max_windows:
            return
        while len(self._means) <= window_index:
            self._means.append(0.0)
            self._counts.append(0)
        self._counts[window_index] += 1
        count = self._counts[window_index]
        self._means[window_index] += (float(value) - self._means[window_index]) / count

    def mean_at(self, window_index: int) -> Optional[float]:
        """Centroid value at a window index (None without evidence)."""
        if 0 <= window_index < len(self._means) and self._counts[window_index] > 0:
            return self._means[window_index]
        return None

    def count_at(self, window_index: int) -> int:
        if 0 <= window_index < len(self._counts):
            return self._counts[window_index]
        return 0

    def deviation(self, window_index: int, value: float) -> Optional[float]:
        """Absolute deviation of a value from the centroid (None if no
        population evidence exists yet at that window index)."""
        mean = self.mean_at(window_index)
        if mean is None:
            return None
        return abs(float(value) - mean)

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        return {
            "max_windows": self.max_windows,
            "means": list(self._means),
            "counts": list(self._counts),
        }

    @classmethod
    def from_state(cls, state: dict) -> "IncrementalCentroid":
        centroid = cls(max_windows=int(state["max_windows"]))
        centroid._means = [float(v) for v in state["means"]]
        centroid._counts = [int(c) for c in state["counts"]]
        return centroid


class GroupCentroids:
    """Name-keyed :class:`IncrementalCentroid` collection."""

    def __init__(self, max_windows: int = 512):
        self.max_windows = max_windows
        self._groups: Dict[str, IncrementalCentroid] = {}

    def group(self, key: str) -> IncrementalCentroid:
        centroid = self._groups.get(key)
        if centroid is None:
            centroid = self._groups[key] = IncrementalCentroid(self.max_windows)
        return centroid

    @property
    def groups(self) -> Dict[str, IncrementalCentroid]:
        return dict(self._groups)

    def to_state(self) -> dict:
        return {
            "max_windows": self.max_windows,
            "groups": {
                key: self._groups[key].to_state() for key in sorted(self._groups)
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "GroupCentroids":
        centroids = cls(max_windows=int(state["max_windows"]))
        for key, group_state in state["groups"].items():
            centroids._groups[key] = IncrementalCentroid.from_state(group_state)
        return centroids
