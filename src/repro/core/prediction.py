"""Online request-behavior predictors (Section 5.1).

All predictors share one interface: ``observe(value, length)`` feeds one
execution-period sample (metric value plus period length), ``predict()``
returns the estimate for the coming period.  The paper's contribution is
the **variable-aging EWMA** (vaEWMA): counter samples taken at context
switches and system calls have widely varying durations, so each new sample
should age previous history in proportion to its length (Equation 5):

    E_k = alpha^(t_k / t_hat) * E_{k-1} + (1 - alpha^(t_k / t_hat)) * O_k
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.stats import root_mean_square_error


class Predictor:
    """Interface for online per-request metric predictors."""

    def observe(self, value: float, length: float = 1.0) -> None:
        raise NotImplementedError

    def predict(self) -> Optional[float]:
        """Estimate for the next period; None before any observation."""
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


@dataclass
class LastValue(Predictor):
    """Assumes short-term stable behavior: next value = last value."""

    _last: Optional[float] = None

    def observe(self, value, length=1.0):
        self._last = float(value)

    def predict(self):
        return self._last

    def reset(self):
        self._last = None


@dataclass
class RunningAverage(Predictor):
    """Assumes no variation: next value = request average so far.

    The average is length-weighted (cumulative counters divided by
    cumulative period length), matching how a cumulative-counter
    implementation would compute it.
    """

    _weighted_sum: float = 0.0
    _total_length: float = 0.0

    def observe(self, value, length=1.0):
        if length <= 0:
            raise ValueError("length must be positive")
        self._weighted_sum += float(value) * float(length)
        self._total_length += float(length)

    def predict(self):
        if self._total_length == 0:
            return None
        return self._weighted_sum / self._total_length

    def reset(self):
        self._weighted_sum = 0.0
        self._total_length = 0.0


@dataclass
class Ewma(Predictor):
    """Classic exponentially weighted moving average (Equation 4)."""

    alpha: float = 0.6
    _estimate: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")

    def observe(self, value, length=1.0):
        value = float(value)
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate = self.alpha * self._estimate + (1 - self.alpha) * value

    def predict(self):
        return self._estimate

    def reset(self):
        self._estimate = None


@dataclass
class VaEwma(Predictor):
    """Variable-aging EWMA (Equation 5).

    A sample of length ``t`` ages prior history by ``alpha ** (t/t_hat)``,
    so that long observation periods displace more history than short ones.
    With all periods equal to ``unit_length`` this reduces exactly to
    :class:`Ewma`.
    """

    alpha: float = 0.6
    unit_length: float = 1.0
    _estimate: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        if self.unit_length <= 0:
            raise ValueError("unit_length must be positive")

    def observe(self, value, length=1.0):
        if length <= 0:
            raise ValueError("length must be positive")
        value = float(value)
        aging = self.alpha ** (float(length) / self.unit_length)
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate = aging * self._estimate + (1 - aging) * value

    def predict(self):
        return self._estimate

    def reset(self):
        self._estimate = None


def evaluate_predictor(
    predictor: Predictor, values, lengths=None, warmup: int = 1
) -> float:
    """Length-weighted RMS one-step-ahead prediction error (Equation 7).

    Feeds the sample sequence through ``predictor``; at each step the
    estimate produced from samples ``0..k-1`` is scored against sample
    ``k``.  The first ``warmup`` samples are used for priming only.
    """
    values = np.asarray(values, dtype=float)
    if lengths is None:
        lengths = np.ones_like(values)
    else:
        lengths = np.asarray(lengths, dtype=float)
    if values.shape != lengths.shape:
        raise ValueError("values and lengths must have the same shape")
    if values.size <= warmup:
        raise ValueError("not enough samples to evaluate")

    predictor.reset()
    predictions = []
    for k, (value, length) in enumerate(zip(values, lengths)):
        if k >= warmup:
            predictions.append(predictor.predict())
        predictor.observe(value, length)
    predictions = np.asarray(predictions, dtype=float)
    return root_mean_square_error(
        values[warmup:], predictions, weights=lengths[warmup:]
    )
