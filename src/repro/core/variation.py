"""Captured request behavior variation (Section 3.1, Figure 3).

The paper quantifies captured variations with a length-weighted coefficient
of variation (Equation 1) over execution periods.  Two views:

* **inter-request** variation assumes each request exhibits one uniform
  metric value over its execution (a whole request is a unit period);
* **intra-request-inclusive** ("captured") variation uses every sampled
  execution period, exposing the fluctuations within requests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.stats import coefficient_of_variation


def _global_overall(traces: Sequence, metric: str) -> float:
    num = 0.0
    den = 0.0
    for trace in traces:
        n, d = trace._metric_sums(metric)
        num += n
        den += d
    if den <= 0:
        raise ValueError("zero metric denominator across traces")
    return num / den


def inter_request_variation(traces: Sequence, metric: str) -> float:
    """CoV across requests, each request one uniform period (Equation 1)."""
    if not traces:
        raise ValueError("no traces")
    values = np.array([t.overall(metric) for t in traces])
    weights = np.array([t.total_instructions for t in traces])
    return coefficient_of_variation(
        values, weights, overall=_global_overall(traces, metric)
    )


def captured_variation(traces: Sequence, metric: str) -> float:
    """CoV over all sampled periods, including intra-request fluctuation."""
    if not traces:
        raise ValueError("no traces")
    values_parts = []
    weights_parts = []
    for trace in traces:
        values, weights = trace.period_values(metric)
        values_parts.append(values)
        weights_parts.append(weights)
    values = np.concatenate(values_parts)
    weights = np.concatenate(weights_parts)
    return coefficient_of_variation(
        values, weights, overall=_global_overall(traces, metric)
    )


def variation_report(traces: Sequence, metrics: Iterable[str]) -> dict:
    """Inter vs. captured CoV for each metric (one Figure 3 panel group)."""
    report = {}
    for metric in metrics:
        report[metric] = {
            "inter_request": inter_request_variation(traces, metric),
            "with_intra_request": captured_variation(traces, metric),
        }
    return report
