"""Transparent request-stage identification from variation patterns.

The paper's related-work discussion (Section 6) points out that staged
server architectures (SEDA, cohort scheduling, Capriccio) require manual
programmer annotation of request stages, whereas "our characterization of
request behavior variations may transparently identify potential stage
transitions at the OS and annotate each stage with its unique hardware
execution characteristics."  This module implements that suggestion: a
change-point detector over a request's metric variation pattern, plus
per-stage hardware annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class DetectedStage:
    """One detected stage with its hardware execution characteristics."""

    start_window: int
    end_window: int  # exclusive
    mean_cpi: float
    mean_l2_refs_per_ins: float
    mean_l2_miss_ratio: float

    @property
    def length_windows(self) -> int:
        return self.end_window - self.start_window


def detect_change_points(
    values,
    min_segment: int = 2,
    threshold: float = 1.5,
) -> List[int]:
    """Change points in a metric sequence via a two-window mean test.

    A window boundary is a change point when the absolute difference of
    the means over the ``min_segment`` windows before and after exceeds
    ``threshold`` times the local standard deviation.  Greedy
    left-to-right with a ``min_segment`` refractory gap — cheap enough
    for online use, matching the OS-level cost constraints of the paper.
    """
    if min_segment < 1:
        raise ValueError("min_segment must be at least 1")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    values = np.asarray(values, dtype=float)
    n = values.size
    if n < 2 * min_segment:
        return []
    global_std = float(values.std())
    if global_std == 0.0:
        return []

    change_points = []
    last_cut = 0
    for k in range(min_segment, n - min_segment + 1):
        if k - last_cut < min_segment:
            continue
        before = values[max(last_cut, k - min_segment) : k]
        after = values[k : k + min_segment]
        local_std = max(float(np.concatenate([before, after]).std()), 1e-12)
        scale = min(local_std, global_std)
        if abs(after.mean() - before.mean()) > threshold * max(scale, 0.05 * abs(values.mean())):
            change_points.append(k)
            last_cut = k
    return change_points


def identify_stages(
    trace,
    window_instructions: float,
    min_segment: int = 2,
    threshold: float = 1.5,
    metric: str = "cpi",
) -> List[DetectedStage]:
    """Detect stages in a request trace and annotate each with its
    hardware execution characteristics."""
    win = trace.window_counters(window_instructions)
    ins = win["instructions"]
    keep = ins > 0
    safe_ins = np.where(keep, ins, 1.0)
    cpi = win["cycles"] / safe_ins
    refs = win["l2_refs"] / safe_ins
    miss_ratio = np.where(
        win["l2_refs"] > 0, win["l2_misses"] / np.maximum(win["l2_refs"], 1e-12), 0.0
    )
    series = {"cpi": cpi, "l2_refs_per_ins": refs, "l2_miss_ratio": miss_ratio}
    if metric not in series:
        raise ValueError(f"unknown metric {metric!r}")

    cuts = detect_change_points(series[metric], min_segment, threshold)
    boundaries = [0] + cuts + [int(cpi.size)]
    stages = []
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        if end <= start:
            continue
        weights = safe_ins[start:end]
        total = weights.sum()
        stages.append(
            DetectedStage(
                start_window=start,
                end_window=end,
                mean_cpi=float((cpi[start:end] * weights).sum() / total),
                mean_l2_refs_per_ins=float(
                    (refs[start:end] * weights).sum() / total
                ),
                mean_l2_miss_ratio=float(
                    (miss_ratio[start:end] * weights).sum() / total
                ),
            )
        )
    return stages


def stage_agreement(
    detected: List[DetectedStage],
    true_boundaries_windows,
    tolerance_windows: int = 1,
) -> Tuple[float, float]:
    """(recall, precision) of detected stage boundaries vs. ground truth.

    A true boundary counts as found when a detected boundary lies within
    ``tolerance_windows``.  Useful for evaluating the detector against the
    workload model's known phase structure.
    """
    detected_cuts = [s.start_window for s in detected[1:]]
    true_cuts = list(true_boundaries_windows)
    if not true_cuts:
        return (1.0, 1.0 if not detected_cuts else 0.0)
    found = sum(
        1
        for t in true_cuts
        if any(abs(t - d) <= tolerance_windows for d in detected_cuts)
    )
    recall = found / len(true_cuts)
    if not detected_cuts:
        return (recall, 1.0)
    precise = sum(
        1
        for d in detected_cuts
        if any(abs(t - d) <= tolerance_windows for t in true_cuts)
    )
    return (recall, precise / len(detected_cuts))
