"""Pruned + batched distance kernels beneath the DTW consumers.

Every differencing decision in the repro — Figure 7 classification,
Figure 8/9 anomaly scans, signature-bank matching, the online pipeline's
per-window identification — bottoms out in the penalty-DTW dynamic
program of :mod:`repro.core.dtw`.  This module is the exact-pruning layer
between those consumers and the O(m*n) DP:

* **admissible lower bounds** (:func:`lb_penalty_dtw`,
  :func:`lb_one_to_many`): the first/last-element bound plus the
  length-gap bound ``|m - n| * p``, provably <= the true distance, so a
  nearest-neighbor decision can discard most candidates without running
  a DP at all;
* **early-abandoning DP** (:func:`dtw_distance_pruned`): the row
  recurrence of :func:`repro.core.dtw.dtw_distance` with an exact abandon
  check — every warp path crosses every row, and DP values along a path
  never decrease, so once a row's minimum exceeds a best-so-far cutoff
  the final distance provably does too;
* **batched one-vs-many DP** (:func:`dtw_one_to_many`): the same row
  recurrence run vectorized across a zero-padded bank of sequences
  (:class:`PaddedBank`), turning ``B`` interpreter-dispatched DPs into
  one sweep of 2-D numpy rows;
* **pruned nearest neighbor** (:func:`argmin_distance`): candidates
  ordered by lower bound, batched DPs with the best-so-far distance
  threaded through as the abandon cutoff;
* the shared **pad-and-mask bank machinery** also backs the cheap online
  L1 prefix matching (:func:`l1_prefix_distances`,
  :class:`PrefixL1Sweeper`) used by
  :class:`~repro.core.signatures.SignatureBank` and the streaming
  pipeline.

Exact-pruning semantics
-----------------------

All pruned/batched paths return results *bit-identical* to the serial
reference DP wherever they return a distance at all: the batched
recurrence performs exactly the same IEEE-754 operations per bank row as
the serial one (``cumsum`` and ``minimum.accumulate`` are sequential
along the last axis), and abandonment uses strict ``>`` against the
cutoff, so a distance equal to the cutoff is always computed exactly.

One floating-point subtlety: the unrolled prefix-min recurrence shared
with :mod:`repro.core.dtw` computes each cell as ``(entry - prefix) +
prefix'``, and that cancellation can *round the computed value below the
mathematical one* — so the textbook invariant "row minimum <= final
distance" holds exactly in real arithmetic but only up to rounding
drift for the computed values.  Every pruning decision therefore
compares against ``cutoff + margin`` where :func:`_drift_margin` is a
conservative upper bound on that drift (a few hundred ulps of the
largest DP intermediate — astronomically below any meaningful distance,
so pruning power is unaffected).  An abandoned candidate reports ``inf``
— by construction its *computed* distance exceeds the cutoff — so
nearest-neighbor argmins (including first-minimum tie-breaking) and the
returned best distances are identical to a naive full scan.

``REPRO_DTW_KERNELS=0`` in the environment disables the batched routing
inside :class:`~repro.core.distengine.DistanceEngine` (per-pair serial
calls instead); results are identical either way — the toggle exists so
CI can assert exactly that.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.dtw import dtw_distance

__all__ = [
    "PaddedBank",
    "PenaltyDtw",
    "PrefixL1Sweeper",
    "argmin_distance",
    "dtw_distance_pruned",
    "dtw_one_to_many",
    "kernels_enabled",
    "l1_prefix_distances",
    "lb_one_to_many",
    "lb_penalty_dtw",
]

#: Environment variable gating the batched kernel routing (default on).
KERNELS_ENV = "REPRO_DTW_KERNELS"


def kernels_enabled() -> bool:
    """Whether batched kernel routing is enabled (``REPRO_DTW_KERNELS``).

    Read at call time so tests and CI determinism checks can flip it
    per-invocation; only the *routing* changes, never the results.
    """
    return os.environ.get(KERNELS_ENV, "1") != "0"


class PaddedBank:
    """A bank of variable-length sequences as one zero-padded 2-D matrix.

    ``matrix[b, :lengths[b]]`` holds sequence ``b``; padding columns are
    zero and every consumer masks them (or, for the DTW DP, reads its
    answer at column ``lengths[b] - 1``, which padding cannot reach —
    column ``j`` of the recurrence depends only on columns ``<= j``).
    """

    __slots__ = ("matrix", "lengths", "columns")

    def __init__(self, sequences: Sequence):
        arrays = [np.asarray(s, dtype=float) for s in sequences]
        if not arrays:
            raise ValueError("empty bank")
        if any(a.ndim != 1 for a in arrays):
            raise ValueError("bank sequences must be one-dimensional")
        if any(a.size == 0 for a in arrays):
            raise ValueError("empty sequence in bank")
        self.lengths = np.array([a.size for a in arrays], dtype=np.intp)
        self.matrix = np.zeros((len(arrays), int(self.lengths.max())))
        for row, values in zip(self.matrix, arrays):
            row[: values.size] = values
        self.columns = np.arange(self.matrix.shape[1])

    def __len__(self) -> int:
        return self.matrix.shape[0]

    def subset(self, indices) -> "PaddedBank":
        """A new bank holding ``self``'s rows at ``indices`` (copies)."""
        bank = object.__new__(PaddedBank)
        bank.matrix = self.matrix[indices]
        bank.lengths = self.lengths[indices]
        bank.columns = self.columns
        return bank


def _as_bank(bank_or_sequences) -> PaddedBank:
    if isinstance(bank_or_sequences, PaddedBank):
        return bank_or_sequences
    return PaddedBank(bank_or_sequences)


# -- admissible lower bounds ------------------------------------------------


def lb_penalty_dtw(x, y, asynchrony_penalty: float = 0.0) -> float:
    """Admissible lower bound on :func:`repro.core.dtw.dtw_distance`.

    Two provably-disjoint contributions to the true distance are bounded
    separately and summed:

    * **first/last element**: every warp path starts at cell ``(0, 0)``
      and ends at ``(m-1, n-1)``, paying the metric difference at each
      visited cell, so the path cost is at least ``|x[0] - y[0]|`` plus —
      when the path has more than one cell — ``|x[-1] - y[-1]|``;
    * **length gap**: with ``a`` asynchronous steps advancing only ``x``
      and ``b`` advancing only ``y``, ``a - b = m - n`` along any path,
      so at least ``|m - n|`` asynchronous steps are unavoidable and the
      penalty charge is at least ``|m - n| * p``.
    """
    if asynchrony_penalty < 0:
        raise ValueError("asynchrony_penalty must be non-negative")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("empty sequence")
    bound = abs(float(x[0]) - float(y[0]))
    if x.size > 1 or y.size > 1:
        bound += abs(float(x[-1]) - float(y[-1]))
    return bound + abs(x.size - y.size) * float(asynchrony_penalty)


def lb_one_to_many(query, bank, asynchrony_penalty: float = 0.0) -> np.ndarray:
    """:func:`lb_penalty_dtw` of ``query`` against every bank row, vectorized."""
    if asynchrony_penalty < 0:
        raise ValueError("asynchrony_penalty must be non-negative")
    bank = _as_bank(bank)
    x = np.asarray(query, dtype=float)
    if x.size == 0:
        raise ValueError("empty sequence")
    lengths = bank.lengths
    first = np.abs(x[0] - bank.matrix[:, 0])
    last = np.abs(x[-1] - bank.matrix[np.arange(len(bank)), lengths - 1])
    # The last-element term only applies when the warp path has > 1 cell.
    multi = (lengths > 1) | (x.size > 1)
    return (
        first
        + np.where(multi, last, 0.0)
        + np.abs(x.size - lengths) * float(asynchrony_penalty)
    )


# -- early-abandoning serial DP ---------------------------------------------


def _drift_margin(m: int, n: int, max_abs: float, p: float) -> float:
    """Upper bound on downward rounding drift of the unrolled DP.

    The prefix-min unrolling computes cells as ``(entry - prefix) +
    prefix'``; each such cancellation can lose up to ~eps times the
    magnitude of the intermediates, and the losses accumulate additively
    (the recurrence applies only ``+``/``-``/``min``, never scaling).
    Every intermediate is bounded by the worst full path cost
    ``(m + n) * (max pair difference + p)``, and at most ``m`` row
    transitions each contribute a handful of roundings, so ``32 * eps *
    m * scale`` is a generous bound.  Pruning decisions compare against
    ``cutoff + margin`` so a candidate whose *computed* distance is
    ``<= cutoff`` is never abandoned.
    """
    scale = (m + n) * (2.0 * max_abs + p)
    return 32.0 * np.finfo(float).eps * m * scale


def dtw_distance_pruned(
    x, y, asynchrony_penalty: float = 0.0, cutoff: float = np.inf
) -> float:
    """Penalty-DTW with exact early abandoning against ``cutoff``.

    Identical arithmetic to :func:`repro.core.dtw.dtw_distance`; after
    each DP row, if the row minimum exceeds ``cutoff`` (plus the
    :func:`_drift_margin` rounding slack) the computation stops and
    returns ``inf``.  Exactness: every warp path visits every row, and
    DP values along a path are non-decreasing (costs and penalties are
    non-negative), so ``min(row) <= final distance`` up to rounding
    drift — an abandoned pair's computed distance is guaranteed to
    exceed ``cutoff``.  Whenever the computed distance is ``<= cutoff``
    the returned value is bit-identical to ``dtw_distance``.
    """
    if asynchrony_penalty < 0:
        raise ValueError("asynchrony_penalty must be non-negative")
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or y.size == 0:
        raise ValueError("empty sequence")
    p = float(asynchrony_penalty)
    n = y.size
    js = np.arange(1, n)
    threshold = cutoff
    if np.isfinite(cutoff):
        max_abs = max(float(np.abs(x).max()), float(np.abs(y).max()))
        threshold = cutoff + _drift_margin(x.size, n, max_abs, p)

    row = np.empty(n)
    row[0] = abs(x[0] - y[0])
    if n > 1:
        row[1:] = row[0] + np.cumsum(np.abs(x[0] - y[1:]) + p)

    for i in range(1, x.size):
        if row.min() > threshold:
            return float("inf")
        cost = np.abs(x[i] - y)
        new_row = np.empty(n)
        new_row[0] = row[0] + cost[0] + p
        if n > 1:
            entry = np.minimum(row[:-1], row[1:] + p)
            prefix_cost = np.cumsum(cost)
            offsets = np.minimum.accumulate(entry - prefix_cost[:-1] - js * p)
            anchor = new_row[0] - prefix_cost[0]
            new_row[1:] = prefix_cost[1:] + js * p + np.minimum(anchor, offsets)
        row = new_row
    distance = float(row[-1])
    return distance if distance <= cutoff else float("inf")


# -- batched one-vs-many DP -------------------------------------------------


def dtw_one_to_many(
    query, bank, asynchrony_penalty: float = 0.0, cutoff: float = np.inf
) -> np.ndarray:
    """Penalty-DTW of ``query`` against every bank row in one batched DP.

    The row recurrence of :func:`repro.core.dtw.dtw_distance` runs over a
    ``(B, L)`` matrix — one vectorized pass per query element instead of
    ``B`` interpreter-dispatched DPs.  Per bank row the operations are
    elementwise identical to the serial DP, so returned distances are
    bit-identical to ``dtw_distance(query, bank[b])``.

    With a finite ``cutoff``, rows whose running DP minimum exceeds it
    are abandoned exactly (reported as ``inf``); once fewer than half the
    rows survive, the batch is compacted to the survivors.
    """
    if asynchrony_penalty < 0:
        raise ValueError("asynchrony_penalty must be non-negative")
    bank = _as_bank(bank)
    x = np.asarray(query, dtype=float)
    if x.size == 0:
        raise ValueError("empty sequence")
    p = float(asynchrony_penalty)
    matrix = bank.matrix
    lengths = bank.lengths
    n = matrix.shape[1]
    js = np.arange(1, n)
    jp = js * p
    check = np.isfinite(cutoff)
    threshold = cutoff
    if check:
        max_abs = max(
            float(np.abs(x).max()), float(np.abs(matrix).max())
        )
        threshold = cutoff + _drift_margin(x.size, n, max_abs, p)

    out = np.full(len(bank), np.inf)
    active = np.arange(len(bank))

    # Row 0: only asynchronous steps along the bank sequences.
    cost = np.abs(x[0] - matrix)
    row = np.empty_like(cost)
    row[:, 0] = cost[:, 0]
    if n > 1:
        row[:, 1:] = row[:, :1] + np.cumsum(cost[:, 1:] + p, axis=1)

    for i in range(1, x.size):
        if check:
            # Conservative exact abandon: the minimum over *all* columns
            # (padding included) is <= the minimum over valid columns,
            # which is <= the final distance up to rounding drift; the
            # threshold slack keeps every candidate whose *computed*
            # distance could still land <= cutoff.
            alive = row.min(axis=1) <= threshold
            if not alive.any():
                return out
            if alive.sum() * 2 <= active.size:
                active = active[alive]
                row = row[alive]
                matrix = matrix[alive]
        cost = np.abs(x[i] - matrix)
        new_row = np.empty_like(cost)
        new_row[:, 0] = row[:, 0] + cost[:, 0] + p
        if n > 1:
            entry = np.minimum(row[:, :-1], row[:, 1:] + p)
            prefix_cost = np.cumsum(cost, axis=1)
            offsets = np.minimum.accumulate(
                entry - prefix_cost[:, :-1] - jp, axis=1
            )
            anchor = new_row[:, 0] - prefix_cost[:, 0]
            new_row[:, 1:] = (
                prefix_cost[:, 1:] + jp + np.minimum(anchor[:, None], offsets)
            )
        row = new_row

    finals = row[np.arange(active.size), lengths[active] - 1]
    if check:
        keep = finals <= cutoff
        out[active[keep]] = finals[keep]
    else:
        out[active] = finals
    return out


# -- pruned nearest neighbor ------------------------------------------------


def argmin_distance(
    query,
    bank,
    asynchrony_penalty: float = 0.0,
    block_size: int = 32,
) -> Tuple[int, float]:
    """Nearest bank row to ``query`` under penalty-DTW, with exact pruning.

    Candidates are ordered by :func:`lb_one_to_many` (ascending, stable);
    blocks run through the batched DP with the best-so-far distance as
    the abandon cutoff, and once a block's smallest lower bound exceeds
    the best-so-far (plus the :func:`_drift_margin` rounding slack) the
    remaining candidates are discarded without any DP work.  All pruning
    is strict-``>`` against the slackened threshold, so the returned
    ``(index, distance)`` — including first-minimum tie-breaking — is
    identical to a naive full scan with ``np.argmin``.
    """
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    bank = _as_bank(bank)
    query = np.asarray(query, dtype=float)
    bounds = lb_one_to_many(query, bank, asynchrony_penalty)
    order = np.argsort(bounds, kind="stable")
    max_abs = max(float(np.abs(query).max()), float(np.abs(bank.matrix).max()))
    margin = _drift_margin(
        query.size, bank.matrix.shape[1], max_abs, float(asynchrony_penalty)
    )
    best = np.inf
    best_index = -1
    for start in range(0, order.size, block_size):
        block = order[start : start + block_size]
        if bounds[block[0]] > best + margin:
            break  # ascending bounds: everything after is pruned too
        block = block[bounds[block] <= best + margin]
        if block.size == 0:
            continue
        distances = dtw_one_to_many(
            query, bank.subset(block), asynchrony_penalty, cutoff=best
        )
        for index, distance in zip(block, distances):
            if distance < best or (distance == best and index < best_index):
                best = float(distance)
                best_index = int(index)
    return best_index, best


# -- the batchable measure object -------------------------------------------


class PenaltyDtw:
    """Penalty-DTW as a batchable distance-kernel object.

    A drop-in distance callable (``kernel(x, y)`` equals
    :func:`repro.core.dtw.dtw_distance`) that additionally exposes the
    batched and pruned entry points.  The
    :class:`~repro.core.distengine.DistanceEngine` recognizes instances
    and routes matrix / pair-list / one-to-many computations through
    :meth:`one_to_many` in index blocks instead of per-pair Python calls
    (bit-identical results; see module docstring).
    """

    __slots__ = ("penalty",)

    def __init__(self, asynchrony_penalty: float = 0.0):
        if asynchrony_penalty < 0:
            raise ValueError("asynchrony_penalty must be non-negative")
        self.penalty = float(asynchrony_penalty)

    def __call__(self, x, y) -> float:
        return dtw_distance(x, y, asynchrony_penalty=self.penalty)

    def __repr__(self) -> str:
        return f"PenaltyDtw({self.penalty!r})"

    @property
    def distance_key(self) -> str:
        """Cache key naming the measure and its parameter."""
        return f"dtw:p={self.penalty!r}"

    def bank(self, sequences) -> PaddedBank:
        return _as_bank(sequences)

    def lower_bounds(self, query, bank) -> np.ndarray:
        return lb_one_to_many(query, bank, self.penalty)

    def one_to_many(self, query, bank, cutoff: float = np.inf) -> np.ndarray:
        return dtw_one_to_many(query, bank, self.penalty, cutoff=cutoff)

    def argmin(self, query, bank, block_size: int = 32) -> Tuple[int, float]:
        return argmin_distance(query, bank, self.penalty, block_size=block_size)


# -- L1 prefix matching on the shared bank machinery ------------------------


def l1_prefix_distances(bank: PaddedBank, partial, penalty: float) -> np.ndarray:
    """L1 prefix distance of ``partial`` against every bank row.

    One vectorized pass equivalent to ``l1_distance(partial,
    row[:partial.size], penalty)`` per row: the common prefix contributes
    element-wise absolute differences and each element of ``partial``
    beyond a row's end contributes ``penalty``.
    """
    partial = np.asarray(partial, dtype=float)
    width = min(partial.size, bank.matrix.shape[1])
    diff = np.abs(bank.matrix[:, :width] - partial[:width])
    if bank.lengths.min() < width:
        # Padding columns of shorter rows must not contribute.
        diff[bank.columns[:width] >= bank.lengths[:, None]] = 0.0
    surplus = np.maximum(partial.size - bank.lengths, 0)
    return diff.sum(axis=1) + surplus * penalty


class PrefixL1Sweeper:
    """Incremental per-window L1 prefix sweep over a padded bank.

    The streaming pipeline extends a partial pattern one value at a time;
    :meth:`extend` adds that window's contribution to a running
    per-row distance vector in one vectorized O(bank) update.  Windows
    are accumulated strictly in order, so the running vector is
    bit-identical to the scalar per-row accumulation (and to a
    :meth:`start` rebuild after a checkpoint restore).
    """

    __slots__ = ("bank", "penalty")

    def __init__(self, bank: PaddedBank, penalty: float):
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self.bank = bank
        self.penalty = float(penalty)

    def start(self, pattern) -> np.ndarray:
        """Running distances for an already-observed pattern prefix.

        Accumulates window by window in the same order :meth:`extend`
        would have, so a restored run continues bit-identically.
        """
        distances = np.zeros(len(self.bank))
        for w, value in enumerate(pattern):
            self.extend(distances, w, float(value))
        return distances

    def extend(self, distances: np.ndarray, w: int, value: float) -> None:
        """Add window ``w`` with metric ``value`` to ``distances`` in place."""
        matrix = self.bank.matrix
        if w < matrix.shape[1]:
            distances += np.where(
                self.bank.lengths > w,
                np.abs(value - matrix[:, w]),
                self.penalty,
            )
        else:
            distances += self.penalty
