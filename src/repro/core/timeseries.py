"""Period-weighted metric time series.

A request's captured behavior is a time-ordered sequence of metric values,
one per execution period between counter samples, with widely varying
period lengths.  :class:`MetricSeries` carries the values together with
their lengths, and supports resampling onto fixed-length windows (the
representation used by the differencing measures of Section 4.1, where
"each value in the sequence is measured for a fixed-length period").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import coefficient_of_variation, weighted_mean


@dataclass(frozen=True)
class MetricSeries:
    """Time-ordered metric values with per-value period lengths."""

    values: np.ndarray
    lengths: np.ndarray

    def __post_init__(self):
        values = np.asarray(self.values, dtype=float)
        lengths = np.asarray(self.lengths, dtype=float)
        if values.ndim != 1 or values.shape != lengths.shape:
            raise ValueError("values and lengths must be equal-length 1-D arrays")
        if values.size == 0:
            raise ValueError("empty series")
        if np.any(lengths <= 0):
            raise ValueError("period lengths must be positive")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "lengths", lengths)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def total_length(self) -> float:
        return float(self.lengths.sum())

    def mean(self) -> float:
        return weighted_mean(self.values, self.lengths)

    def coefficient_of_variation(self, overall=None) -> float:
        return coefficient_of_variation(self.values, self.lengths, overall=overall)

    def prefix(self, max_length: float) -> "MetricSeries":
        """The leading sub-series covering at most ``max_length`` of length.

        Used for online identification from partial request executions
        (Section 4.4).  The period straddling the cut is truncated.
        """
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        cum = np.cumsum(self.lengths)
        n_full = int(np.searchsorted(cum, max_length, side="left"))
        if n_full >= len(self):
            return self
        values = self.values[: n_full + 1].copy()
        lengths = self.lengths[: n_full + 1].copy()
        already = cum[n_full - 1] if n_full > 0 else 0.0
        lengths[-1] = max_length - already
        if lengths[-1] <= 0:
            values, lengths = values[:-1], lengths[:-1]
        return MetricSeries(values=values, lengths=lengths)

    def resample(self, window: float) -> np.ndarray:
        """Length-weighted average values over fixed-size windows.

        The metric is assumed uniform within each period; window ``k``
        averages the overlapping periods weighted by overlap.  A trailing
        partial window shorter than 25% of ``window`` is dropped (its
        average would be dominated by noise).
        """
        if window <= 0:
            raise ValueError("window must be positive")
        boundaries = np.concatenate([[0.0], np.cumsum(self.lengths)])
        total = boundaries[-1]
        # Cumulative metric "mass" (value x length) is piecewise linear in
        # the length axis; window masses are differences of interpolants.
        cum_mass = np.concatenate([[0.0], np.cumsum(self.values * self.lengths)])
        n_windows = int(np.ceil(total / window))
        edges = np.minimum(window * np.arange(n_windows + 1), total)
        mass_at_edges = np.interp(edges, boundaries, cum_mass)
        masses = np.diff(mass_at_edges)
        widths = np.diff(edges)
        keep = widths > 0.25 * window
        if not np.any(keep):
            keep[0] = widths[0] > 0
        return masses[keep] / widths[keep]
