"""Online quantile estimation (the P-square algorithm).

The contention-easing scheduler thresholds on the 80-percentile of L2
misses per instruction.  The paper computes this from workload profiling;
a production OS would rather maintain it online.  The P-square algorithm
(Jain & Chlamtac, 1985) tracks a running quantile with five markers and
O(1) work per observation — cheap enough for in-kernel use alongside the
vaEWMA predictors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class OnlineQuantile:
    """Streaming estimate of one quantile via the P-square algorithm."""

    q: float = 0.8

    _initial: List[float] = field(default_factory=list)
    _heights: List[float] = field(default_factory=list)
    _positions: List[float] = field(default_factory=list)
    _desired: List[float] = field(default_factory=list)
    _increments: List[float] = field(default_factory=list)
    count: int = 0

    def __post_init__(self):
        if not 0.0 < self.q < 1.0:
            raise ValueError("q must be in (0, 1)")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._heights:
            self._update(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            q = self.q
            self._heights = list(self._initial)
            self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
            self._desired = [1.0, 1.0 + 2 * q, 1.0 + 4 * q, 3.0 + 2 * q, 5.0]
            self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def _update(self, value: float) -> None:
        h, n, d = self._heights, self._positions, self._desired
        # Locate the cell containing the new observation; clamp extremes.
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        elif value < h[1]:
            k = 0
        elif value < h[2]:
            k = 1
        elif value < h[3]:
            k = 2
        else:
            k = 3
        for i in range(k + 1, 5):
            n[i] += 1.0
        increments = self._increments
        for i in range(5):
            d[i] += increments[i]
        # Adjust interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = d[i] - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def to_state(self) -> dict:
        """JSON-ready snapshot of the full estimator state.

        Every marker is a Python float, so a json round trip restores the
        estimator bit-exactly — subsequent observations and estimates are
        byte-identical to an uninterrupted run (the online-pipeline
        checkpoint contract).
        """
        return {
            "q": self.q,
            "initial": list(self._initial),
            "heights": list(self._heights),
            "positions": list(self._positions),
            "desired": list(self._desired),
            "increments": list(self._increments),
            "count": self.count,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineQuantile":
        estimator = cls(q=float(state["q"]))
        estimator._initial = [float(v) for v in state["initial"]]
        estimator._heights = [float(v) for v in state["heights"]]
        estimator._positions = [float(v) for v in state["positions"]]
        estimator._desired = [float(v) for v in state["desired"]]
        estimator._increments = [float(v) for v in state["increments"]]
        estimator.count = int(state["count"])
        return estimator

    def estimate(self) -> Optional[float]:
        """The current quantile estimate (None before any observation)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return None
        # Nearest-rank (ceil(q*n) as a 1-based rank), matching the
        # convention the five-marker estimate converges to post-warmup.
        ordered = sorted(self._initial)
        index = max(0, math.ceil(self.q * len(ordered)) - 1)
        return ordered[min(len(ordered) - 1, index)]
