"""The paper's primary contribution: variation-driven request modeling.

Submodules implement request time-series construction, differencing
measures (L1, dynamic time warping with asynchrony penalty, Levenshtein),
k-medoids classification, anomaly detection, online signature
identification, online behavior predictors (EWMA / variable-aging EWMA),
and behavior-transition-signal training.
"""

from repro.core.centroids import GroupCentroids, IncrementalCentroid
from repro.core.clustering import (
    KMedoidsResult,
    choose_k,
    k_medoids,
    silhouette_score,
)
from repro.core.distances import (
    average_metric_distance,
    l1_distance,
    levenshtein_distance,
    unequal_length_penalty,
)
from repro.core.distengine import DistanceCache, DistanceEngine, sequence_key
from repro.core.dtw import dtw_distance
from repro.core.identification import Identification, OnlineIdentifier
from repro.core.kernels import (
    PaddedBank,
    PenaltyDtw,
    argmin_distance,
    dtw_distance_pruned,
    dtw_one_to_many,
    lb_penalty_dtw,
)
from repro.core.prediction import (
    Ewma,
    LastValue,
    RunningAverage,
    VaEwma,
    evaluate_predictor,
)
from repro.core.quantile import OnlineQuantile
from repro.core.stagedetect import detect_change_points, identify_stages
from repro.core.timeseries import MetricSeries
from repro.core.variation import captured_variation, inter_request_variation

__all__ = [
    "DistanceCache",
    "DistanceEngine",
    "Ewma",
    "GroupCentroids",
    "Identification",
    "IncrementalCentroid",
    "KMedoidsResult",
    "LastValue",
    "MetricSeries",
    "OnlineIdentifier",
    "OnlineQuantile",
    "PaddedBank",
    "PenaltyDtw",
    "RunningAverage",
    "VaEwma",
    "argmin_distance",
    "average_metric_distance",
    "captured_variation",
    "choose_k",
    "detect_change_points",
    "dtw_distance",
    "dtw_distance_pruned",
    "dtw_one_to_many",
    "evaluate_predictor",
    "lb_penalty_dtw",
    "identify_stages",
    "inter_request_variation",
    "k_medoids",
    "l1_distance",
    "levenshtein_distance",
    "sequence_key",
    "silhouette_score",
    "unequal_length_penalty",
]
