"""Anomaly detection and analysis (Section 4.3).

Anomalous requests deviate from a *reference* against expected similarity.
Two detectors from the paper:

* **centroid-distance detection**: within a group of requests sharing
  application-level semantics (same TPC-H query, same WeBWorK problem), the
  member farthest from the group centroid shares the least common behavior
  and is a suspected anomaly; the centroid serves as its reference;
* **multi-metric pair search**: hunt for request pairs that look alike on
  L2 references per instruction (same reference stream to the shared
  resource) yet differ on CPI — the signature of a request hurt by dynamic
  contention on a cache-sharing multicore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.distengine import DistanceEngine, get_default_engine


def _measure_key(distance: Callable, distance_key: Optional[str]) -> Optional[str]:
    """Explicit cache key, else the one a kernel measure carries.

    Batchable kernels (:class:`~repro.core.kernels.PenaltyDtw`) know
    their own measure-and-parameter cache key; picking it up here means
    anomaly scans are memoized without every caller re-deriving the key
    string.
    """
    if distance_key is not None:
        return distance_key
    return getattr(distance, "distance_key", None)


@dataclass(frozen=True)
class AnomalyCase:
    """A suspected anomaly with its reference request."""

    anomaly_index: int
    reference_index: int
    #: Distance on the detecting metric (centroid distance, or CPI distance
    #: for multi-metric pairs).
    score: float
    group: Optional[str] = None


def group_centroid(distances: np.ndarray) -> int:
    """Index of the member with minimum summed distance to all others."""
    distances = np.asarray(distances, dtype=float)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise ValueError("distances must be a square matrix")
    return int(np.argmin(distances.sum(axis=1)))


def detect_by_centroid_distance(
    groups: Dict[str, Sequence[int]],
    sequences: Sequence,
    distance: Callable,
    top_per_group: int = 1,
    min_group_size: int = 4,
    engine: Optional[DistanceEngine] = None,
    distance_key: Optional[str] = None,
) -> List[AnomalyCase]:
    """Centroid-distance anomaly detection over semantic groups.

    ``groups`` maps a group key (e.g. query type) to indices into
    ``sequences``; for every sufficiently large group the members with the
    highest distance to the group centroid are flagged, with the centroid
    as the reference.  The per-group matrices go through the distance
    ``engine``, which runs batchable measures
    (:class:`~repro.core.kernels.PenaltyDtw`) through the vectorized
    one-vs-many kernel instead of per-pair Python calls.
    """
    if engine is None:
        engine = get_default_engine()
    distance_key = _measure_key(distance, distance_key)
    cases: List[AnomalyCase] = []
    for key, indices in groups.items():
        indices = list(indices)
        if len(indices) < min_group_size:
            continue
        matrix = engine.matrix(
            [sequences[idx] for idx in indices],
            distance,
            symmetric=True,
            distance_key=distance_key,
        )
        centroid = group_centroid(matrix)
        n = len(indices)
        order = np.argsort(matrix[centroid])[::-1]
        for rank in range(min(top_per_group, n - 1)):
            member = int(order[rank])
            if member == centroid:
                continue
            cases.append(
                AnomalyCase(
                    anomaly_index=indices[member],
                    reference_index=indices[centroid],
                    score=float(matrix[centroid, member]),
                    group=key,
                )
            )
    cases.sort(key=lambda c: c.score, reverse=True)
    return cases


def detect_multi_metric_pairs(
    ref_sequences: Sequence,
    cpi_sequences: Sequence,
    ref_distance: Callable,
    cpi_distance: Callable,
    ref_similarity_quantile: float = 10.0,
    top_pairs: int = 5,
    candidate_pairs: Optional[Sequence[Tuple[int, int]]] = None,
    engine: Optional[DistanceEngine] = None,
    ref_distance_key: Optional[str] = None,
    cpi_distance_key: Optional[str] = None,
) -> List[AnomalyCase]:
    """Multi-metric anomaly search (similar L2-reference streams, different CPI).

    Pairs whose L2-references-per-instruction distance falls below the
    ``ref_similarity_quantile`` percentile are considered same-work pairs;
    among them the largest CPI distances are returned.  Within a flagged
    pair, the request with the higher mean CPI is the anomaly.  Both pair
    sweeps run through the distance ``engine`` (serial by default).
    """
    n = len(ref_sequences)
    if n != len(cpi_sequences):
        raise ValueError("sequence lists must align")
    if candidate_pairs is None:
        candidate_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    if not candidate_pairs:
        return []
    if engine is None:
        engine = get_default_engine()
    ref_distance_key = _measure_key(ref_distance, ref_distance_key)
    cpi_distance_key = _measure_key(cpi_distance, cpi_distance_key)

    candidate_pairs = list(candidate_pairs)
    ref_d = engine.pair_distances(
        ref_sequences,
        candidate_pairs,
        ref_distance,
        distance_key=ref_distance_key,
        symmetric=True,
    )
    threshold = np.percentile(ref_d, ref_similarity_quantile)
    similar = [
        (pair, rd) for pair, rd in zip(candidate_pairs, ref_d) if rd <= threshold
    ]
    similar_pairs = [pair for pair, _ in similar]
    cpi_d = engine.pair_distances(
        cpi_sequences,
        similar_pairs,
        cpi_distance,
        distance_key=cpi_distance_key,
        symmetric=True,
    )
    scored = [(pair, float(cd)) for pair, cd in zip(similar_pairs, cpi_d)]
    scored.sort(key=lambda item: item[1], reverse=True)

    cases = []
    for (i, j), cd in scored[:top_pairs]:
        mean_i = float(np.mean(cpi_sequences[i]))
        mean_j = float(np.mean(cpi_sequences[j]))
        anomaly, reference = (i, j) if mean_i >= mean_j else (j, i)
        cases.append(
            AnomalyCase(anomaly_index=anomaly, reference_index=reference, score=cd)
        )
    return cases
