"""Online request signature identification (Section 4.4).

The system maintains a bank of representative request signatures — the
paper uses the variation pattern of L2 references per instruction, a metric
that reflects inherent request behavior rather than dynamic L2-contention
effects.  Shortly after a request begins, its partial variation pattern is
matched against same-length prefixes of the bank signatures (L1 distance,
chosen for its low online cost); the nearest signature's recorded property
predicts the new request's property (here: whether its CPU consumption will
land above or below the workload median).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distances import average_metric_distance, l1_distance
from repro.core.distengine import DistanceEngine, get_default_engine


@dataclass(frozen=True)
class Signature:
    """One bank entry: a metric variation pattern plus request properties."""

    values: np.ndarray
    cpu_time_us: float
    label: Optional[str] = None


class SignatureBank:
    """A bank of representative request signatures."""

    def __init__(
        self,
        penalty: float,
        method: str = "variation",
        engine: Optional[DistanceEngine] = None,
    ):
        """``method`` selects the differencing used for identification:

        * ``"variation"`` — L1 distance of metric variation patterns
          (the paper's contribution);
        * ``"average"`` — difference of average metric values (the prior
          signature form the paper compares against).

        ``engine`` routes bank matching through a shared distance engine;
        attaching one with a cache memoizes repeated identifications of
        the same partial pattern.
        """
        if method not in ("variation", "average"):
            raise ValueError(f"unknown method {method!r}")
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self._signatures: List[Signature] = []
        self._penalty = penalty
        self._method = method
        self._engine = engine if engine is not None else get_default_engine()
        if method == "variation":
            self._distance_key = f"sigbank-l1:p={penalty!r}"
        else:
            self._distance_key = "sigbank-avg"

    def __len__(self) -> int:
        return len(self._signatures)

    def add(self, values, cpu_time_us: float, label: Optional[str] = None) -> None:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("empty signature")
        self._signatures.append(
            Signature(values=values, cpu_time_us=float(cpu_time_us), label=label)
        )

    def identify(self, partial_values) -> Signature:
        """Best-matching bank signature for a partial variation pattern.

        Bank signatures are compared over the prefix of the partial
        pattern's length: an online identification can only use the
        execution observed so far.
        """
        if not self._signatures:
            raise ValueError("empty signature bank")
        partial = np.asarray(partial_values, dtype=float)
        if partial.size == 0:
            raise ValueError("empty partial pattern")
        if self._method == "variation":
            fn = lambda a, b: l1_distance(a, b, penalty=self._penalty)
        else:
            fn = average_metric_distance
        prefixes = [s.values[: partial.size] for s in self._signatures]
        distances = self._engine.one_to_many(
            partial, prefixes, fn, distance_key=self._distance_key
        )
        # First minimum — the same tie-breaking as a strict `<` scan.
        return self._signatures[int(np.argmin(distances))]

    def predict_cpu_above(self, partial_values, threshold_us: float) -> bool:
        """Predict whether the request's CPU usage will exceed ``threshold_us``."""
        return self.identify(partial_values).cpu_time_us > threshold_us


@dataclass
class RecentPastPredictor:
    """The conventional transparent baseline: recent past workloads.

    Without online information about an incoming request, the CPU usage of
    each request is estimated as the average consumption of the last
    ``window`` completed requests.
    """

    window: int = 10

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be at least 1")
        self._recent: List[float] = []

    def observe_completion(self, cpu_time_us: float) -> None:
        self._recent.append(float(cpu_time_us))
        if len(self._recent) > self.window:
            self._recent.pop(0)

    def predict_cpu_above(self, threshold_us: float) -> Optional[bool]:
        if not self._recent:
            return None
        return float(np.mean(self._recent)) > threshold_us


def prediction_error_curve(
    bank: SignatureBank,
    test_patterns: Sequence[np.ndarray],
    test_cpu_times: Sequence[float],
    threshold_us: float,
    prefix_lengths: Sequence[int],
) -> np.ndarray:
    """Misprediction rate vs. observed execution prefix (Figure 10).

    ``prefix_lengths[k]`` is the number of leading windows available at
    evaluation point ``k``; the error is the fraction of test requests
    whose above/below-median CPU prediction is wrong.
    """
    if len(test_patterns) != len(test_cpu_times):
        raise ValueError("test inputs must align")
    errors = np.zeros(len(prefix_lengths))
    for k, n_windows in enumerate(prefix_lengths):
        if n_windows < 1:
            raise ValueError("prefix lengths must be positive")
        wrong = 0
        for pattern, cpu in zip(test_patterns, test_cpu_times):
            prefix = np.asarray(pattern, dtype=float)[:n_windows]
            predicted = bank.predict_cpu_above(prefix, threshold_us)
            actual = cpu > threshold_us
            wrong += predicted != actual
        errors[k] = wrong / len(test_patterns)
    return errors
