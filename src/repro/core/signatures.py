"""Online request signature identification (Section 4.4).

The system maintains a bank of representative request signatures — the
paper uses the variation pattern of L2 references per instruction, a metric
that reflects inherent request behavior rather than dynamic L2-contention
effects.  Shortly after a request begins, its partial variation pattern is
matched against same-length prefixes of the bank signatures (L1 distance,
chosen for its low online cost); the nearest signature's recorded property
predicts the new request's property (here: whether its CPU consumption will
land above or below the workload median).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.distances import average_metric_distance
from repro.core.distengine import DistanceEngine, get_default_engine
from repro.core.kernels import PaddedBank, PrefixL1Sweeper, l1_prefix_distances


@dataclass(frozen=True)
class Signature:
    """One bank entry: a metric variation pattern plus request properties."""

    values: np.ndarray
    cpu_time_us: float
    label: Optional[str] = None


@dataclass(frozen=True)
class BankMatch:
    """A scored identification: the winning signature plus its evidence.

    ``margin`` (runner-up distance minus best distance) is the online
    pipeline's confidence signal: a commit-worthy match separates itself
    from the rest of the bank, not merely from nothing.
    """

    signature: Signature
    index: int
    distance: float
    runner_up_distance: float

    @property
    def margin(self) -> float:
        return self.runner_up_distance - self.distance


class SignatureBank:
    """A bank of representative request signatures."""

    def __init__(
        self,
        penalty: float,
        method: str = "variation",
        engine: Optional[DistanceEngine] = None,
    ):
        """``method`` selects the differencing used for identification:

        * ``"variation"`` — L1 distance of metric variation patterns
          (the paper's contribution);
        * ``"average"`` — difference of average metric values (the prior
          signature form the paper compares against).

        ``engine`` routes ``"average"`` matching through a shared distance
        engine; ``"variation"`` matching runs on a vectorized in-process
        prefix sweep (one numpy pass over the whole bank), which beats any
        memoization at streaming rates where every poll is a new prefix.
        """
        if method not in ("variation", "average"):
            raise ValueError(f"unknown method {method!r}")
        if penalty < 0:
            raise ValueError("penalty must be non-negative")
        self._signatures: List[Signature] = []
        self._penalty = penalty
        self._method = method
        self._engine = engine if engine is not None else get_default_engine()
        self._stack: Optional[PaddedBank] = None
        self._rows: Optional[list] = None
        if method == "variation":
            self._distance_key = f"sigbank-l1:p={penalty!r}"
        else:
            self._distance_key = "sigbank-avg"

    def __len__(self) -> int:
        return len(self._signatures)

    def add(self, values, cpu_time_us: float, label: Optional[str] = None) -> None:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            raise ValueError("empty signature")
        self._signatures.append(
            Signature(values=values, cpu_time_us=float(cpu_time_us), label=label)
        )
        self._stack = None
        self._rows = None

    def padded_bank(self) -> PaddedBank:
        """Bank signatures as one shared pad-and-mask stack (cached).

        The same :class:`~repro.core.kernels.PaddedBank` structure the
        batched DTW kernels use; here it backs the vectorized L1 prefix
        sweeps.
        """
        if not self._signatures:
            raise ValueError("empty signature bank")
        if self._stack is None:
            self._stack = PaddedBank([s.values for s in self._signatures])
        return self._stack

    def _variation_distances(self, partial: np.ndarray) -> np.ndarray:
        """L1 prefix distances of ``partial`` against every bank signature.

        One vectorized kernel pass equivalent to ``l1_distance(partial,
        s.values[:partial.size], penalty)`` per signature (see
        :func:`repro.core.kernels.l1_prefix_distances`).
        """
        return l1_prefix_distances(self.padded_bank(), partial, self._penalty)

    def identify(self, partial_values) -> Signature:
        """Best-matching bank signature for a partial variation pattern.

        Bank signatures are compared over the prefix of the partial
        pattern's length: an online identification can only use the
        execution observed so far.
        """
        return self.match(partial_values).signature

    def match(self, partial_values) -> BankMatch:
        """Identify with scores: best signature, distance, and runner-up.

        The prefix API the streaming pipeline polls window by window; the
        runner-up distance lets callers turn raw distances into a
        confidence margin without a second bank sweep.
        """
        if not self._signatures:
            raise ValueError("empty signature bank")
        partial = np.asarray(partial_values, dtype=float)
        if partial.size == 0:
            raise ValueError("empty partial pattern")
        if self._method == "variation":
            distances = self._variation_distances(partial)
        else:
            prefixes = [s.values[: partial.size] for s in self._signatures]
            distances = np.asarray(
                self._engine.one_to_many(
                    partial,
                    prefixes,
                    average_metric_distance,
                    distance_key=self._distance_key,
                ),
                dtype=float,
            )
        # First minimum — the same tie-breaking as a strict `<` scan.
        best = int(np.argmin(distances))
        if distances.size > 1:
            # Second order statistic == min over everything but `best`
            # (ties make them equal either way); avoids np.delete's copy.
            runner_up = float(np.partition(distances, 1)[1])
        else:
            runner_up = float("inf")
        return BankMatch(
            signature=self._signatures[best],
            index=best,
            distance=float(distances[best]),
            runner_up_distance=runner_up,
        )

    def _signature_rows(self) -> list:
        """Signatures as plain ``(values_list, length, label)`` rows."""
        if self._rows is None:
            self._rows = [
                (s.values.tolist(), s.values.size, s.label)
                for s in self._signatures
            ]
        return self._rows

    def prefix_rows(self) -> tuple:
        """``(rows, penalty)`` for caller-maintained incremental sweeps.

        ``rows`` is the plain ``(values_list, length, label)`` form of the
        bank.  A streaming consumer that extends a partial pattern one
        value at a time can keep a running distance per row — adding
        ``|x - values[w]|`` while ``w < length`` and ``penalty`` beyond —
        and read the winner in O(bank) per window instead of re-sweeping
        the whole prefix.
        """
        if not self._signatures:
            raise ValueError("empty signature bank")
        return self._signature_rows(), self._penalty

    def prefix_sweeper(self) -> tuple:
        """``(sweeper, labels)`` for vectorized incremental prefix sweeps.

        The numpy counterpart of :meth:`prefix_rows` for large banks: a
        :class:`~repro.core.kernels.PrefixL1Sweeper` extends a running
        per-signature distance vector in one O(bank) vectorized update
        per window, bit-identical to the scalar accumulation.
        """
        sweeper = PrefixL1Sweeper(self.padded_bank(), self._penalty)
        return sweeper, [s.label for s in self._signatures]

    def nearest_label(self, partial_values) -> Optional[str]:
        """Label of the best-matching signature, skipping runner-up scoring.

        The streaming pipeline polls this once per completed window until
        its label streak commits; it needs only the winner, so the
        runner-up sweep and match-record construction of :meth:`match`
        are dead weight on that path.  Tie-breaking is the same first-
        minimum rule as :meth:`match`.

        Small "variation" banks (the streaming case: a handful of short
        signatures) are swept in plain Python — at those sizes interpreter
        arithmetic beats numpy dispatch by an order of magnitude, and the
        partial (a growing Python list on the streaming path) never has to
        become an array.
        """
        if not self._signatures:
            raise ValueError("empty signature bank")
        width = len(partial_values)
        if width == 0:
            raise ValueError("empty partial pattern")
        if self._method != "variation":
            return self.match(partial_values).signature.label
        rows = self._signature_rows()
        if len(rows) * width > 2048:
            partial = np.asarray(partial_values, dtype=float)
            best = int(np.argmin(self._variation_distances(partial)))
            return self._signatures[best].label
        penalty = self._penalty
        best_label: Optional[str] = None
        best = float("inf")
        for values, length, label in rows:
            total = 0.0
            for x, s in zip(partial_values, values):
                d = x - s
                total += d if d >= 0.0 else -d
            if width > length:
                total += (width - length) * penalty
            if total < best:
                best = total
                best_label = label
        return best_label

    def predict_cpu_above(self, partial_values, threshold_us: float) -> bool:
        """Predict whether the request's CPU usage will exceed ``threshold_us``."""
        return self.identify(partial_values).cpu_time_us > threshold_us

    # -- checkpointing ---------------------------------------------------

    def to_state(self) -> dict:
        """JSON-ready snapshot (floats round-trip exactly through json)."""
        return {
            "penalty": self._penalty,
            "method": self._method,
            "signatures": [
                {
                    "values": [float(v) for v in s.values],
                    "cpu_time_us": s.cpu_time_us,
                    "label": s.label,
                }
                for s in self._signatures
            ],
        }

    @classmethod
    def from_state(
        cls, state: dict, engine: Optional[DistanceEngine] = None
    ) -> "SignatureBank":
        bank = cls(
            penalty=float(state["penalty"]), method=state["method"], engine=engine
        )
        for entry in state["signatures"]:
            bank.add(entry["values"], entry["cpu_time_us"], label=entry["label"])
        return bank


@dataclass
class RecentPastPredictor:
    """The conventional transparent baseline: recent past workloads.

    Without online information about an incoming request, the CPU usage of
    each request is estimated as the average consumption of the last
    ``window`` completed requests.
    """

    window: int = 10

    def __post_init__(self):
        if self.window < 1:
            raise ValueError("window must be at least 1")
        self._recent: List[float] = []

    def observe_completion(self, cpu_time_us: float) -> None:
        self._recent.append(float(cpu_time_us))
        if len(self._recent) > self.window:
            self._recent.pop(0)

    def predict_cpu_above(self, threshold_us: float) -> Optional[bool]:
        if not self._recent:
            return None
        return float(np.mean(self._recent)) > threshold_us


def prediction_error_curve(
    bank: SignatureBank,
    test_patterns: Sequence[np.ndarray],
    test_cpu_times: Sequence[float],
    threshold_us: float,
    prefix_lengths: Sequence[int],
) -> np.ndarray:
    """Misprediction rate vs. observed execution prefix (Figure 10).

    ``prefix_lengths[k]`` is the number of leading windows available at
    evaluation point ``k``; the error is the fraction of test requests
    whose above/below-median CPU prediction is wrong.
    """
    if len(test_patterns) != len(test_cpu_times):
        raise ValueError("test inputs must align")
    errors = np.zeros(len(prefix_lengths))
    for k, n_windows in enumerate(prefix_lengths):
        if n_windows < 1:
            raise ValueError("prefix lengths must be positive")
        wrong = 0
        for pattern, cpu in zip(test_patterns, test_cpu_times):
            prefix = np.asarray(pattern, dtype=float)[:n_windows]
            predicted = bank.predict_cpu_above(prefix, threshold_us)
            actual = cpu > threshold_us
            wrong += predicted != actual
        errors[k] = wrong / len(test_patterns)
    return errors
