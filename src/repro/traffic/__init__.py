"""Open-system traffic layer: arrivals, dispatch, latency accounting.

This package turns the simulator from a closed generative loop into an
open system: :mod:`~repro.traffic.arrivals` supplies seeded arrival
schedules (Poisson, bursty ON-OFF, diurnal, Zipf-skewed multi-tenant,
deterministic trace replay — with the paper's closed loop as just one
more process), :mod:`~repro.traffic.dispatch` places runnable request
stages on cores through pluggable policies (round-robin, random, JSQ,
least-outstanding-work, signature/class-aware), and
:mod:`~repro.traffic.latency` records the per-request queueing and
sojourn latencies that make "throughput vs p99" a measurable curve.

A :class:`TrafficConfig` bundles the three for
:class:`repro.kernel.simulator.SimConfig`; leaving it unset (or using
closed-loop arrivals with round-robin dispatch) is byte-identical to the
pre-traffic-layer simulator, which the golden corpus pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.traffic.arrivals import (
    Arrival,
    ArrivalProcess,
    ClosedLoop,
    DiurnalArrivals,
    OnOffArrivals,
    PoissonArrivals,
    TraceReplay,
    ZipfArrivals,
    load_schedule,
    parse_arrivals,
    save_schedule,
)
from repro.traffic.dispatch import (
    ClassAwareDispatch,
    DispatchPolicy,
    JoinShortestQueue,
    LeastOutstandingWork,
    QueueView,
    RandomDispatch,
    RoundRobinDispatch,
    class_map_from_identifier,
    parse_dispatch,
)
from repro.traffic.latency import LatencyStore, RequestLatency

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "ClassAwareDispatch",
    "ClosedLoop",
    "DispatchPolicy",
    "DiurnalArrivals",
    "JoinShortestQueue",
    "LatencyStore",
    "LeastOutstandingWork",
    "OnOffArrivals",
    "PoissonArrivals",
    "QueueView",
    "RandomDispatch",
    "RequestLatency",
    "RoundRobinDispatch",
    "TraceReplay",
    "TrafficConfig",
    "ZipfArrivals",
    "class_map_from_identifier",
    "load_schedule",
    "parse_arrivals",
    "parse_dispatch",
    "save_schedule",
]


@dataclass
class TrafficConfig:
    """The open-system traffic setup for one simulation run.

    ``admission_limit`` bounds the admission queue: an open-loop arrival
    finding ``limit`` requests already in flight (admitted, not yet
    completed) is *shed* — counted, never executed — which is the
    backpressure behavior a load sweep needs to show past saturation.
    ``None`` admits everything (latency then grows without bound as
    offered load exceeds capacity).
    """

    arrivals: ArrivalProcess = field(default_factory=ClosedLoop)
    dispatch: DispatchPolicy = field(default_factory=RoundRobinDispatch)
    admission_limit: Optional[int] = None

    def __post_init__(self):
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError(
                f"admission_limit must be >= 1, got {self.admission_limit}"
            )
        if self.admission_limit is not None and self.arrivals.is_closed_loop:
            raise ValueError(
                "admission_limit needs open-loop arrivals; the closed loop "
                "is bounded by concurrency already"
            )

    def describe(self) -> dict:
        """JSON-serializable identity, for trace/result metadata."""
        return {
            "arrivals": self.arrivals.describe(),
            "dispatch": self.dispatch.describe(),
            "admission_limit": self.admission_limit,
        }
