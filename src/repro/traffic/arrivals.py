"""Pluggable open-system arrival processes.

Production traffic is open-loop: requests arrive on their own schedule
regardless of how backed up the server is, which is what turns offered
load into queueing delay and tail latency.  Every process here is a
*description* — :meth:`ArrivalProcess.schedule` draws the whole arrival
schedule up front from the caller's RNG, so a run is a pure function of
``(process, seed)`` and two runs with the same seed are byte-identical.

Each schedule entry is an :class:`Arrival`: an absolute arrival time in
simulated cycles plus an optional integer tenant tag (used by the
Zipf-skewed process for multi-tenant popularity studies; dispatch
policies and the latency store may key on it).

The paper's original closed generative loop is just one process among
many here (:class:`ClosedLoop`): it draws no schedule at all, and the
simulator falls back to completion-triggered admission, byte-identical
to the pre-traffic-layer behavior.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "Arrival",
    "ArrivalProcess",
    "ClosedLoop",
    "DiurnalArrivals",
    "OnOffArrivals",
    "PoissonArrivals",
    "TraceReplay",
    "ZipfArrivals",
    "load_schedule",
    "parse_arrivals",
    "save_schedule",
]


@dataclass(frozen=True)
class Arrival:
    """One scheduled request arrival."""

    #: Absolute arrival time in simulated cycles.
    cycle: float
    #: Tenant tag (None for single-tenant processes).
    tenant: Optional[int] = None


def _us_to_cycles(t_us: float, frequency_ghz: float) -> float:
    return t_us * frequency_ghz * 1e3


def _rate_to_gap_cycles(rate_per_s: float, frequency_ghz: float) -> float:
    return frequency_ghz * 1e9 / rate_per_s


class ArrivalProcess:
    """Base class: a seeded, reproducible arrival-schedule description."""

    #: Registry/spec name (``poisson``, ``onoff``, ...).
    kind: str = "abstract"
    #: Closed-loop processes draw no schedule; the simulator keeps its
    #: completion-triggered admission loop instead.
    is_closed_loop: bool = False
    #: Whether ``schedule()`` draws the whole arrival stream eagerly (all
    #: current processes do).  The generation fast path's block-ahead
    #: synthesis relies on this: once the schedule is drawn, no further
    #: arrival-side RNG draws interleave with request generation.  A
    #: future lazily-drawing process must set this False to keep the
    #: reference draw order.
    exposes_schedule: bool = True

    def schedule(
        self, rng: np.random.Generator, n: int, frequency_ghz: float
    ) -> List[Arrival]:
        """Draw ``n`` arrivals (sorted by cycle) from ``rng``."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-serializable identity, for trace/result metadata."""
        return {"kind": self.kind}

    def mean_rate_per_s(self) -> Optional[float]:
        """Long-run mean offered load (None when undefined, e.g. replay)."""
        return None


class ClosedLoop(ArrivalProcess):
    """The paper's closed generative loop, as an arrival process.

    No schedule exists: ``concurrency`` clients each issue the next
    request the moment the previous one completes.  Selecting this
    process is byte-identical to not configuring a traffic layer at all.
    """

    kind = "closed"
    is_closed_loop = True

    def schedule(self, rng, n, frequency_ghz):
        raise RuntimeError(
            "closed-loop arrivals have no schedule; the simulator admits "
            "on completion"
        )


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a fixed rate (the M in M/G/k)."""

    rate_per_s: float

    kind = "poisson"

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")

    def schedule(self, rng, n, frequency_ghz):
        gap = _rate_to_gap_cycles(self.rate_per_s, frequency_ghz)
        times = np.cumsum(rng.exponential(gap, size=n))
        return [Arrival(float(t)) for t in times]

    def describe(self):
        return {"kind": self.kind, "rate_per_s": self.rate_per_s}

    def mean_rate_per_s(self):
        return self.rate_per_s


@dataclass(frozen=True)
class OnOffArrivals(ArrivalProcess):
    """Bursty ON-OFF modulated Poisson arrivals.

    The source alternates between ON periods (Poisson at ``rate_on``)
    and OFF periods (Poisson at ``rate_off``, typically far lower or
    zero), with exponentially distributed period durations — the classic
    two-state MMPP burst model from the web-workload literature.
    """

    rate_on_per_s: float
    rate_off_per_s: float
    on_ms: float
    off_ms: float

    kind = "onoff"

    def __post_init__(self):
        if self.rate_on_per_s <= 0:
            raise ValueError(f"ON rate must be positive, got {self.rate_on_per_s}")
        if self.rate_off_per_s < 0:
            raise ValueError(
                f"OFF rate must be non-negative, got {self.rate_off_per_s}"
            )
        if self.on_ms <= 0 or self.off_ms <= 0:
            raise ValueError("ON/OFF mean durations must be positive")

    def schedule(self, rng, n, frequency_ghz):
        out: List[Arrival] = []
        t = 0.0
        on = True
        on_cycles = _us_to_cycles(self.on_ms * 1e3, frequency_ghz)
        off_cycles = _us_to_cycles(self.off_ms * 1e3, frequency_ghz)
        period_end = t + float(rng.exponential(on_cycles))
        while len(out) < n:
            rate = self.rate_on_per_s if on else self.rate_off_per_s
            if rate <= 0:
                t = period_end
            else:
                gap = _rate_to_gap_cycles(rate, frequency_ghz)
                t_next = t + float(rng.exponential(gap))
                if t_next < period_end:
                    t = t_next
                    out.append(Arrival(t))
                    continue
                # The draw crossed the state boundary; by memorylessness
                # the residual restarts fresh in the next state.
                t = period_end
            on = not on
            mean = on_cycles if on else off_cycles
            period_end = t + float(rng.exponential(mean))
        return out

    def describe(self):
        return {
            "kind": self.kind,
            "rate_on_per_s": self.rate_on_per_s,
            "rate_off_per_s": self.rate_off_per_s,
            "on_ms": self.on_ms,
            "off_ms": self.off_ms,
        }

    def mean_rate_per_s(self):
        total = self.on_ms + self.off_ms
        return (
            self.rate_on_per_s * self.on_ms + self.rate_off_per_s * self.off_ms
        ) / total


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidally modulated Poisson arrivals (a compressed diurnal curve).

    Instantaneous rate is ``rate * (1 + depth * sin(2*pi*t / period))``,
    realized by thinning a homogeneous Poisson process at the peak rate —
    the standard exact construction for inhomogeneous Poisson processes.
    """

    rate_per_s: float
    period_ms: float
    depth: float

    kind = "diurnal"

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.period_ms <= 0:
            raise ValueError(f"period must be positive, got {self.period_ms}")
        if not 0.0 <= self.depth <= 1.0:
            raise ValueError(f"depth must be in [0, 1], got {self.depth}")

    def schedule(self, rng, n, frequency_ghz):
        peak = self.rate_per_s * (1.0 + self.depth)
        gap = _rate_to_gap_cycles(peak, frequency_ghz)
        period_cycles = _us_to_cycles(self.period_ms * 1e3, frequency_ghz)
        out: List[Arrival] = []
        t = 0.0
        while len(out) < n:
            t += float(rng.exponential(gap))
            rate = self.rate_per_s * (
                1.0 + self.depth * math.sin(2.0 * math.pi * t / period_cycles)
            )
            if float(rng.random()) * peak < rate:
                out.append(Arrival(t))
        return out

    def describe(self):
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "period_ms": self.period_ms,
            "depth": self.depth,
        }

    def mean_rate_per_s(self):
        return self.rate_per_s


@dataclass(frozen=True)
class ZipfArrivals(ArrivalProcess):
    """Poisson arrivals with Zipf-skewed tenant popularity.

    Each arrival is tagged with a tenant drawn from a bounded Zipf
    distribution (``P(tenant=i) ∝ 1/(i+1)^s`` over ``tenants`` tenants),
    modeling the heavy-tailed per-customer request popularity that the
    web-workload characterization surveys report.  Dispatch policies and
    the latency store can group on the tag.
    """

    rate_per_s: float
    s: float
    tenants: int

    kind = "zipf"

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.s <= 0:
            raise ValueError(f"zipf exponent must be positive, got {self.s}")
        if self.tenants < 2:
            raise ValueError(f"need >= 2 tenants, got {self.tenants}")

    def _tenant_cdf(self) -> np.ndarray:
        weights = 1.0 / np.power(np.arange(1, self.tenants + 1, dtype=float), self.s)
        return np.cumsum(weights) / weights.sum()

    def schedule(self, rng, n, frequency_ghz):
        gap = _rate_to_gap_cycles(self.rate_per_s, frequency_ghz)
        times = np.cumsum(rng.exponential(gap, size=n))
        cdf = self._tenant_cdf()
        tenants = np.searchsorted(cdf, rng.random(size=n), side="right")
        return [
            Arrival(float(t), tenant=int(tenant))
            for t, tenant in zip(times, tenants)
        ]

    def describe(self):
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "s": self.s,
            "tenants": self.tenants,
        }

    def mean_rate_per_s(self):
        return self.rate_per_s


SCHEDULE_FORMAT = "repro-arrival-schedule"
SCHEDULE_VERSION = 1


def save_schedule(entries: List[Tuple[float, Optional[int]]], path: str) -> None:
    """Persist a schedule of ``(t_us, tenant)`` entries as JSONL.

    Times are stored in microseconds (machine-independent); floats use
    Python's shortest round-trip repr, so ``load_schedule`` recovers the
    exact bit pattern and save→load→save is byte-identical.
    """
    with open(path, "w") as fh:
        header = {"format": SCHEDULE_FORMAT, "version": SCHEDULE_VERSION}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for t_us, tenant in entries:
            record = {"t_us": float(t_us)}
            if tenant is not None:
                record["tenant"] = int(tenant)
            fh.write(json.dumps(record, sort_keys=True) + "\n")


def load_schedule(path: str) -> List[Tuple[float, Optional[int]]]:
    """Load a schedule written by :func:`save_schedule` (byte-exact)."""
    entries: List[Tuple[float, Optional[int]]] = []
    with open(path) as fh:
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except ValueError as error:
            raise ValueError(f"malformed schedule header in {path!r}: {error}")
        if header.get("format") != SCHEDULE_FORMAT:
            raise ValueError(
                f"{path!r} is not a {SCHEDULE_FORMAT} file: "
                f"format={header.get('format')!r}"
            )
        if header.get("version") != SCHEDULE_VERSION:
            raise ValueError(
                f"unsupported schedule version {header.get('version')!r} "
                f"in {path!r}"
            )
        last = -math.inf
        for line_no, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            record = json.loads(line)
            t_us = float(record["t_us"])
            if not math.isfinite(t_us) or t_us < 0:
                raise ValueError(
                    f"{path!r}:{line_no}: arrival time must be finite and "
                    f">= 0, got {t_us}"
                )
            if t_us < last:
                raise ValueError(
                    f"{path!r}:{line_no}: arrival times must be "
                    f"non-decreasing ({t_us} after {last})"
                )
            last = t_us
            tenant = record.get("tenant")
            entries.append((t_us, None if tenant is None else int(tenant)))
    return entries


@dataclass(frozen=True)
class TraceReplay(ArrivalProcess):
    """Deterministic replay of a recorded arrival schedule.

    The schedule file (see :func:`save_schedule`) stores microsecond
    timestamps plus optional tenant tags; replay consumes no RNG at all,
    so two replays of the same file are trivially identical.
    """

    path: str

    kind = "replay"

    def schedule(self, rng, n, frequency_ghz):
        entries = load_schedule(self.path)
        if len(entries) < n:
            raise ValueError(
                f"replay schedule {self.path!r} has {len(entries)} arrivals, "
                f"but the run needs {n}"
            )
        return [
            Arrival(_us_to_cycles(t_us, frequency_ghz), tenant=tenant)
            for t_us, tenant in entries[:n]
        ]

    def describe(self):
        return {"kind": self.kind, "path": self.path}


def _floats(args: str, spec: str, count: int) -> List[float]:
    parts = args.split(",") if args else []
    if len(parts) != count:
        raise ValueError(
            f"arrival spec {spec!r} needs {count} comma-separated "
            f"parameters, got {len(parts)}"
        )
    out = []
    for part in parts:
        try:
            out.append(float(part))
        except ValueError:
            raise ValueError(
                f"invalid arrival spec {spec!r}: {part!r} is not a number"
            ) from None
    return out


def parse_arrivals(text: str) -> ArrivalProcess:
    """Parse an arrival-process spec string.

    Accepted forms::

        closed
        poisson:<rate_per_s>
        onoff:<rate_on>,<rate_off>,<on_ms>,<off_ms>
        diurnal:<rate_per_s>,<period_ms>,<depth>
        zipf:<rate_per_s>,<s>,<tenants>
        replay:<path>
    """
    kind, _, args = text.partition(":")
    if kind == "closed":
        if args:
            raise ValueError(f"closed-loop arrivals take no parameters: {text!r}")
        return ClosedLoop()
    if kind == "poisson":
        (rate,) = _floats(args, text, 1)
        return PoissonArrivals(rate_per_s=rate)
    if kind == "onoff":
        rate_on, rate_off, on_ms, off_ms = _floats(args, text, 4)
        return OnOffArrivals(
            rate_on_per_s=rate_on, rate_off_per_s=rate_off,
            on_ms=on_ms, off_ms=off_ms,
        )
    if kind == "diurnal":
        rate, period_ms, depth = _floats(args, text, 3)
        return DiurnalArrivals(rate_per_s=rate, period_ms=period_ms, depth=depth)
    if kind == "zipf":
        rate, s, tenants = _floats(args, text, 3)
        if tenants != int(tenants):
            raise ValueError(f"tenant count must be an integer in {text!r}")
        return ZipfArrivals(rate_per_s=rate, s=s, tenants=int(tenants))
    if kind == "replay":
        if not args:
            raise ValueError(f"replay arrivals need a schedule path: {text!r}")
        return TraceReplay(path=args)
    raise ValueError(
        f"unknown arrival process {text!r}; expected closed, poisson:..., "
        "onoff:..., diurnal:..., zipf:..., or replay:<path>"
    )
