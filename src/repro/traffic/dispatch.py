"""Pluggable request-dispatch (placement) policies.

When a request stage becomes runnable, the simulator asks its dispatch
policy which core's runqueue should host it.  The policy sees the
candidate cores of the target machine and a :class:`QueueView` of the
current queue state; it must be deterministic given its seed, because
dispatch order is part of the byte-identity surface the golden and
differential suites pin.

``RoundRobinDispatch`` reproduces the simulator's historical per-machine
round-robin placement exactly, so the default configuration is
byte-identical to the pre-traffic-layer simulator.  The class-aware
policy is the PowerTracer-style placement the paper's online signatures
enable: requests of behavior classes with heavy observed service demand
are segregated from light ones, either from a supplied class map (e.g.
derived from a trained :class:`repro.core.identification.OnlineIdentifier`
bank) or learned online from completion feedback.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

__all__ = [
    "ClassAwareDispatch",
    "DispatchPolicy",
    "JoinShortestQueue",
    "LeastOutstandingWork",
    "QueueView",
    "RandomDispatch",
    "RoundRobinDispatch",
    "class_map_from_identifier",
    "parse_dispatch",
]

#: Domain-separation constant mixed into policy RNG streams so a seeded
#: policy never shares draws with the simulator's own generator.
_DISPATCH_STREAM = 0x0D15_7A7C


class QueueView(Protocol):
    """What a policy may observe about the queues at decision time."""

    def queue_depth(self, core_id: int) -> int:
        """Tasks waiting on the core's runqueue plus the running one."""
        ...

    def outstanding_work(self, core_id: int) -> float:
        """Remaining stage instructions queued + running on the core."""
        ...


class DispatchPolicy:
    """Base policy: where does a runnable request stage go?"""

    #: Registry/spec name (``rr``, ``jsq``, ...).
    name: str = "abstract"

    def reset(self, seed: int) -> None:
        """Clear per-run mutable state; called once per simulation."""

    def choose(
        self,
        machine_id: int,
        machine_cores: Sequence[int],
        spec,
        stage_index: int,
        view: QueueView,
    ) -> int:
        """Return the core (from ``machine_cores``) to enqueue on."""
        raise NotImplementedError

    def observe_completion(self, kind: str, cpu_time_us: float) -> None:
        """Completion feedback hook for learning policies."""

    def describe(self) -> dict:
        """JSON-serializable identity, for trace/result metadata."""
        return {"policy": self.name}


class RoundRobinDispatch(DispatchPolicy):
    """Per-machine round-robin (the historical placement, byte-identical)."""

    name = "rr"

    def __init__(self):
        self._machine_rr: Dict[int, int] = {}

    def reset(self, seed: int) -> None:
        self._machine_rr = {}

    def choose(self, machine_id, machine_cores, spec, stage_index, view):
        rr = self._machine_rr.get(machine_id, 0)
        self._machine_rr[machine_id] = rr + 1
        return machine_cores[rr % len(machine_cores)]


class RandomDispatch(DispatchPolicy):
    """Uniform random placement from a dedicated seeded stream."""

    name = "random"

    def __init__(self):
        self._rng = np.random.default_rng(0)

    def reset(self, seed: int) -> None:
        self._rng = np.random.default_rng([seed, _DISPATCH_STREAM])

    def choose(self, machine_id, machine_cores, spec, stage_index, view):
        return machine_cores[int(self._rng.integers(len(machine_cores)))]


class JoinShortestQueue(DispatchPolicy):
    """Join the candidate core with the fewest queued+running tasks.

    Ties break toward the lowest core id, keeping the decision a pure
    function of queue state.
    """

    name = "jsq"

    def choose(self, machine_id, machine_cores, spec, stage_index, view):
        return min(machine_cores, key=lambda cid: (view.queue_depth(cid), cid))


class LeastOutstandingWork(DispatchPolicy):
    """Join the core with the least remaining queued+running instructions.

    JSQ counts heads; this weighs them — a queue of two tiny requests is
    preferred over one giant one.
    """

    name = "low"

    def choose(self, machine_id, machine_cores, spec, stage_index, view):
        return min(
            machine_cores, key=lambda cid: (view.outstanding_work(cid), cid)
        )


class ClassAwareDispatch(DispatchPolicy):
    """Signature/class-aware placement.

    Requests are partitioned by behavior class and each class gets an
    affinity subset of the machine's cores (class ``c`` prefers cores
    whose index ``i`` satisfies ``i % groups == c % groups``), with
    join-shortest-queue inside the subset.  Keeping heavy classes off
    light classes' cores is the contention-easing placement the paper's
    online identification makes possible across tiers.

    Two ways to know a request's class:

    * an explicit ``classes`` map (request kind -> class index), e.g.
      built from a trained signature bank via
      :func:`class_map_from_identifier`;
    * learned online — per-kind EWMA of observed CPU time from
      :meth:`observe_completion`, with kinds split into a heavy and a
      light class around the running median.

    Unknown kinds (and everything before the first completion) fall back
    to plain JSQ over all cores.
    """

    name = "classaware"

    def __init__(
        self,
        classes: Optional[Dict[str, int]] = None,
        ewma_alpha: float = 0.3,
    ):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.classes = dict(classes) if classes else None
        self.ewma_alpha = ewma_alpha
        self._service_ewma_us: Dict[str, float] = {}

    def reset(self, seed: int) -> None:
        self._service_ewma_us = {}

    def observe_completion(self, kind: str, cpu_time_us: float) -> None:
        previous = self._service_ewma_us.get(kind)
        if previous is None:
            self._service_ewma_us[kind] = float(cpu_time_us)
        else:
            self._service_ewma_us[kind] = (
                self.ewma_alpha * float(cpu_time_us)
                + (1.0 - self.ewma_alpha) * previous
            )

    def _class_of(self, kind: str) -> Optional[int]:
        if self.classes is not None:
            return self.classes.get(kind)
        if kind not in self._service_ewma_us or len(self._service_ewma_us) < 2:
            return None
        # Heavy/light split around the median observed service demand.
        demands = sorted(self._service_ewma_us.values())
        median = demands[len(demands) // 2]
        return 1 if self._service_ewma_us[kind] >= median else 0

    def _num_classes(self) -> int:
        if self.classes is not None:
            return max(self.classes.values()) + 1 if self.classes else 1
        return 2

    def choose(self, machine_id, machine_cores, spec, stage_index, view):
        cls = self._class_of(spec.kind)
        candidates: List[int] = list(machine_cores)
        if cls is not None and len(machine_cores) > 1:
            groups = min(self._num_classes(), len(machine_cores))
            if groups > 1:
                subset = [
                    cid
                    for i, cid in enumerate(machine_cores)
                    if i % groups == cls % groups
                ]
                if subset:
                    candidates = subset
        return min(candidates, key=lambda cid: (view.queue_depth(cid), cid))

    def describe(self):
        return {
            "policy": self.name,
            "classes": (
                dict(sorted(self.classes.items())) if self.classes else None
            ),
            "ewma_alpha": self.ewma_alpha,
        }


def class_map_from_identifier(identifier) -> Dict[str, int]:
    """Dense class indices from a fitted signature bank's labels.

    ``identifier`` is a :class:`repro.core.identification.OnlineIdentifier`
    (PR 3's online runtime trains one from a clean calibration run); the
    returned map feeds :class:`ClassAwareDispatch`, closing the loop from
    online signature identification to placement.
    """
    labels = getattr(identifier, "bank", None)
    labels = getattr(labels, "labels", None)
    if labels is None:
        raise ValueError(
            "identifier has no fitted signature bank; call fit() first"
        )
    return {label: index for index, label in enumerate(sorted(set(labels)))}


_POLICIES = {
    "rr": RoundRobinDispatch,
    "random": RandomDispatch,
    "jsq": JoinShortestQueue,
    "low": LeastOutstandingWork,
    "classaware": ClassAwareDispatch,
}


def parse_dispatch(text: str) -> DispatchPolicy:
    """Parse a dispatch-policy name into a fresh policy instance."""
    try:
        factory = _POLICIES[text]
    except KeyError:
        raise ValueError(
            f"unknown dispatch policy {text!r}; "
            f"available: {', '.join(sorted(_POLICIES))}"
        ) from None
    return factory()
