"""Per-request latency accounting for open-system runs.

The :class:`LatencyStore` records, for every admitted request, the three
timestamps that matter to an open-loop study — arrival, first dispatch,
and completion — and derives queueing delay (arrival → first run) and
sojourn/total latency (arrival → completion).  Summaries report the
p50/p95/p99 columns of a throughput-vs-tail-latency curve through
:func:`repro.analysis.stats.weighted_percentile`, and
:meth:`register_metrics` folds everything into the PR 2 metrics
registry so ``--metrics-out`` snapshots carry the latency distributions.

Shed requests (bounded-admission overload, see
:class:`repro.traffic.TrafficConfig`) are counted but never measured:
they were refused, not served.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.stats import weighted_mean, weighted_percentile

__all__ = ["LatencyStore", "RequestLatency"]


@dataclass
class RequestLatency:
    """One request's open-system timeline (cycles; us via the store)."""

    request_id: int
    kind: str
    tenant: Optional[int]
    arrival_cycle: float
    start_cycle: Optional[float] = None
    completion_cycle: Optional[float] = None


class LatencyStore:
    """Records per-request queueing + service latency with percentiles."""

    def __init__(self, frequency_ghz: float):
        if frequency_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {frequency_ghz}")
        self.frequency_ghz = frequency_ghz
        self._open: Dict[int, RequestLatency] = {}
        #: Completed records, in completion order (deterministic).
        self.records: List[RequestLatency] = []
        self.shed = 0
        self.first_arrival_cycle: Optional[float] = None
        self.last_completion_cycle: Optional[float] = None

    # ------------------------------------------------------------ recording

    def on_arrival(
        self,
        request_id: int,
        kind: str,
        cycle: float,
        tenant: Optional[int] = None,
    ) -> None:
        if request_id in self._open:
            raise ValueError(f"request {request_id} already arrived")
        self._open[request_id] = RequestLatency(
            request_id=request_id, kind=kind, tenant=tenant, arrival_cycle=cycle
        )
        if self.first_arrival_cycle is None:
            self.first_arrival_cycle = cycle

    def on_start(self, request_id: int, cycle: float) -> None:
        record = self._open.get(request_id)
        if record is not None and record.start_cycle is None:
            record.start_cycle = cycle

    def on_complete(self, request_id: int, cycle: float) -> None:
        record = self._open.pop(request_id)
        record.completion_cycle = cycle
        self.records.append(record)
        self.last_completion_cycle = cycle

    def on_shed(self, cycle: float) -> None:
        self.shed += 1

    # ------------------------------------------------------------- queries

    def _us(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e3)

    @property
    def completed(self) -> int:
        return len(self.records)

    def latencies_us(self) -> List[float]:
        """Total (queueing + service) latency per completed request."""
        return [
            self._us(r.completion_cycle - r.arrival_cycle) for r in self.records
        ]

    def queue_delays_us(self) -> List[float]:
        """Arrival → first-dispatch delay per completed request."""
        return [
            self._us(r.start_cycle - r.arrival_cycle)
            for r in self.records
            if r.start_cycle is not None
        ]

    def throughput_rps(self) -> Optional[float]:
        """Completed requests per second of simulated run extent."""
        if (
            not self.records
            or self.first_arrival_cycle is None
            or self.last_completion_cycle is None
        ):
            return None
        span = self.last_completion_cycle - self.first_arrival_cycle
        if span <= 0:
            return None
        return self.completed / (self._us(span) / 1e6)

    @staticmethod
    def _stats(values: List[float]) -> Dict[str, Optional[float]]:
        if not values:
            return {"mean": None, "p50": None, "p95": None, "p99": None}
        return {
            "mean": weighted_mean(values),
            "p50": weighted_percentile(values, 50.0),
            "p95": weighted_percentile(values, 95.0),
            "p99": weighted_percentile(values, 99.0),
        }

    def summary(self) -> Dict:
        """JSON-ready run summary: counts, throughput, latency columns."""
        return {
            "completed": self.completed,
            "shed": self.shed,
            "throughput_rps": self.throughput_rps(),
            "latency_us": self._stats(self.latencies_us()),
            "queue_us": self._stats(self.queue_delays_us()),
        }

    def rows_by_kind(self) -> List[Dict]:
        """Per-request-kind latency table rows (sorted by kind)."""
        by_kind: Dict[str, List[float]] = {}
        for record in self.records:
            by_kind.setdefault(record.kind, []).append(
                self._us(record.completion_cycle - record.arrival_cycle)
            )
        return [
            {
                "kind": kind,
                "requests": len(values),
                "mean_us": weighted_mean(values),
                "p99_us": weighted_percentile(values, 99.0),
            }
            for kind, values in sorted(by_kind.items())
        ]

    def rows_by_tenant(self) -> List[Dict]:
        """Per-tenant latency rows (empty when arrivals carry no tenants)."""
        by_tenant: Dict[int, List[float]] = {}
        for record in self.records:
            if record.tenant is None:
                continue
            by_tenant.setdefault(record.tenant, []).append(
                self._us(record.completion_cycle - record.arrival_cycle)
            )
        return [
            {
                "tenant": tenant,
                "requests": len(values),
                "mean_us": weighted_mean(values),
                "p99_us": weighted_percentile(values, 99.0),
            }
            for tenant, values in sorted(by_tenant.items())
        ]

    def register_metrics(self, registry) -> None:
        """Fill a :class:`repro.obs.metrics.MetricsRegistry` from the store."""
        registry.counter("requests_measured").inc(self.completed)
        registry.counter("requests_shed").inc(self.shed)
        latency = registry.histogram("request_latency_us")
        queueing = registry.histogram("request_queue_us")
        for value in self.latencies_us():
            latency.observe(value)
        for value in self.queue_delays_us():
            # Zero queueing (dispatched the same cycle) is real but the
            # histogram rejects non-positive weights, not values.
            queueing.observe(value)
