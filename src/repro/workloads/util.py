"""Small helpers shared by the workload generators."""

from __future__ import annotations

import numpy as np

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase


def jittered(rng: np.random.Generator, value: float, frac: float) -> float:
    """Multiplicatively jitter ``value`` by a ~N(0, frac) factor.

    Floored at half the nominal value so rare large negative draws cannot
    produce non-positive rates.
    """
    return max(0.5 * value, value * (1.0 + frac * rng.standard_normal()))


def jittered_int(rng: np.random.Generator, value: float, frac: float, lo: int = 1000) -> int:
    """Jittered instruction count, floored to a sane minimum."""
    return max(lo, int(round(jittered(rng, value, frac))))


def phase(
    name: str,
    instructions: int,
    cpi: float,
    refs: float,
    miss: float,
    footprint: float,
    entry: str = None,
    rate: float = 0.0,
    pool: tuple = (),
) -> Phase:
    """Terse phase constructor used throughout the generators."""
    return Phase(
        name=name,
        instructions=int(instructions),
        behavior=PhaseBehavior(
            base_cpi=cpi,
            l2_refs_per_ins=refs,
            l2_miss_ratio=miss,
            cache_footprint=footprint,
        ),
        entry_syscall=entry,
        syscall_rate_per_ins=rate,
        syscall_pool=pool,
    )
