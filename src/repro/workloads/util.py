"""Small helpers shared by the workload generators.

Beyond the scalar jitter helpers, this module defines the *phase-def*
layer: a declarative description of one phase's nominal parameters
(:class:`PhaseDef`), with jittered fields marked by :class:`Jit`.  Each
generator module exports pure def producers (no main-RNG draws), and two
materializers turn defs into phases:

* :func:`materialize` — the scalar reference path: one ``jittered`` /
  ``jittered_int`` draw per field, in pinned (instructions, cpi, refs)
  order, building validated frozen :class:`~repro.workloads.base.Phase`
  dataclasses;
* :class:`repro.workloads.genfast.PhaseBlock` — the generation fast
  path: the same defs compiled once into vectorized jitter tables that
  consume one block-drawn normal array per request in the identical
  bitstream order.

Keeping both consumers on one def table is what makes the fast path's
byte-identity a structural property instead of a parallel-maintenance
burden.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple, Union

import numpy as np

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase


def jittered(rng: np.random.Generator, value: float, frac: float) -> float:
    """Multiplicatively jitter ``value`` by a ~N(0, frac) factor.

    Floored at half the nominal value so rare large negative draws cannot
    produce non-positive rates.
    """
    return max(0.5 * value, value * (1.0 + frac * rng.standard_normal()))


def jittered_int(rng: np.random.Generator, value: float, frac: float, lo: int = 1000) -> int:
    """Jittered instruction count, floored to a sane minimum."""
    return max(lo, int(round(jittered(rng, value, frac))))


class Jit(NamedTuple):
    """Marks a per-request jittered field of a :class:`PhaseDef`."""

    base: float
    frac: float


class PhaseDef(NamedTuple):
    """Nominal parameters of one phase, before per-request jitter.

    ``instructions`` and ``cpi`` are always jittered (by ``ins_frac`` /
    ``cpi_frac``); ``refs`` is either a plain float (constant across
    requests) or a :class:`Jit`.  ``miss``/``footprint``/``entry``/
    ``rate``/``pool`` are template constants.
    """

    name: str
    instructions: float
    ins_frac: float
    cpi: float
    cpi_frac: float
    refs: Union[float, Jit]
    miss: float
    footprint: float
    entry: Optional[str] = None
    rate: float = 0.0
    pool: Tuple[str, ...] = ()


def materialize(rng: np.random.Generator, defs) -> list:
    """Scalar reference materializer: defs -> jittered ``Phase`` list.

    Draw order per def is pinned to (instructions, cpi, refs?) — the
    order every generator has always used — so the RNG bitstream is
    unchanged by the def-table refactor and the generation fast path can
    reproduce it with one block draw.
    """
    phases = []
    for d in defs:
        ins = jittered_int(rng, d.instructions, d.ins_frac)
        cpi = jittered(rng, d.cpi, d.cpi_frac)
        refs = d.refs
        if type(refs) is Jit:
            refs = jittered(rng, refs.base, refs.frac)
        phases.append(
            phase(
                d.name,
                ins,
                cpi=cpi,
                refs=refs,
                miss=d.miss,
                footprint=d.footprint,
                entry=d.entry,
                rate=d.rate,
                pool=d.pool,
            )
        )
    return phases


def phase(
    name: str,
    instructions: int,
    cpi: float,
    refs: float,
    miss: float,
    footprint: float,
    entry: Optional[str] = None,
    rate: float = 0.0,
    pool: Tuple[str, ...] = (),
) -> Phase:
    """Terse phase constructor used throughout the generators.

    Validates the behavior fields up front so a bad generator constant
    fails with the *phase name* attached instead of a bare
    ``PhaseBehavior`` field error.
    """
    if refs < 0 or miss < 0 or footprint < 0:
        raise ValueError(
            f"phase {name!r}: refs/miss/footprint must be non-negative "
            f"(got refs={refs}, miss={miss}, footprint={footprint})"
        )
    try:
        behavior = PhaseBehavior(
            base_cpi=cpi,
            l2_refs_per_ins=refs,
            l2_miss_ratio=miss,
            cache_footprint=footprint,
        )
    except ValueError as exc:
        raise ValueError(f"phase {name!r}: {exc}") from None
    return Phase(
        name=name,
        instructions=int(instructions),
        behavior=behavior,
        entry_syscall=entry,
        syscall_rate_per_ins=rate,
        syscall_pool=pool,
    )
