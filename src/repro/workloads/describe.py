"""Static workload characterization (no simulation required).

``describe(workload)`` samples request specs and summarizes each request
kind's composition — lengths, solo CPI, cache appetite, syscall density —
the numbers a user needs to sanity-check a workload model against its
source application before running experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class KindProfile:
    """Static profile of one request kind."""

    kind: str
    share: float
    mean_instructions: float
    mean_solo_cpi: float
    mean_l2_refs_per_ins: float
    mean_footprint: float
    #: Expected system calls per million instructions (entries + rate).
    syscalls_per_mega_ins: float
    mean_stages: float


def describe(
    workload,
    n_requests: int = 200,
    seed: int = 0,
    miss_penalty_cycles: float = 220.0,
) -> Dict[str, KindProfile]:
    """Sample ``n_requests`` specs and profile each request kind."""
    if n_requests < 1:
        raise ValueError("n_requests must be positive")
    rng = np.random.default_rng(seed)
    specs = [workload.sample_request(rng, i) for i in range(n_requests)]

    by_kind: Dict[str, List] = {}
    for spec in specs:
        by_kind.setdefault(spec.kind, []).append(spec)

    profiles: Dict[str, KindProfile] = {}
    for kind, members in sorted(by_kind.items()):
        instructions = []
        solo_cpis = []
        refs = []
        footprints = []
        syscall_density = []
        stages = []
        for spec in members:
            total = spec.total_instructions
            instructions.append(total)
            solo_cpis.append(spec.solo_cpi(miss_penalty_cycles))
            weighted_refs = 0.0
            weighted_fp = 0.0
            n_syscalls = 0.0
            for p in spec.phases():
                weighted_refs += p.instructions * p.behavior.l2_refs_per_ins
                weighted_fp += p.instructions * p.behavior.cache_footprint
                if p.entry_syscall is not None:
                    n_syscalls += 1
                n_syscalls += p.instructions * p.syscall_rate_per_ins
            n_syscalls += 2 * (len(spec.stages) - 1)  # socket hand-offs
            refs.append(weighted_refs / total)
            footprints.append(weighted_fp / total)
            syscall_density.append(n_syscalls / total * 1e6)
            stages.append(len(spec.stages))
        profiles[kind] = KindProfile(
            kind=kind,
            share=len(members) / n_requests,
            mean_instructions=float(np.mean(instructions)),
            mean_solo_cpi=float(np.mean(solo_cpis)),
            mean_l2_refs_per_ins=float(np.mean(refs)),
            mean_footprint=float(np.mean(footprints)),
            syscalls_per_mega_ins=float(np.mean(syscall_density)),
            mean_stages=float(np.mean(stages)),
        )
    return profiles


def describe_table(workload, n_requests: int = 200, seed: int = 0) -> str:
    """Human-readable profile table for one workload."""
    from repro.analysis.report import format_table

    profiles = describe(workload, n_requests=n_requests, seed=seed)
    rows = [
        {
            "kind": p.kind,
            "share": p.share,
            "mean_Mins": p.mean_instructions / 1e6,
            "solo_cpi": p.mean_solo_cpi,
            "l2_refs/ins": p.mean_l2_refs_per_ins,
            "footprint": p.mean_footprint,
            "syscalls/Mins": p.syscalls_per_mega_ins,
            "stages": p.mean_stages,
        }
        for p in profiles.values()
    ]
    return format_table(rows, title=f"workload profile: {workload.name}")
