"""RUBiS — a three-tier J2EE online auction service.

RUBiS runs a front-end web server, nine business-logic Enterprise Java Bean
components, and a back-end MySQL database; a request propagates across all
three tiers through socket operations, which is exactly the request-context
propagation the paper's kernel tracker must follow.  The componentized
architecture also makes system calls frequent (72% probability of a syscall
within 16 us of any instant, Figure 4).  A typical request executes a few
million instructions (Figure 2 shows SearchItemsByCategory spanning ~4-5 M).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.base import Phase, RequestSpec, Stage
from repro.workloads.util import jittered, jittered_int, phase

_WEB_POOL = ("read", "writev", "poll")
_EJB_POOL = ("read", "write", "futex")
_DB_POOL = ("pread64", "read", "write")

#: The nine EJB components of RUBiS.
EJB_COMPONENTS = (
    "IDManager",
    "Category",
    "Region",
    "User",
    "Item",
    "Bid",
    "Buy",
    "Comment",
    "Query",
)

#: Request kinds: (name, probability, EJB components touched,
#: DB work in mega-instructions, EJB work in mega-instructions).
INTERACTION_MIX = (
    ("BrowseCategories", 0.12, ("Category",), 0.3, 0.6),
    ("SearchItemsByCategory", 0.22, ("Category", "Item", "Query"), 1.6, 1.2),
    ("SearchItemsByRegion", 0.10, ("Region", "Item", "Query"), 1.5, 1.2),
    ("ViewItem", 0.22, ("Item", "Bid"), 0.8, 0.9),
    ("ViewUserInfo", 0.08, ("User", "Comment"), 0.7, 0.8),
    ("PutBid", 0.10, ("Item", "Bid", "User"), 0.6, 1.1),
    ("StoreBid", 0.08, ("Bid", "IDManager"), 0.9, 0.9),
    ("AboutMe", 0.08, ("User", "Item", "Bid", "Comment"), 1.8, 1.5),
)


class RubisWorkload:
    """Generator for RUBiS auction-site interactions."""

    name = "rubis"
    sampling_period_us = 100.0
    window_instructions = 100_000
    kinds = tuple(i[0] for i in INTERACTION_MIX)

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        mix = np.array([i[1] for i in INTERACTION_MIX])
        idx = int(rng.choice(len(INTERACTION_MIX), p=mix / mix.sum()))
        kind, _, components, db_mega, ejb_mega = INTERACTION_MIX[idx]
        category = int(rng.integers(20))

        web_in = [
            phase(
                "tomcat_parse",
                jittered_int(rng, 180_000, 0.12),
                cpi=jittered(rng, 1.45, 0.08),
                refs=0.014,
                miss=0.22,
                footprint=0.35,
                entry="read",
                rate=1 / 14_000,
                pool=_WEB_POOL,
            )
        ]

        ejb_phases: List[Phase] = []
        per_component = ejb_mega * 1_000_000 / len(components)
        for component in components:
            ejb_phases.append(
                phase(
                    f"ejb_{component}",
                    jittered_int(rng, per_component, 0.18),
                    cpi=jittered(rng, 1.75, 0.10),
                    refs=jittered(rng, 0.022, 0.12),
                    miss=0.26,
                    footprint=0.55,
                    entry="read",
                    rate=1 / 14_000,
                    pool=_EJB_POOL,
                )
            )
            # JIT/GC interleaving bursts typical of a JVM app server.
            if rng.random() < 0.30:
                ejb_phases.append(
                    phase(
                        f"jvm_gc_{component}",
                        jittered_int(rng, 150_000, 0.30),
                        cpi=jittered(rng, 2.4, 0.15),
                        refs=0.030,
                        miss=0.40,
                        footprint=0.70,
                        rate=1 / 30_000,
                        pool=_EJB_POOL,
                    )
                )

        db_phases = [
            phase(
                "db_parse",
                jittered_int(rng, 100_000, 0.12),
                cpi=jittered(rng, 1.10, 0.08),
                refs=0.006,
                miss=0.12,
                footprint=0.20,
                entry="read",
                rate=1 / 20_000,
                pool=_DB_POOL,
            ),
            phase(
                "db_execute",
                jittered_int(rng, db_mega * 1_000_000, 0.20),
                cpi=jittered(rng, 1.30, 0.08),
                refs=jittered(rng, 0.024, 0.10),
                miss=0.38,
                footprint=0.85,
                rate=1 / 12_000,
                pool=_DB_POOL,
            ),
        ]

        render = [
            phase(
                "ejb_render",
                jittered_int(rng, 350_000, 0.15),
                cpi=jittered(rng, 1.85, 0.10),
                refs=0.016,
                miss=0.24,
                footprint=0.40,
                entry="read",
                rate=1 / 14_000,
                pool=_EJB_POOL,
            )
        ]
        web_out = [
            phase(
                "tomcat_respond",
                jittered_int(rng, 220_000, 0.12),
                cpi=jittered(rng, 1.55, 0.08),
                refs=0.012,
                miss=0.20,
                footprint=0.30,
                entry="writev",
                rate=1 / 14_000,
                pool=_WEB_POOL,
            )
        ]

        stages = (
            Stage(tier="tomcat", phases=tuple(web_in)),
            Stage(tier="jboss", phases=tuple(ejb_phases)),
            Stage(tier="mysql", phases=tuple(db_phases)),
            Stage(tier="jboss_render", phases=tuple(render)),
            Stage(tier="tomcat_out", phases=tuple(web_out)),
        )
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=kind,
            stages=stages,
            metadata={"category": category, "components": components},
        )
