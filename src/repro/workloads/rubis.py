"""RUBiS — a three-tier J2EE online auction service.

RUBiS runs a front-end web server, nine business-logic Enterprise Java Bean
components, and a back-end MySQL database; a request propagates across all
three tiers through socket operations, which is exactly the request-context
propagation the paper's kernel tracker must follow.  The componentized
architecture also makes system calls frequent (72% probability of a syscall
within 16 us of any instant, Figure 4).  A typical request executes a few
million instructions (Figure 2 shows SearchItemsByCategory spanning ~4-5 M).

An interaction's phase plan is declarative (:func:`interaction_segments`):
a web-in head def, one (component, gc) def pair per EJB component — the GC
burst fires on a mid-plan ``rng.random() < 0.30`` draw between component
jitters, so the pairs stay separate blocks — and a fixed four-def tail
(db parse/execute, render, respond) that maps onto the remaining tiers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.base import Phase, RequestSpec, Stage
from repro.workloads.util import Jit, PhaseDef, materialize

_WEB_POOL = ("read", "writev", "poll")
_EJB_POOL = ("read", "write", "futex")
_DB_POOL = ("pread64", "read", "write")

#: The nine EJB components of RUBiS.
EJB_COMPONENTS = (
    "IDManager",
    "Category",
    "Region",
    "User",
    "Item",
    "Bid",
    "Buy",
    "Comment",
    "Query",
)

#: Request kinds: (name, probability, EJB components touched,
#: DB work in mega-instructions, EJB work in mega-instructions).
INTERACTION_MIX = (
    ("BrowseCategories", 0.12, ("Category",), 0.3, 0.6),
    ("SearchItemsByCategory", 0.22, ("Category", "Item", "Query"), 1.6, 1.2),
    ("SearchItemsByRegion", 0.10, ("Region", "Item", "Query"), 1.5, 1.2),
    ("ViewItem", 0.22, ("Item", "Bid"), 0.8, 0.9),
    ("ViewUserInfo", 0.08, ("User", "Comment"), 0.7, 0.8),
    ("PutBid", 0.10, ("Item", "Bid", "User"), 0.6, 1.1),
    ("StoreBid", 0.08, ("Bid", "IDManager"), 0.9, 0.9),
    ("AboutMe", 0.08, ("User", "Item", "Bid", "Comment"), 1.8, 1.5),
)

#: Probability that a JVM GC burst follows an EJB component phase.
GC_PROBABILITY = 0.30

_SEGMENT_CACHE = {}


def interaction_segments(idx: int):
    """Segmented phase-def plan for interaction ``INTERACTION_MIX[idx]``.

    Returns ``(head, comp_pairs, tail)`` where ``head`` is the web-in def
    tuple, ``comp_pairs`` is one ``(component_def, gc_def)`` pair per EJB
    component, and ``tail`` is the fixed (db_parse, db_execute,
    ejb_render, tomcat_respond) def tuple.  Pure; no main-RNG draws.
    """
    cached = _SEGMENT_CACHE.get(idx)
    if cached is not None:
        return cached
    _, _, components, db_mega, ejb_mega = INTERACTION_MIX[idx]

    head = (
        PhaseDef(
            "tomcat_parse", 180_000, 0.12, 1.45, 0.08, 0.014, 0.22, 0.35,
            "read", 1 / 14_000, _WEB_POOL,
        ),
    )

    per_component = ejb_mega * 1_000_000 / len(components)
    comp_pairs = tuple(
        (
            PhaseDef(
                f"ejb_{component}", per_component, 0.18, 1.75, 0.10,
                Jit(0.022, 0.12), 0.26, 0.55, "read", 1 / 14_000, _EJB_POOL,
            ),
            # JIT/GC interleaving bursts typical of a JVM app server.
            PhaseDef(
                f"jvm_gc_{component}", 150_000, 0.30, 2.4, 0.15,
                0.030, 0.40, 0.70, None, 1 / 30_000, _EJB_POOL,
            ),
        )
        for component in components
    )

    tail = (
        PhaseDef(
            "db_parse", 100_000, 0.12, 1.10, 0.08, 0.006, 0.12, 0.20,
            "read", 1 / 20_000, _DB_POOL,
        ),
        PhaseDef(
            "db_execute", db_mega * 1_000_000, 0.20, 1.30, 0.08,
            Jit(0.024, 0.10), 0.38, 0.85, None, 1 / 12_000, _DB_POOL,
        ),
        PhaseDef(
            "ejb_render", 350_000, 0.15, 1.85, 0.10, 0.016, 0.24, 0.40,
            "read", 1 / 14_000, _EJB_POOL,
        ),
        PhaseDef(
            "tomcat_respond", 220_000, 0.12, 1.55, 0.08, 0.012, 0.20, 0.30,
            "writev", 1 / 14_000, _WEB_POOL,
        ),
    )

    result = (head, comp_pairs, tail)
    _SEGMENT_CACHE[idx] = result
    return result


class RubisWorkload:
    """Generator for RUBiS auction-site interactions."""

    name = "rubis"
    #: Per-phase jitter makes behavior values effectively unique, so
    #: whole-behavior-set memo keys never recur (fastpath hint).
    jittered_behaviors = True
    sampling_period_us = 100.0
    window_instructions = 100_000
    kinds = tuple(i[0] for i in INTERACTION_MIX)

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        mix = np.array([i[1] for i in INTERACTION_MIX])
        idx = int(rng.choice(len(INTERACTION_MIX), p=mix / mix.sum()))
        kind, _, components, _, _ = INTERACTION_MIX[idx]
        category = int(rng.integers(20))
        head, comp_pairs, tail = interaction_segments(idx)

        web_in = materialize(rng, head)

        ejb_phases: List[Phase] = []
        for comp_def, gc_def in comp_pairs:
            ejb_phases.extend(materialize(rng, (comp_def,)))
            if rng.random() < GC_PROBABILITY:
                ejb_phases.extend(materialize(rng, (gc_def,)))

        tail_phases = materialize(rng, tail)
        db_phases = tail_phases[:2]
        render = tail_phases[2:3]
        web_out = tail_phases[3:4]

        stages = (
            Stage(tier="tomcat", phases=tuple(web_in)),
            Stage(tier="jboss", phases=tuple(ejb_phases)),
            Stage(tier="mysql", phases=tuple(db_phases)),
            Stage(tier="jboss_render", phases=tuple(render)),
            Stage(tier="tomcat_out", phases=tuple(web_out)),
        )
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=kind,
            stages=stages,
            metadata={"category": category, "components": components},
        )

