"""WeBWorK — user-content-driven online math homework application.

WeBWorK requests interpret teacher-supplied problem scripts (the paper's
deployment has ~3,000 problem sets) and are by far the longest of the five
applications: several hundred million instructions (Figure 2 shows one at
~600 M).  Three properties from the paper shape the model:

* the early part of every request follows *identical* processing semantics
  (Apache dispatch, Perl interpreter startup, Moodle session handling) —
  this is why online signatures built from the first 10 M instructions
  cannot identify WeBWorK requests (Figure 10);
* the later portion runs through a large number of fine-grained Perl
  modules, producing unstable CPI fluctuations that do not form long stable
  phases (Figure 2);
* processing is compute-intensive with few system calls (81% probability of
  a syscall only within 1 ms, Figure 4) and a tiny shared-cache footprint,
  so multicore co-running barely affects it (Figure 1).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.base import Phase, RequestSpec, single_stage
from repro.workloads.util import jittered, jittered_int, phase

_PERL_POOL = ("brk", "mmap", "stat")

#: Number of distinct teacher-created problem sets in the deployment.
NUM_PROBLEMS = 3_000

#: The identical prelude every request executes: (name, instructions, cpi,
#: entry syscall).  Total ~22 M instructions, beyond the 10 M prefix that
#: Figure 10 shows is insufficient for identification.
_PRELUDE = (
    ("apache_dispatch", 2_000_000, 1.15, "read"),
    ("perl_startup", 6_000_000, 1.30, "stat"),
    ("moodle_session", 5_000_000, 1.25, "open"),
    ("course_load", 6_000_000, 1.35, "read"),
    ("problem_fetch", 3_000_000, 1.20, "open"),
)


class WeBWorKWorkload:
    """Generator for WeBWorK problem-rendering requests."""

    name = "webwork"
    sampling_period_us = 1_000.0
    window_instructions = 2_000_000
    kinds = tuple(f"problem_{i}" for i in range(NUM_PROBLEMS))

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        problem_id = int(rng.integers(NUM_PROBLEMS))
        return self.build_problem(rng, request_id, problem_id)

    def build_problem(
        self, rng: np.random.Generator, request_id: int, problem_id: int
    ) -> RequestSpec:
        """Materialize one request rendering a specific problem."""
        phases: List[Phase] = []

        # Identical prelude (near-zero jitter: same code path every time).
        for name, ins, cpi, entry in _PRELUDE:
            phases.append(
                phase(
                    name,
                    jittered_int(rng, ins, 0.01),
                    cpi=jittered(rng, cpi, 0.01),
                    refs=0.002,
                    miss=0.15,
                    footprint=0.05,
                    entry=entry,
                    rate=1 / 1_200_000,
                    pool=_PERL_POOL,
                )
            )

        # Problem-specific translation/compute: deterministic per problem id
        # (the problem script is fixed content), so requests for the same
        # problem share macro structure.
        problem_rng = np.random.default_rng(problem_id)
        n_macro = int(problem_rng.integers(5, 11))
        macro_plan = [
            (
                float(problem_rng.uniform(8e6, 30e6)),
                float(problem_rng.uniform(1.05, 1.65)),
            )
            for _ in range(n_macro)
        ]
        for step, (ins, cpi) in enumerate(macro_plan):
            phases.append(
                phase(
                    f"translate_{step}",
                    jittered_int(rng, ins, 0.04),
                    cpi=jittered(rng, cpi, 0.03),
                    refs=0.002,
                    miss=0.15,
                    footprint=0.05,
                    rate=1 / 1_200_000,
                    pool=_PERL_POOL,
                )
            )

        # Unstable render tail: many fine-grained Perl-module phases.  The
        # tail *structure* (which modules run, their lengths and inherent
        # CPIs, where graphics bursts fall) is determined by the problem
        # content — two requests for the same problem share the same
        # instruction stream, which is what makes reference-driven anomaly
        # analysis (Figure 9) meaningful — while per-request jitter stays
        # small.
        n_tail = int(problem_rng.integers(35, 75))
        for step in range(n_tail):
            if problem_rng.random() < 0.12:
                # Graphics rendering burst: the one WeBWorK activity with a
                # real shared-cache footprint.
                phases.append(
                    phase(
                        f"render_gfx_{step}",
                        jittered_int(
                            rng, float(problem_rng.uniform(2e6, 4e6)), 0.03
                        ),
                        cpi=jittered(rng, 2.3, 0.03),
                        refs=0.012,
                        miss=0.35,
                        footprint=0.35,
                        rate=1 / 1_200_000,
                        pool=_PERL_POOL,
                    )
                )
            else:
                phases.append(
                    phase(
                        f"perl_module_{step}",
                        jittered_int(
                            rng, float(problem_rng.uniform(0.8e6, 4e6)), 0.03
                        ),
                        cpi=jittered(
                            rng, float(problem_rng.uniform(0.95, 2.05)), 0.03
                        ),
                        refs=0.002,
                        miss=0.15,
                        footprint=0.05,
                        rate=1 / 1_200_000,
                        pool=_PERL_POOL,
                    )
                )

        phases.append(
            phase(
                "answer_save",
                jittered_int(rng, 3_000_000, 0.10),
                cpi=jittered(rng, 1.20, 0.05),
                refs=0.003,
                miss=0.12,
                footprint=0.08,
                entry="write",
                rate=1 / 1_000_000,
                pool=_PERL_POOL,
            )
        )

        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=f"problem_{problem_id}",
            stages=single_stage("apache_modperl", phases),
            metadata={"problem_id": problem_id},
        )
