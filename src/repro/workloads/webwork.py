"""WeBWorK — user-content-driven online math homework application.

WeBWorK requests interpret teacher-supplied problem scripts (the paper's
deployment has ~3,000 problem sets) and are by far the longest of the five
applications: several hundred million instructions (Figure 2 shows one at
~600 M).  Three properties from the paper shape the model:

* the early part of every request follows *identical* processing semantics
  (Apache dispatch, Perl interpreter startup, Moodle session handling) —
  this is why online signatures built from the first 10 M instructions
  cannot identify WeBWorK requests (Figure 10);
* the later portion runs through a large number of fine-grained Perl
  modules, producing unstable CPI fluctuations that do not form long stable
  phases (Figure 2);
* processing is compute-intensive with few system calls (81% probability of
  a syscall only within 1 ms, Figure 4) and a tiny shared-cache footprint,
  so multicore co-running barely affects it (Figure 1).

A problem's phase-def plan is a pure deterministic function of the problem
id (:func:`problem_phase_defs`): the problem-content RNG it consumes is
seeded from the id and independent of the main request stream, so all its
draws hoist into the producer without perturbing either bitstream.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import RequestSpec, single_stage
from repro.workloads.util import PhaseDef, materialize

_PERL_POOL = ("brk", "mmap", "stat")

#: Number of distinct teacher-created problem sets in the deployment.
NUM_PROBLEMS = 3_000

#: The identical prelude every request executes: (name, instructions, cpi,
#: entry syscall).  Total ~22 M instructions, beyond the 10 M prefix that
#: Figure 10 shows is insufficient for identification.
_PRELUDE = (
    ("apache_dispatch", 2_000_000, 1.15, "read"),
    ("perl_startup", 6_000_000, 1.30, "stat"),
    ("moodle_session", 5_000_000, 1.25, "open"),
    ("course_load", 6_000_000, 1.35, "read"),
    ("problem_fetch", 3_000_000, 1.20, "open"),
)

_PERL_RATE = 1 / 1_200_000

_DEF_CACHE = {}


def problem_phase_defs(problem_id: int) -> Tuple[PhaseDef, ...]:
    """Phase-def plan for one problem id.  Pure; no main-RNG draws.

    The problem script is fixed content, so requests for the same problem
    share macro structure: which modules run, their lengths and inherent
    CPIs, and where graphics bursts fall are all determined here, while
    per-request jitter stays small (applied by the materializer).
    """
    cached = _DEF_CACHE.get(problem_id)
    if cached is not None:
        return cached

    defs = [
        # Identical prelude (near-zero jitter: same code path every time).
        PhaseDef(name, ins, 0.01, cpi, 0.01, 0.002, 0.15, 0.05,
                 entry, _PERL_RATE, _PERL_POOL)
        for name, ins, cpi, entry in _PRELUDE
    ]

    # Problem-specific translation/compute: deterministic per problem id.
    problem_rng = np.random.default_rng(problem_id)
    n_macro = int(problem_rng.integers(5, 11))
    macro_plan = [
        (
            float(problem_rng.uniform(8e6, 30e6)),
            float(problem_rng.uniform(1.05, 1.65)),
        )
        for _ in range(n_macro)
    ]
    for step, (ins, cpi) in enumerate(macro_plan):
        defs.append(
            PhaseDef(f"translate_{step}", ins, 0.04, cpi, 0.03,
                     0.002, 0.15, 0.05, None, _PERL_RATE, _PERL_POOL)
        )

    # Unstable render tail: many fine-grained Perl-module phases.  Two
    # requests for the same problem share the same instruction stream,
    # which is what makes reference-driven anomaly analysis (Figure 9)
    # meaningful.
    n_tail = int(problem_rng.integers(35, 75))
    for step in range(n_tail):
        if problem_rng.random() < 0.12:
            # Graphics rendering burst: the one WeBWorK activity with a
            # real shared-cache footprint.
            defs.append(
                PhaseDef(
                    f"render_gfx_{step}",
                    float(problem_rng.uniform(2e6, 4e6)), 0.03, 2.3, 0.03,
                    0.012, 0.35, 0.35, None, _PERL_RATE, _PERL_POOL,
                )
            )
        else:
            defs.append(
                PhaseDef(
                    f"perl_module_{step}",
                    float(problem_rng.uniform(0.8e6, 4e6)), 0.03,
                    float(problem_rng.uniform(0.95, 2.05)), 0.03,
                    0.002, 0.15, 0.05, None, _PERL_RATE, _PERL_POOL,
                )
            )

    defs.append(
        PhaseDef("answer_save", 3_000_000, 0.10, 1.20, 0.05,
                 0.003, 0.12, 0.08, "write", 1 / 1_000_000, _PERL_POOL)
    )

    result = tuple(defs)
    _DEF_CACHE[problem_id] = result
    return result


class WeBWorKWorkload:
    """Generator for WeBWorK problem-rendering requests."""

    name = "webwork"
    #: Per-phase jitter makes behavior values effectively unique, so
    #: whole-behavior-set memo keys never recur (fastpath hint).
    jittered_behaviors = True
    sampling_period_us = 1_000.0
    window_instructions = 2_000_000
    kinds = tuple(f"problem_{i}" for i in range(NUM_PROBLEMS))

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        problem_id = int(rng.integers(NUM_PROBLEMS))
        return self.build_problem(rng, request_id, problem_id)

    def build_problem(
        self, rng: np.random.Generator, request_id: int, problem_id: int
    ) -> RequestSpec:
        """Materialize one request rendering a specific problem."""
        phases = materialize(rng, problem_phase_defs(problem_id))
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=f"problem_{problem_id}",
            stages=single_stage("apache_modperl", phases),
            metadata={"problem_id": problem_id},
        )
