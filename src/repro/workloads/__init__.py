"""Generative workload models for the paper's five server applications.

Each generator produces :class:`~repro.workloads.base.RequestSpec` objects —
tier-structured sequences of execution phases annotated with solo hardware
behavior and system-call patterns — calibrated against the characterization
published in the paper (request lengths, transaction mixes, CPI ranges,
system-call distance distributions).
"""

from repro.workloads.base import Phase, RequestSpec, Stage, WorkloadGenerator
from repro.workloads.describe import describe, describe_table
from repro.workloads.faults import FaultInjectingWorkload, score_detection
from repro.workloads.microbench import MbenchData, MbenchSpin
from repro.workloads.registry import (
    FixedKindWorkload,
    available_workloads,
    make_faulted_workload,
    make_workload,
    parse_fault_spec,
)
from repro.workloads.rubis import RubisWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.webserver import WebServerWorkload
from repro.workloads.webwork import WeBWorKWorkload

__all__ = [
    "FaultInjectingWorkload",
    "FixedKindWorkload",
    "MbenchData",
    "MbenchSpin",
    "Phase",
    "describe",
    "describe_table",
    "score_detection",
    "RequestSpec",
    "RubisWorkload",
    "Stage",
    "TpccWorkload",
    "TpchWorkload",
    "WeBWorKWorkload",
    "WebServerWorkload",
    "WorkloadGenerator",
    "available_workloads",
    "make_faulted_workload",
    "make_workload",
    "parse_fault_spec",
]
