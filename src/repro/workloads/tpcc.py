"""TPC-C order-entry transactions on a MySQL/InnoDB-style engine.

Five transaction types with the paper's mix — new order 45%, payment 43%,
order status 4%, delivery 4%, stock level 4% — each with a distinctive
phase structure (B-tree descents with poor locality, row updates, log
writes, commit).  The distinct per-type CPI levels produce the multi-cluster
per-request CPI distribution of Figure 1, and the item-loop structure
produces the spiky intra-request CPI pattern of Figure 2 (a new-order
transaction executes ~1.4 M instructions).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.workloads.base import Phase, RequestSpec, single_stage
from repro.workloads.util import jittered, jittered_int, phase

#: (type name, probability) per the TPC-C mix reported in the paper.
TRANSACTION_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)

_DB_POOL = ("pread64", "pwrite64", "read")


class TpccWorkload:
    """Generator for TPC-C transactions."""

    name = "tpcc"
    sampling_period_us = 100.0
    window_instructions = 50_000
    kinds = tuple(t[0] for t in TRANSACTION_MIX)

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        mix = np.array([t[1] for t in TRANSACTION_MIX])
        kind = TRANSACTION_MIX[int(rng.choice(len(TRANSACTION_MIX), p=mix))][0]
        return self.build_transaction(rng, request_id, kind)

    def build_transaction(
        self, rng: np.random.Generator, request_id: int, kind: str
    ) -> RequestSpec:
        """Materialize one request of a specific transaction type."""
        if kind not in self.kinds:
            raise ValueError(f"unknown transaction type {kind!r}")
        phases = getattr(self, f"_{kind}")(rng)
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=kind,
            stages=single_stage("mysql", phases),
        )

    def _parse(self, rng, ins=60_000) -> Phase:
        return phase(
            "parse_plan",
            jittered_int(rng, ins, 0.12),
            cpi=jittered(rng, 1.05, 0.08),
            refs=0.006,
            miss=0.12,
            footprint=0.20,
            entry="read",
        )

    def _btree_lookup(self, rng, tag: str, ins=45_000, chatter=True) -> Phase:
        """Index descent: pointer chasing with poor locality (CPI spike)."""
        return phase(
            f"btree_{tag}",
            jittered_int(rng, ins, 0.18),
            cpi=jittered(rng, 1.50, 0.10),
            refs=jittered(rng, 0.033, 0.12),
            miss=0.38,
            footprint=0.55,
            rate=(1 / 60_000) if chatter else 0.0,
            pool=_DB_POOL if chatter else (),
        )

    def _row_update(self, rng, tag: str, ins=55_000, chatter=True) -> Phase:
        return phase(
            f"update_{tag}",
            jittered_int(rng, ins, 0.15),
            cpi=jittered(rng, 1.10, 0.08),
            refs=0.014,
            miss=0.18,
            footprint=0.35,
            rate=(1 / 60_000) if chatter else 0.0,
            pool=_DB_POOL if chatter else (),
        )

    def _log_write(self, rng, ins=80_000) -> Phase:
        return phase(
            "log_write",
            jittered_int(rng, ins, 0.12),
            cpi=jittered(rng, 1.00, 0.08),
            refs=0.006,
            miss=0.10,
            footprint=0.15,
            entry="write",
        )

    def _commit(self, rng, ins=40_000) -> Phase:
        return phase(
            "commit",
            jittered_int(rng, ins, 0.12),
            cpi=jittered(rng, 0.80, 0.08),
            refs=0.004,
            miss=0.08,
            footprint=0.10,
            entry="fdatasync",
        )

    def _respond(self, rng, ins=25_000) -> Phase:
        return phase(
            "respond",
            jittered_int(rng, ins, 0.12),
            cpi=jittered(rng, 1.00, 0.08),
            refs=0.004,
            miss=0.08,
            footprint=0.10,
            entry="write",
        )

    def _new_order(self, rng) -> List[Phase]:
        phases = [self._parse(rng)]
        n_items = int(rng.integers(8, 13))
        for i in range(n_items):
            phases.append(self._btree_lookup(rng, f"item{i}"))
            phases.append(self._row_update(rng, f"stock{i}"))
        phases.append(self._btree_lookup(rng, "district", ins=60_000))
        phases.append(self._row_update(rng, "order_insert", ins=140_000))
        phases.append(self._log_write(rng))
        phases.append(self._commit(rng))
        phases.append(self._respond(rng))
        return phases

    def _payment(self, rng) -> List[Phase]:
        phases = [self._parse(rng, ins=50_000)]
        phases.append(self._btree_lookup(rng, "warehouse", ins=40_000))
        phases.append(self._btree_lookup(rng, "customer", ins=120_000))
        phases.append(self._row_update(rng, "balance", ins=90_000))
        phases.append(self._row_update(rng, "history_insert", ins=110_000))
        phases.append(self._log_write(rng, ins=70_000))
        phases.append(self._commit(rng, ins=35_000))
        phases.append(self._respond(rng))
        return phases

    def _order_status(self, rng) -> List[Phase]:
        phases = [self._parse(rng, ins=45_000)]
        phases.append(self._btree_lookup(rng, "customer", ins=110_000))
        phases.append(self._btree_lookup(rng, "last_order", ins=90_000))
        phases.append(
            phase(
                "scan_order_lines",
                jittered_int(rng, 180_000, 0.20),
                cpi=jittered(rng, 1.50, 0.10),
                refs=0.024,
                miss=0.35,
                footprint=0.60,
            )
        )
        phases.append(self._respond(rng, ins=40_000))
        return phases

    def _delivery(self, rng) -> List[Phase]:
        phases = [self._parse(rng, ins=55_000)]
        for i in range(10):  # one order per district
            phases.append(self._btree_lookup(rng, f"oldest_order_d{i}", ins=110_000, chatter=False))
            phases.append(self._row_update(rng, f"deliver_d{i}", ins=240_000, chatter=False))
        phases.append(self._log_write(rng, ins=120_000))
        phases.append(self._commit(rng, ins=50_000))
        phases.append(self._respond(rng))
        return phases

    def _stock_level(self, rng) -> List[Phase]:
        phases = [self._parse(rng, ins=50_000)]
        phases.append(self._btree_lookup(rng, "district", ins=50_000))
        phases.append(
            phase(
                "stock_join_scan",
                jittered_int(rng, 4_500_000, 0.15),
                cpi=jittered(rng, 1.45, 0.08),
                refs=jittered(rng, 0.026, 0.10),
                miss=0.42,
                footprint=0.75,
            )
        )
        phases.append(self._respond(rng, ins=30_000))
        return phases
