"""TPC-C order-entry transactions on a MySQL/InnoDB-style engine.

Five transaction types with the paper's mix — new order 45%, payment 43%,
order status 4%, delivery 4%, stock level 4% — each with a distinctive
phase structure (B-tree descents with poor locality, row updates, log
writes, commit).  The distinct per-type CPI levels produce the multi-cluster
per-request CPI distribution of Figure 1, and the item-loop structure
produces the spiky intra-request CPI pattern of Figure 2 (a new-order
transaction executes ~1.4 M instructions).

Phase plans are declarative :class:`~repro.workloads.util.PhaseDef`
tables produced by pure functions (:func:`transaction_phase_defs` and the
new-order head/body split), shared between the scalar reference
materializer and the vectorized generation fast path.  New-order is the
one plan with a mid-plan RNG draw — the item count is drawn *after* the
parse phase's jitters — so its defs are split into a head block and a
per-item-count body block to keep the reference draw order intact.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.base import RequestSpec, single_stage
from repro.workloads.util import Jit, PhaseDef, materialize

#: (type name, probability) per the TPC-C mix reported in the paper.
TRANSACTION_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)

_DB_POOL = ("pread64", "pwrite64", "read")


def _parse(ins: int = 60_000) -> PhaseDef:
    return PhaseDef("parse_plan", ins, 0.12, 1.05, 0.08, 0.006, 0.12, 0.20, "read")


def _btree_lookup(tag: str, ins: int = 45_000, chatter: bool = True) -> PhaseDef:
    """Index descent: pointer chasing with poor locality (CPI spike)."""
    return PhaseDef(
        f"btree_{tag}", ins, 0.18, 1.50, 0.10, Jit(0.033, 0.12), 0.38, 0.55,
        None, (1 / 60_000) if chatter else 0.0, _DB_POOL if chatter else (),
    )


def _row_update(tag: str, ins: int = 55_000, chatter: bool = True) -> PhaseDef:
    return PhaseDef(
        f"update_{tag}", ins, 0.15, 1.10, 0.08, 0.014, 0.18, 0.35,
        None, (1 / 60_000) if chatter else 0.0, _DB_POOL if chatter else (),
    )


def _log_write(ins: int = 80_000) -> PhaseDef:
    return PhaseDef("log_write", ins, 0.12, 1.00, 0.08, 0.006, 0.10, 0.15, "write")


def _commit(ins: int = 40_000) -> PhaseDef:
    return PhaseDef("commit", ins, 0.12, 0.80, 0.08, 0.004, 0.08, 0.10, "fdatasync")


def _respond(ins: int = 25_000) -> PhaseDef:
    return PhaseDef("respond", ins, 0.12, 1.00, 0.08, 0.004, 0.08, 0.10, "write")


#: New-order defs before the item-count draw (parse only).
NEW_ORDER_HEAD: Tuple[PhaseDef, ...] = (_parse(),)


def new_order_body_defs(n_items: int) -> Tuple[PhaseDef, ...]:
    """New-order defs after the item-count draw: item loop + insert/commit."""
    defs: List[PhaseDef] = []
    for i in range(n_items):
        defs.append(_btree_lookup(f"item{i}"))
        defs.append(_row_update(f"stock{i}"))
    defs.append(_btree_lookup("district", ins=60_000))
    defs.append(_row_update("order_insert", ins=140_000))
    defs.append(_log_write())
    defs.append(_commit())
    defs.append(_respond())
    return tuple(defs)


def _payment_defs() -> Tuple[PhaseDef, ...]:
    return (
        _parse(ins=50_000),
        _btree_lookup("warehouse", ins=40_000),
        _btree_lookup("customer", ins=120_000),
        _row_update("balance", ins=90_000),
        _row_update("history_insert", ins=110_000),
        _log_write(ins=70_000),
        _commit(ins=35_000),
        _respond(),
    )


def _order_status_defs() -> Tuple[PhaseDef, ...]:
    return (
        _parse(ins=45_000),
        _btree_lookup("customer", ins=110_000),
        _btree_lookup("last_order", ins=90_000),
        PhaseDef("scan_order_lines", 180_000, 0.20, 1.50, 0.10, 0.024, 0.35, 0.60),
        _respond(ins=40_000),
    )


def _delivery_defs() -> Tuple[PhaseDef, ...]:
    defs: List[PhaseDef] = [_parse(ins=55_000)]
    for i in range(10):  # one order per district
        defs.append(_btree_lookup(f"oldest_order_d{i}", ins=110_000, chatter=False))
        defs.append(_row_update(f"deliver_d{i}", ins=240_000, chatter=False))
    defs.append(_log_write(ins=120_000))
    defs.append(_commit(ins=50_000))
    defs.append(_respond())
    return tuple(defs)


def _stock_level_defs() -> Tuple[PhaseDef, ...]:
    return (
        _parse(ins=50_000),
        _btree_lookup("district", ins=50_000),
        PhaseDef(
            "stock_join_scan", 4_500_000, 0.15, 1.45, 0.08,
            Jit(0.026, 0.10), 0.42, 0.75,
        ),
        _respond(ins=30_000),
    )


_FIXED_PLANS = {
    "payment": _payment_defs(),
    "order_status": _order_status_defs(),
    "delivery": _delivery_defs(),
    "stock_level": _stock_level_defs(),
}


def transaction_phase_defs(kind: str) -> Tuple[PhaseDef, ...]:
    """Full phase-def plan for the fixed-shape transaction types.

    ``new_order`` has no fixed plan (its item count is drawn mid-plan);
    use :data:`NEW_ORDER_HEAD` + :func:`new_order_body_defs` instead.
    """
    return _FIXED_PLANS[kind]


class TpccWorkload:
    """Generator for TPC-C transactions."""

    name = "tpcc"
    #: Per-phase jitter makes behavior values effectively unique, so
    #: whole-behavior-set memo keys never recur (fastpath hint).
    jittered_behaviors = True
    sampling_period_us = 100.0
    window_instructions = 50_000
    kinds = tuple(t[0] for t in TRANSACTION_MIX)

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        mix = np.array([t[1] for t in TRANSACTION_MIX])
        kind = TRANSACTION_MIX[int(rng.choice(len(TRANSACTION_MIX), p=mix))][0]
        return self.build_transaction(rng, request_id, kind)

    def build_transaction(
        self, rng: np.random.Generator, request_id: int, kind: str
    ) -> RequestSpec:
        """Materialize one request of a specific transaction type."""
        if kind not in self.kinds:
            raise ValueError(f"unknown transaction type {kind!r}")
        if kind == "new_order":
            phases = materialize(rng, NEW_ORDER_HEAD)
            n_items = int(rng.integers(8, 13))
            phases.extend(materialize(rng, new_order_body_defs(n_items)))
        else:
            phases = materialize(rng, transaction_phase_defs(kind))
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=kind,
            stages=single_stage("mysql", phases),
        )
