"""Registry mapping application names to workload generator factories."""

from __future__ import annotations

from typing import Tuple

from repro.faults.schedule import ScheduledFaultWorkload, parse_fault_schedule
from repro.faults.taxonomy import FAULT_TAXONOMY
from repro.obs.profiling import profiled_stage
from repro.workloads.genfast import FAST_FACTORIES, gen_fastpath_enabled
from repro.workloads.microbench import MbenchData, MbenchSpin
from repro.workloads.rubis import RubisWorkload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.webserver import WebServerWorkload
from repro.workloads.webwork import WeBWorKWorkload

_FACTORIES = {
    "webserver": WebServerWorkload,
    "tpcc": TpccWorkload,
    "tpch": TpchWorkload,
    "rubis": RubisWorkload,
    "webwork": WeBWorKWorkload,
    "mbench_spin": MbenchSpin,
    "mbench_data": MbenchData,
}

#: The paper's five server applications, in its presentation order.
SERVER_APPS = ("webserver", "tpcc", "tpch", "rubis", "webwork")


def available_workloads() -> tuple:
    """All registered workload names."""
    return tuple(_FACTORIES)


def make_workload(name: str):
    """Instantiate a workload generator by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    with profiled_stage("generate"):
        if gen_fastpath_enabled():
            fast = FAST_FACTORIES.get(name)
            if fast is not None:
                return fast()
        return factory()


def parse_fault_spec(text: str) -> Tuple[str, float]:
    """Parse a single plain ``kind:rate`` fault spec (e.g. ``lock_stall:0.2``).

    Kept for the simple single-clause callers; the full composable
    grammar (multiple ``+``-joined clauses, activation windows, targets,
    bursts) is :func:`repro.faults.schedule.parse_fault_schedule`, which
    the ``--faults`` CLI flags route through.
    """
    kind, sep, rate_text = text.partition(":")
    if not sep:
        raise ValueError(
            f"fault spec {text!r} must be kind:rate (e.g. lock_stall:0.2)"
        )
    if kind not in FAULT_TAXONOMY:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {FAULT_TAXONOMY}"
        )
    try:
        rate = float(rate_text)
    except ValueError:
        raise ValueError(f"fault rate {rate_text!r} is not a number") from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"fault rate {rate} must be in [0, 1]")
    return kind, rate


def make_faulted_workload(name: str, fault_spec: str) -> ScheduledFaultWorkload:
    """Instantiate a workload with ground-truth fault injection.

    ``fault_spec`` is the composable schedule grammar; the legacy
    ``kind:rate`` syntax is a single-clause schedule and produces a
    byte-identical request stream to the original single-kind wrapper.
    """
    schedule = parse_fault_schedule(fault_spec)
    return ScheduledFaultWorkload(inner=make_workload(name), schedule=schedule)


class FixedKindWorkload:
    """Wrapper generating only one request kind of an application.

    Used by the anomaly case studies, which need a population of requests
    sharing application-level semantics (e.g. all TPC-H Q20, or all
    WeBWorK renderings of problem 954).
    """

    def __init__(self, app: str, kind: str):
        self._inner = make_workload(app)
        if kind not in self._inner.kinds:
            raise ValueError(f"workload {app!r} has no kind {kind!r}")
        self.kind = kind
        self.name = f"{app}:{kind}"
        self.sampling_period_us = self._inner.sampling_period_us
        self.window_instructions = self._inner.window_instructions

    def sample_request(self, rng, request_id):
        inner = self._inner
        if hasattr(inner, "build_query"):
            return inner.build_query(rng, request_id, self.kind)
        if hasattr(inner, "build_problem"):
            problem_id = int(self.kind.rsplit("_", 1)[1])
            return inner.build_problem(rng, request_id, problem_id)
        if hasattr(inner, "build_transaction"):
            return inner.build_transaction(rng, request_id, self.kind)
        # Rejection sampling for generators without a kind-specific builder.
        for _ in range(10_000):
            spec = inner.sample_request(rng, request_id)
            if spec.kind == self.kind:
                return spec
        raise RuntimeError(f"could not draw kind {self.kind!r} from {inner.name}")
