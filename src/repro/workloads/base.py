"""Request, stage, and phase abstractions shared by all workload models.

A *request* (the paper's unit of analysis: "the set of server activities to
service a user call") is modeled as a sequence of *stages*, one per server
tier it propagates through (e.g. web server -> EJB container -> database in
RUBiS).  Each stage is a sequence of *phases*: contiguous instruction spans
with fixed solo hardware behavior and a system-call pattern.  The kernel
simulator executes phases under contention; everything downstream (sampling,
differencing, classification, scheduling) sees only the resulting
counter timeline, never the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List, Optional, Protocol, Tuple

import numpy as np

from repro.hardware.cpu import PhaseBehavior


@dataclass(frozen=True)
class Phase:
    """A contiguous span of request execution with uniform solo behavior."""

    name: str
    instructions: int
    behavior: PhaseBehavior
    #: Named system call issued at phase entry, if any.  Entry syscalls are
    #: what the transition-signal sampler (Section 3.2) learns from: the
    #: behavior before the call is the previous phase, after it this one.
    entry_syscall: Optional[str] = None
    #: Poisson rate (calls per instruction) of additional anonymous system
    #: calls issued while the phase runs (network/storage I/O chatter).
    syscall_rate_per_ins: float = 0.0
    #: Names drawn (round-robin) for the rate-based calls.
    syscall_pool: Tuple[str, ...] = ()

    def __post_init__(self):
        if self.instructions <= 0:
            raise ValueError(f"phase {self.name!r}: instructions must be positive")
        if self.syscall_rate_per_ins < 0:
            raise ValueError(f"phase {self.name!r}: negative syscall rate")
        if self.syscall_rate_per_ins > 0 and not self.syscall_pool:
            raise ValueError(
                f"phase {self.name!r}: rate-based syscalls need a name pool"
            )

    def mean_syscall_distance_ins(self) -> float:
        """Mean instructions between rate-based syscalls (inf if none)."""
        if self.syscall_rate_per_ins == 0:
            return float("inf")
        return 1.0 / self.syscall_rate_per_ins


@dataclass(frozen=True)
class Stage:
    """The portion of a request executed within one server tier/process."""

    tier: str
    phases: Tuple[Phase, ...]

    def __post_init__(self):
        if not self.phases:
            raise ValueError(f"stage {self.tier!r} has no phases")

    # cached_property writes straight to __dict__, which bypasses the
    # frozen-dataclass __setattr__ guard; the values are pure functions
    # of the (immutable) phase tuple.

    @cached_property
    def instructions(self) -> int:
        return sum(p.instructions for p in self.phases)

    @cached_property
    def cumulative_instructions(self) -> Tuple[int, ...]:
        """``[i]`` = instructions in phases before index ``i`` (exact ints).

        Lets the simulator's dispatch-load view compute remaining stage
        work in O(1) instead of re-summing the phase prefix per query.
        """
        total = 0
        prefix = [0]
        for p in self.phases:
            total += p.instructions
            prefix.append(total)
        return tuple(prefix)


@dataclass(frozen=True)
class RequestSpec:
    """A fully materialized request, ready for simulation."""

    request_id: int
    app: str
    #: Request type within the application (transaction name, query id,
    #: URL class, problem id, ...).
    kind: str
    stages: Tuple[Stage, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if not self.stages:
            raise ValueError("request has no stages")

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.stages)

    def phases(self) -> Iterator[Phase]:
        for stage in self.stages:
            yield from stage.phases

    def syscall_sequence(self, rng: np.random.Generator) -> List[str]:
        """The request's application-level system-call name sequence.

        This is the software-event view a Magpie-style tracker would record
        (Section 4.1's Levenshtein baseline): entry syscalls in order, plus
        the expected number of rate-based calls per phase with names cycled
        from the phase pool, plus socket ops at tier boundaries.
        """
        sequence: List[str] = []
        for stage_idx, stage in enumerate(self.stages):
            if stage_idx > 0:
                sequence.extend(["read", "recvfrom"])  # tier hand-off arrival
            for phase in stage.phases:
                if phase.entry_syscall is not None:
                    sequence.append(phase.entry_syscall)
                if phase.syscall_rate_per_ins > 0:
                    expected = phase.instructions * phase.syscall_rate_per_ins
                    count = int(rng.poisson(expected))
                    pool = phase.syscall_pool
                    sequence.extend(pool[i % len(pool)] for i in range(count))
            if stage_idx < len(self.stages) - 1:
                sequence.extend(["write", "sendto"])  # tier hand-off departure
        return sequence

    def solo_cpi(self, miss_penalty_cycles: float) -> float:
        """Instruction-weighted CPI of the request when run alone."""
        total_cycles = sum(
            p.instructions * p.behavior.solo_cpi(miss_penalty_cycles)
            for p in self.phases()
        )
        return total_cycles / self.total_instructions

    def solo_series(
        self, window_instructions: float, miss_penalty_cycles: float = 220.0
    ) -> np.ndarray:
        """Uncontended CPI over fixed instruction windows (ground truth).

        Useful for constructing illustrative examples (e.g. Figure 6's
        drift pair) without running a full simulation.
        """
        if window_instructions <= 0:
            raise ValueError("window_instructions must be positive")
        phases = list(self.phases())
        lengths = np.array([p.instructions for p in phases], dtype=float)
        cpis = np.array(
            [p.behavior.solo_cpi(miss_penalty_cycles) for p in phases]
        )
        boundaries = np.concatenate([[0.0], np.cumsum(lengths)])
        cum_cycles = np.concatenate([[0.0], np.cumsum(lengths * cpis)])
        n_windows = max(1, int(boundaries[-1] // window_instructions))
        edges = window_instructions * np.arange(n_windows + 1)
        at_edges = np.interp(edges, boundaries, cum_cycles)
        return np.diff(at_edges) / window_instructions


class WorkloadGenerator(Protocol):
    """Factory producing a stream of request specs for one application."""

    #: Application name, e.g. ``"webserver"``.
    name: str
    #: Suggested counter-sampling period in microseconds (Section 3.1:
    #: 10 us for the web server, 100 us for TPCC/RUBiS, 1 ms for
    #: TPCH/WeBWorK).
    sampling_period_us: float

    def sample_request(
        self, rng: np.random.Generator, request_id: int
    ) -> RequestSpec:
        """Draw one request from the workload distribution."""
        ...


def single_stage(tier: str, phases) -> Tuple[Stage, ...]:
    """Convenience wrapper for single-tier applications."""
    return (Stage(tier=tier, phases=tuple(phases)),)
