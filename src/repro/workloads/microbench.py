"""Microbenchmarks used to assess sampling cost and observer effect.

Table 1 of the paper measures per-sample cost with two microbenchmarks:

* **Mbench-Spin** spins the CPU with almost no data access — minimum cache
  state pollution, so sampling shows its floor cost;
* **Mbench-Data** repeatedly streams through 16 MB of memory — it replaces
  the entire cache state quickly, so sampling code takes extra misses
  (surfacing as additional L2 references and cycles).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import RequestSpec, single_stage
from repro.workloads.util import phase


class MbenchSpin:
    """CPU spin loop with almost no data access (zero cache footprint)."""

    name = "mbench_spin"
    sampling_period_us = 100.0
    window_instructions = 100_000
    kinds = ("spin",)

    def __init__(self, instructions: int = 30_000_000):
        self.instructions = instructions

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind="spin",
            stages=single_stage(
                "mbench",
                [
                    phase(
                        "spin",
                        self.instructions,
                        cpi=1.0,
                        refs=0.0,
                        miss=0.0,
                        footprint=0.0,
                        rate=1 / 100_000,
                        pool=("getpid",),
                    )
                ],
            ),
        )


class MbenchData:
    """Sequential streaming over a 16 MB working set (full cache pollution)."""

    name = "mbench_data"
    sampling_period_us = 100.0
    window_instructions = 100_000
    kinds = ("data",)

    def __init__(self, instructions: int = 30_000_000):
        self.instructions = instructions

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind="data",
            stages=single_stage(
                "mbench",
                [
                    phase(
                        "stream_16mb",
                        self.instructions,
                        cpi=1.0,
                        refs=0.020,
                        miss=0.90,
                        footprint=1.0,
                        rate=1 / 100_000,
                        pool=("getpid",),
                    )
                ],
            ),
        )
