"""Apache web server serving the SPECweb99 static content mix.

The paper's web workload is the static portion of SPECweb99: four file
classes spanning 100 bytes to 900 KB (200 MB total dataset).  Requests are
short — "a few hundred thousand instructions" — and issue system calls very
frequently (97% probability of a syscall within 16 us of any instant,
Figure 4).  The phase structure below encodes the request lifecycle whose
syscall-entry behavior transitions the paper trains on in Table 2:
``writev`` (HTTP header write, fragmented piecemeal memory accesses -> CPI
jumps up), ``stat``/``lseek`` (metadata / seek work -> CPI drops), ``poll``
(readiness wait -> CPI rises), etc.

The phase plan for a request is produced declaratively by
:func:`request_phase_defs` — a pure function of the file's size and
fingerprint with no main-RNG draws — and materialized with per-request
jitter by :func:`repro.workloads.util.materialize` (reference path) or the
vectorized :mod:`repro.workloads.genfast` templates (fast path).  Both
consume the same defs, so the two paths cannot drift apart.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

import numpy as np

from repro.workloads.base import RequestSpec, single_stage
from repro.workloads.util import PhaseDef, materialize

#: SPECweb99 static file classes: (class name, min bytes, max bytes, mix).
FILE_CLASSES = (
    ("class0", 100, 900, 0.35),
    ("class1", 1_000, 9_000, 0.50),
    ("class2", 10_000, 90_000, 0.14),
    ("class3", 100_000, 900_000, 0.01),
)

#: Instructions of copy/checksum work per transferred byte.
INS_PER_BYTE = 16.0
#: Bytes sent per write() chunk.
CHUNK_BYTES = 65_536

_IO_POOL = ("poll", "gettimeofday", "read")
_BODY_POOL = ("write", "sendfile64")

_IO_RATE = 1 / 9_000


class FileFingerprint(NamedTuple):
    """Stable per-file behavioral fingerprint (same file -> same costs)."""

    parse_scale: float
    meta_scale: float
    header_cpi: float
    parse_refs: float
    header_refs: float
    body_refs: float


def file_fingerprint(file_seed: int) -> FileFingerprint:
    """Derive a file's behavioral fingerprint from its catalog seed.

    URL/metadata handling costs vary per file but are stable across
    requests for the same file — which is what makes online signature
    identification of repeated requests possible (Figure 10).
    """
    file_rng = np.random.default_rng(file_seed)
    return FileFingerprint(
        parse_scale=float(file_rng.uniform(0.8, 1.25)),
        meta_scale=float(file_rng.uniform(0.75, 1.3)),
        header_cpi=float(file_rng.uniform(3.8, 4.8)),
        parse_refs=float(file_rng.uniform(0.003, 0.007)),
        header_refs=float(file_rng.uniform(0.014, 0.026)),
        body_refs=float(file_rng.uniform(0.012, 0.020)),
    )


def request_phase_defs(file_bytes: int, fp: FileFingerprint) -> Tuple[PhaseDef, ...]:
    """Phase-def plan for serving one file.  Pure; no main-RNG draws."""
    defs = [
        PhaseDef(
            "accept_parse", 25_000 * fp.parse_scale, 0.06, 1.00, 0.08,
            fp.parse_refs, 0.10, 0.15, "read", _IO_RATE, _IO_POOL,
        ),
        PhaseDef(
            "stat_file", 14_000 * fp.meta_scale, 0.06, 0.75, 0.08,
            0.002, 0.05, 0.05, "stat", _IO_RATE, _IO_POOL,
        ),
        PhaseDef(
            "open_file", 34_000 * fp.meta_scale, 0.06, 0.82, 0.08,
            0.003, 0.08, 0.05, "open", _IO_RATE, _IO_POOL,
        ),
        # HTTP header construction: the paper observes the writev entry
        # signals a large CPI increase (+3.66 +- 2.27 in Table 2).
        PhaseDef(
            "write_headers", 14_000 * fp.parse_scale, 0.08, fp.header_cpi, 0.06,
            fp.header_refs, 0.35, 0.10, "writev", _IO_RATE, _IO_POOL,
        ),
    ]

    remaining = file_bytes
    chunk_idx = 0
    while remaining > 0:
        chunk = min(remaining, CHUNK_BYTES)
        remaining -= chunk
        if chunk_idx > 0:
            # Between chunks of large files: wait for socket readiness
            # (poll -> CPI up) then reposition (lseek -> CPI down).
            defs.append(
                PhaseDef(
                    f"poll_wait_{chunk_idx}", 20_000, 0.25, 3.4, 0.15,
                    0.006, 0.15, 0.05, "poll", _IO_RATE, _IO_POOL,
                )
            )
            defs.append(
                PhaseDef(
                    f"seek_{chunk_idx}", 10_000, 0.25, 0.65, 0.10,
                    0.002, 0.05, 0.05, "lseek", _IO_RATE, _IO_POOL,
                )
            )
        body_ins = max(4_000, int(chunk * INS_PER_BYTE))
        defs.append(
            PhaseDef(
                f"send_body_{chunk_idx}", body_ins, 0.08, 1.35, 0.08,
                fp.body_refs, 0.25, 0.40, "write", 1 / 6_500, _BODY_POOL,
            )
        )
        chunk_idx += 1

    defs.append(
        PhaseDef(
            "shutdown_conn", 12_000, 0.20, 3.6, 0.12,
            0.004, 0.10, 0.05, "shutdown", _IO_RATE, _IO_POOL,
        )
    )
    defs.append(
        PhaseDef(
            "access_log", 12_000, 0.20, 1.30, 0.10,
            0.004, 0.10, 0.05, "write", _IO_RATE, _IO_POOL,
        )
    )
    return tuple(defs)


class WebServerWorkload:
    """Generator for Apache/SPECweb99 static requests.

    SPECweb99 serves a *fixed* dataset (200 MB in the paper's setup), so
    the same files recur across requests with Zipf-like popularity.  The
    generator materializes a per-class file catalog up front; each file
    carries a stable behavioral fingerprint (exact size, parse/metadata
    costs), which is what makes online signature identification of
    repeated requests possible (Figure 10).
    """

    name = "webserver"
    #: Per-phase jitter makes behavior values effectively unique, so
    #: whole-behavior-set memo keys never recur (fastpath hint).
    jittered_behaviors = True
    sampling_period_us = 10.0
    #: Fixed-instruction resampling window for metric series.
    window_instructions = 10_000
    kinds = tuple(c[0] for c in FILE_CLASSES)

    #: Catalog size per class and Zipf popularity exponent.
    files_per_class = 36
    zipf_exponent = 1.0

    def __init__(self, catalog_seed: int = 909_009):
        catalog_rng = np.random.default_rng(catalog_seed)
        self._catalog = {}
        ranks = np.arange(1, self.files_per_class + 1, dtype=float)
        weights = ranks**-self.zipf_exponent
        self._popularity = weights / weights.sum()
        for cls_name, lo, hi, _ in FILE_CLASSES:
            sizes = catalog_rng.integers(lo, hi + 1, size=self.files_per_class)
            seeds = catalog_rng.integers(1, 2**31, size=self.files_per_class)
            self._catalog[cls_name] = list(zip(sizes.tolist(), seeds.tolist()))

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        mix = np.array([c[3] for c in FILE_CLASSES])
        cls_idx = int(rng.choice(len(FILE_CLASSES), p=mix / mix.sum()))
        cls_name = FILE_CLASSES[cls_idx][0]
        file_idx = int(rng.choice(self.files_per_class, p=self._popularity))
        file_bytes, file_seed = self._catalog[cls_name][file_idx]
        phases = materialize(rng, request_phase_defs(file_bytes, file_fingerprint(file_seed)))
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=cls_name,
            stages=single_stage("apache", phases),
            metadata={"file_bytes": file_bytes, "file_id": f"{cls_name}/{file_idx}"},
        )
