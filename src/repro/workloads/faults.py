"""Fault injection for validating the anomaly-detection pipeline.

The paper detects anomalies in the wild and argues post-hoc about their
causes.  To *validate* a detector, one needs ground truth: this module
wraps any workload generator and injects known behavioral faults into a
chosen fraction of requests — a lock-contention stall (extra spinning
instructions, as hypothesized for the TPCH case in Section 4.3), a cache
thrash burst (a span with degraded locality), or a slowdown (elevated CPI
across the whole request).  Injected request ids are recorded so tests can
score detector recall and precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

import numpy as np

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase, RequestSpec, Stage

FAULT_KINDS = ("lock_stall", "cache_thrash", "slowdown")


@dataclass
class FaultInjectingWorkload:
    """Wrap a workload generator, injecting faults into some requests."""

    inner: object
    fault_probability: float = 0.1
    fault_kind: str = "lock_stall"
    #: Size of injected lock-stall / thrash spans, as a fraction of the
    #: request's instructions.
    fault_span_fraction: float = 0.08
    #: CPI multiplier for the "slowdown" fault.
    slowdown_factor: float = 1.6

    injected_ids: Set[int] = field(default_factory=set)

    def __post_init__(self):
        if not 0.0 <= self.fault_probability <= 1.0:
            raise ValueError("fault_probability must be in [0, 1]")
        if self.fault_kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault_kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 < self.fault_span_fraction < 1.0:
            raise ValueError("fault_span_fraction must be in (0, 1)")

    @property
    def name(self) -> str:
        return f"{self.inner.name}+{self.fault_kind}"

    @property
    def sampling_period_us(self) -> float:
        return self.inner.sampling_period_us

    @property
    def window_instructions(self) -> float:
        return self.inner.window_instructions

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        spec = self.inner.sample_request(rng, request_id)
        if rng.random() >= self.fault_probability:
            return spec
        self.injected_ids.add(request_id)
        if self.fault_kind == "lock_stall":
            return self._inject_lock_stall(spec, rng)
        if self.fault_kind == "cache_thrash":
            return self._inject_cache_thrash(spec, rng)
        return self._inject_slowdown(spec)

    # -- fault constructors -------------------------------------------------

    def _fault_position(self, spec: RequestSpec, rng) -> float:
        """Instruction offset at which the fault strikes (middle-ish)."""
        return float(rng.uniform(0.25, 0.75)) * spec.total_instructions

    def _inject_span(self, spec: RequestSpec, rng, span_phase: Phase) -> RequestSpec:
        position = self._fault_position(spec, rng)
        consumed = 0
        new_stages: List[Stage] = []
        inserted = False
        for stage in spec.stages:
            phases: List[Phase] = []
            for p in stage.phases:
                phases.append(p)
                consumed += p.instructions
                if not inserted and consumed >= position:
                    phases.append(span_phase)
                    inserted = True
            new_stages.append(Stage(tier=stage.tier, phases=tuple(phases)))
        return RequestSpec(
            request_id=spec.request_id,
            app=spec.app,
            kind=spec.kind,
            stages=tuple(new_stages),
            metadata={**spec.metadata, "injected_fault": self.fault_kind},
        )

    def _inject_lock_stall(self, spec: RequestSpec, rng) -> RequestSpec:
        """Spinning on a contended lock: extra instructions, poor IPC,
        almost no data footprint — the Section 4.3 software-contention
        hypothesis (more instructions *and* more references)."""
        span = Phase(
            name="fault_lock_stall",
            instructions=max(
                5_000, int(self.fault_span_fraction * spec.total_instructions)
            ),
            behavior=PhaseBehavior(
                base_cpi=4.2,  # dependent spin loop, serialized by the lock
                l2_refs_per_ins=0.008,
                l2_miss_ratio=0.6,  # the lock line bounces between cores
                cache_footprint=0.05,
            ),
        )
        return self._inject_span(spec, rng, span)

    def _inject_cache_thrash(self, spec: RequestSpec, rng) -> RequestSpec:
        """A span with pathological locality (e.g. a degenerate hash)."""
        span = Phase(
            name="fault_cache_thrash",
            instructions=max(
                5_000, int(self.fault_span_fraction * spec.total_instructions)
            ),
            behavior=PhaseBehavior(
                base_cpi=1.2,
                l2_refs_per_ins=0.05,
                l2_miss_ratio=0.85,
                cache_footprint=1.0,
            ),
        )
        return self._inject_span(spec, rng, span)

    def _inject_slowdown(self, spec: RequestSpec) -> RequestSpec:
        """Uniformly elevated CPI (e.g. debug logging left enabled)."""
        new_stages = []
        for stage in spec.stages:
            phases = tuple(
                Phase(
                    name=p.name,
                    instructions=p.instructions,
                    behavior=PhaseBehavior(
                        base_cpi=p.behavior.base_cpi * self.slowdown_factor,
                        l2_refs_per_ins=p.behavior.l2_refs_per_ins,
                        l2_miss_ratio=p.behavior.l2_miss_ratio,
                        cache_footprint=p.behavior.cache_footprint,
                    ),
                    entry_syscall=p.entry_syscall,
                    syscall_rate_per_ins=p.syscall_rate_per_ins,
                    syscall_pool=p.syscall_pool,
                )
                for p in stage.phases
            )
            new_stages.append(Stage(tier=stage.tier, phases=phases))
        return RequestSpec(
            request_id=spec.request_id,
            app=spec.app,
            kind=spec.kind,
            stages=tuple(new_stages),
            metadata={**spec.metadata, "injected_fault": self.fault_kind},
        )


def score_detection(flagged_ids, injected_ids, population: int) -> dict:
    """Recall/precision of an anomaly detector against injected ground truth."""
    flagged = set(flagged_ids)
    injected = set(injected_ids)
    true_positives = len(flagged & injected)
    return {
        "recall": true_positives / len(injected) if injected else 1.0,
        "precision": true_positives / len(flagged) if flagged else 1.0,
        "flagged": len(flagged),
        "injected": len(injected),
        "population": population,
    }
