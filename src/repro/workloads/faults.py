"""Fault injection for validating the anomaly-detection pipeline.

The paper detects anomalies in the wild and argues post-hoc about their
causes.  To *validate* a detector, one needs ground truth: this module
wraps any workload generator and injects known behavioral faults into a
chosen fraction of requests — a lock-contention stall (extra spinning
instructions, as hypothesized for the TPCH case in Section 4.3), a cache
thrash burst (a span with degraded locality), or a slowdown (elevated CPI
across the whole request).  Injected request ids are recorded so tests can
score detector recall and precision.

This is the original single-kind wrapper, kept as the reference for the
legacy ``kind:rate`` spec syntax; the composable taxonomy and schedule
engine that superseded it live in :mod:`repro.faults`, and both share
the per-kind injectors in :mod:`repro.faults.taxonomy` — the schedule
engine must stay byte-identical to this class for legacy specs, the
property pinned by ``tests/workloads/test_fault_schedules.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

import numpy as np

from repro.faults.taxonomy import (
    LEGACY_FAULT_KINDS,
    fault_position,
    inject_cache_thrash,
    inject_lock_stall,
    inject_slowdown,
)
from repro.workloads.base import RequestSpec

#: The legacy three-kind taxonomy (the full one is
#: :data:`repro.faults.taxonomy.FAULT_TAXONOMY`).
FAULT_KINDS = LEGACY_FAULT_KINDS


@dataclass
class FaultInjectingWorkload:
    """Wrap a workload generator, injecting faults into some requests."""

    inner: object
    fault_probability: float = 0.1
    fault_kind: str = "lock_stall"
    #: Size of injected lock-stall / thrash spans, as a fraction of the
    #: request's instructions.
    fault_span_fraction: float = 0.08
    #: CPI multiplier for the "slowdown" fault.
    slowdown_factor: float = 1.6

    injected_ids: Set[int] = field(default_factory=set)

    def __post_init__(self):
        if not 0.0 <= self.fault_probability <= 1.0:
            raise ValueError("fault_probability must be in [0, 1]")
        if self.fault_kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.fault_kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 < self.fault_span_fraction < 1.0:
            raise ValueError("fault_span_fraction must be in (0, 1)")

    @property
    def name(self) -> str:
        return f"{self.inner.name}+{self.fault_kind}"

    @property
    def sampling_period_us(self) -> float:
        return self.inner.sampling_period_us

    @property
    def window_instructions(self) -> float:
        return self.inner.window_instructions

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        spec = self.inner.sample_request(rng, request_id)
        if rng.random() >= self.fault_probability:
            return spec
        self.injected_ids.add(request_id)
        if self.fault_kind == "lock_stall":
            return inject_lock_stall(
                spec,
                rng,
                span_fraction=self.fault_span_fraction,
                position=self._fault_position(spec, rng),
            )
        if self.fault_kind == "cache_thrash":
            return inject_cache_thrash(
                spec,
                rng,
                span_fraction=self.fault_span_fraction,
                position=self._fault_position(spec, rng),
            )
        return inject_slowdown(spec, rng, factor=self.slowdown_factor)

    def _fault_position(self, spec: RequestSpec, rng) -> float:
        """Instruction offset at which the fault strikes (middle-ish)."""
        return fault_position(rng, spec.total_instructions)


def score_detection(flagged_ids, injected_ids, population: int) -> dict:
    """Recall/precision of an anomaly detector against injected ground truth."""
    flagged = set(flagged_ids)
    injected = set(injected_ids)
    true_positives = len(flagged & injected)
    return {
        "recall": true_positives / len(injected) if injected else 1.0,
        "precision": true_positives / len(flagged) if flagged else 1.0,
        "flagged": len(flagged),
        "injected": len(injected),
        "population": population,
    }
