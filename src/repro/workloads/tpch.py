"""TPC-H decision-support queries on a MySQL-style engine.

The paper uses a 17-query subset (Q2, Q3, Q4, Q5, Q6, Q7, Q8, Q9, Q11, Q12,
Q13, Q14, Q15, Q17, Q19, Q20, Q22) over a 361 MB dataset, with an equal
proportion of each query type.  TPC-H requests are long (tens of millions of
instructions; Figure 8 shows Q20 at ~80 M) and behave uniformly over their
course — each query applies one plan to a long data sequence — which is why
TPC-H is the one application whose intra-request variation adds little over
its inter-request variation (Figure 3).  Scan-dominated phases make heavy
use of the shared L2 (large footprint), which is why multicore co-running
roughly doubles the 90-percentile request CPI (Figure 1).

Each query's full phase-def plan is a pure deterministic function of the
query kind (:func:`query_phase_defs` — the per-query fingerprint RNG is
seeded from the kind, never from the main stream), so the plan is computed
once per kind and shared by the scalar reference materializer and the
vectorized generation fast path.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import RequestSpec, single_stage
from repro.workloads.util import Jit, PhaseDef, materialize

_DB_POOL = ("pread64", "read", "lseek")

#: Operator templates: (base cpi, l2 refs/ins, miss ratio, footprint,
#: syscall rate per instruction).
_OPERATORS = {
    "scan": (0.95, 0.024, 0.35, 1.00, 1 / 6_500),
    "join": (1.20, 0.027, 0.42, 0.95, 1 / 10_000),
    "aggregate": (1.00, 0.018, 0.30, 0.88, 1 / 15_000),
    "sort": (1.10, 0.024, 0.36, 0.92, 1 / 15_000),
}

#: Query plans: query -> ordered (operator, millions of instructions).
#: Lengths are loosely scaled to the published per-query behavior at the
#: paper's dataset size (Q20 ~ 80 M instructions, Figure 8).
QUERY_PLANS = {
    "Q2": [("scan", 8), ("join", 10), ("aggregate", 5)],
    "Q3": [("scan", 22), ("join", 24), ("sort", 12)],
    "Q4": [("scan", 18), ("aggregate", 14)],
    "Q5": [("scan", 24), ("join", 30), ("aggregate", 14)],
    "Q6": [("scan", 26), ("aggregate", 6)],
    "Q7": [("scan", 22), ("join", 28), ("sort", 13)],
    "Q8": [("scan", 26), ("join", 32), ("aggregate", 15)],
    "Q9": [("scan", 40), ("join", 52), ("sort", 26)],
    "Q11": [("scan", 8), ("join", 7), ("aggregate", 5)],
    "Q12": [("scan", 22), ("join", 12), ("aggregate", 6)],
    "Q13": [("scan", 20), ("join", 24), ("aggregate", 10)],
    "Q14": [("scan", 20), ("join", 10), ("aggregate", 5)],
    "Q15": [("scan", 18), ("aggregate", 16), ("join", 10)],
    "Q17": [("scan", 34), ("join", 40), ("aggregate", 14)],
    "Q19": [("scan", 24), ("join", 20), ("aggregate", 6)],
    "Q20": [("scan", 30), ("join", 36), ("aggregate", 13)],
    "Q22": [("scan", 10), ("join", 8), ("aggregate", 6)],
}

_DEF_CACHE = {}


def query_phase_defs(kind: str) -> Tuple[PhaseDef, ...]:
    """Phase-def plan for one query kind.  Pure; no main-RNG draws.

    The per-query fingerprint is stable: each query's operators touch
    different tables and indices, so their hardware behavior differs
    deterministically across query types (what makes early online
    identification of TPCH requests possible, Figure 10).
    """
    cached = _DEF_CACHE.get(kind)
    if cached is not None:
        return cached
    plan = QUERY_PLANS[kind]
    fingerprint_rng = np.random.default_rng(1000 + int(kind[1:]))
    defs = [
        PhaseDef("parse_optimize", 400_000, 0.10, 1.10, 0.05, 0.006, 0.12, 0.20, "read")
    ]
    for step, (op, mega_ins) in enumerate(plan):
        cpi, refs, miss, footprint, rate = _OPERATORS[op]
        cpi = cpi * float(fingerprint_rng.uniform(0.95, 1.10))
        refs = refs * float(fingerprint_rng.uniform(0.82, 1.18))
        miss = min(0.9, miss * float(fingerprint_rng.uniform(0.9, 1.1)))
        # Each operator warms the buffer pool as it runs: its miss
        # ratio ramps down over three sub-spans.  This within-request
        # drift is why a whole-request average is a poor online
        # predictor of the coming period's misses (Figure 11).
        for sub, miss_factor in enumerate((1.35, 1.0, 0.72)):
            defs.append(
                PhaseDef(
                    f"{op}_{step}_{sub}", mega_ins * 1_000_000 / 3, 0.04,
                    cpi, 0.03, Jit(refs, 0.04), min(0.95, miss * miss_factor),
                    footprint, None, rate, _DB_POOL,
                )
            )
    defs.append(
        PhaseDef(
            "send_results", 300_000, 0.15, 1.00, 0.06, 0.005, 0.10, 0.10,
            "write", 1 / 30_000, ("write", "sendto"),
        )
    )
    result = tuple(defs)
    _DEF_CACHE[kind] = result
    return result


class TpchWorkload:
    """Generator for the 17-query TPC-H subset."""

    name = "tpch"
    #: Per-phase jitter makes behavior values effectively unique, so
    #: whole-behavior-set memo keys never recur (fastpath hint).
    jittered_behaviors = True
    sampling_period_us = 1_000.0
    window_instructions = 1_000_000
    kinds = tuple(QUERY_PLANS)

    def sample_request(self, rng: np.random.Generator, request_id: int) -> RequestSpec:
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        return self.build_query(rng, request_id, kind)

    def build_query(
        self, rng: np.random.Generator, request_id: int, kind: str
    ) -> RequestSpec:
        """Materialize one request of a specific query type."""
        phases = materialize(rng, query_phase_defs(kind))
        return RequestSpec(
            request_id=request_id,
            app=self.name,
            kind=kind,
            stages=single_stage("mysql", phases),
        )
