"""Generation fast path: batched RNG, interned templates, block-ahead specs.

Request *generation* — not the event loop — bounds the simulator's
end-to-end speed on the server workloads: every reference request draws
two or three scalar normals per phase and rebuilds frozen
``Phase``/``PhaseBehavior``/``RequestSpec`` dataclasses from scratch.
This module removes that bound under the same contract as the simulator
fast path (`REPRO_GEN_FASTPATH=0` restores the reference generators;
differential tests pin byte-identity of event JSONL, traces, and latency
records).  Three layers:

* **batched RNG** — each request kind's phase-def plan (the same
  :class:`~repro.workloads.util.PhaseDef` tables the reference
  materializer consumes) is compiled once into a :class:`PhaseBlock`:
  flat jitter arrays in exact reference draw order.  Stamping a request
  draws one ``standard_normal(n)`` block and applies three vectorized
  IEEE-754 operations that are elementwise identical to the scalar
  ``jittered``/``jittered_int`` chain, so the bitstream and every
  downstream float are unchanged.  Mid-plan draws that *gate* structure
  (tpcc's item count, rubis's GC coin flips, every kind/catalog pick)
  stay scalar at their reference positions.
* **interned phase templates** — constant fields live in the compiled
  block; per-request values are stamped into lightweight ``__slots__``
  spec objects (:class:`FastPhase`/:class:`FastStage`/
  :class:`FastRequestSpec`) instead of re-validated frozen dataclasses.
  :class:`BehaviorInterner` guarantees value-equal behaviors share one
  object identity, so the simulator fast path's id-keyed
  sample-cost/pressure/contention memos hit whenever values recur
  instead of missing on equal-but-distinct objects.  Skipping dataclass
  validation is sound because every def's nominal values are validated
  through the reference constructor at template build, and the jitter
  floors (``max(0.5·nominal, ...)``) keep stamped values in the
  validated domain.
* **block-ahead synthesis** — when the arrival side exposes its
  schedule (every eager arrival process; closed loops trivially), the
  simulator calls :meth:`prepare_block` to synthesize the next N specs
  ahead of simulation into a deque that admission pops from.  Safe
  exactly when no simulation-side draw interleaves with generation
  draws, which the simulator checks before calling (syscall-sampling
  policies draw mid-run and disable it; fault/fixed-kind wrappers don't
  expose ``prepare_block`` and fall back to per-request synthesis).
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from repro.hardware.cpu import PhaseBehavior
from repro.workloads.base import Phase, RequestSpec
from repro.workloads.rubis import (
    GC_PROBABILITY,
    INTERACTION_MIX,
    RubisWorkload,
    interaction_segments,
)
from repro.workloads.tpcc import (
    NEW_ORDER_HEAD,
    TRANSACTION_MIX,
    TpccWorkload,
    new_order_body_defs,
    transaction_phase_defs,
)
from repro.workloads.tpch import TpchWorkload, query_phase_defs
from repro.workloads.util import Jit, phase as phase_probe
from repro.workloads.webserver import (
    FILE_CLASSES,
    WebServerWorkload,
    file_fingerprint,
    request_phase_defs,
)
from repro.workloads.webwork import NUM_PROBLEMS, WeBWorKWorkload, problem_phase_defs

#: Environment kill switch (read per construction, like the sim fast path).
GEN_FASTPATH_ENV = "REPRO_GEN_FASTPATH"


def gen_fastpath_enabled() -> bool:
    """Whether workload construction routes to the fast generators."""
    return os.environ.get(GEN_FASTPATH_ENV, "1") != "0"


class FastPhase:
    """``__slots__`` stand-in for :class:`Phase` on the generation path."""

    __slots__ = (
        "name",
        "instructions",
        "behavior",
        "entry_syscall",
        "syscall_rate_per_ins",
        "syscall_pool",
    )

    def __init__(self, name, instructions, behavior, entry_syscall,
                 syscall_rate_per_ins, syscall_pool):
        self.name = name
        self.instructions = instructions
        self.behavior = behavior
        self.entry_syscall = entry_syscall
        self.syscall_rate_per_ins = syscall_rate_per_ins
        self.syscall_pool = syscall_pool

    mean_syscall_distance_ins = Phase.mean_syscall_distance_ins


class FastStage:
    """``__slots__`` stand-in for :class:`Stage` with eager totals."""

    __slots__ = ("tier", "phases", "instructions", "cumulative_instructions")

    def __init__(self, tier, phases):
        self.tier = tier
        self.phases = tuple(phases)
        total = 0
        prefix = [0]
        for p in self.phases:
            total += p.instructions
            prefix.append(total)
        self.instructions = total
        self.cumulative_instructions = tuple(prefix)


class FastRequestSpec:
    """``__slots__`` stand-in for :class:`RequestSpec`.

    Borrows the reference spec's derived-view methods unchanged, so
    everything downstream of generation (tracker, syscall sequences,
    solo series) runs the exact reference code.
    """

    __slots__ = ("request_id", "app", "kind", "stages", "metadata",
                 "total_instructions")

    def __init__(self, request_id, app, kind, stages, metadata):
        self.request_id = request_id
        self.app = app
        self.kind = kind
        self.stages = stages
        self.metadata = metadata
        self.total_instructions = sum(s.instructions for s in stages)

    phases = RequestSpec.phases
    syscall_sequence = RequestSpec.syscall_sequence
    solo_cpi = RequestSpec.solo_cpi
    solo_series = RequestSpec.solo_series


#: Interner table bound above which the table is dropped and rebuilt.
#: Safe because the sim fast path's memos pin their own strong refs to
#: any behavior object they key by id.
_INTERN_CAP = 1 << 16


class BehaviorInterner:
    """Value-keyed :class:`PhaseBehavior` interner.

    ``get`` returns *the same object* for equal field values, giving the
    sim fast path's id-keyed memos identity stability across requests.
    Construction bypasses the frozen-dataclass ``__init__`` (and its
    validation): templates validate nominal values at build time and the
    jitter floors guarantee stamped cpi/refs stay positive/non-negative,
    so the domain checks cannot fire.
    """

    __slots__ = ("_table",)

    def __init__(self):
        self._table = {}

    def get(self, base_cpi, l2_refs_per_ins, l2_miss_ratio, cache_footprint):
        key = (base_cpi, l2_refs_per_ins, l2_miss_ratio, cache_footprint)
        behavior = self._table.get(key)
        if behavior is None:
            if len(self._table) >= _INTERN_CAP:
                self._table.clear()
            behavior = PhaseBehavior.__new__(PhaseBehavior)
            object.__setattr__(behavior, "base_cpi", base_cpi)
            object.__setattr__(behavior, "l2_refs_per_ins", l2_refs_per_ins)
            object.__setattr__(behavior, "l2_miss_ratio", l2_miss_ratio)
            object.__setattr__(behavior, "cache_footprint", cache_footprint)
            self._table[key] = behavior
        return behavior


def _choice_cdf(p) -> np.ndarray:
    """The cumulative table ``Generator.choice(n, p=p)`` searches.

    ``int(cdf.searchsorted(rng.random(), side="right"))`` consumes one
    uniform draw and reproduces ``int(rng.choice(n, p=p))`` bit-for-bit
    (including the RNG state), because it performs numpy's own internal
    sequence: contiguous float64 copy, ``cumsum``, normalize by the last
    element, right-bisect one ``random()`` double.
    """
    p = np.ascontiguousarray(p, dtype=np.float64)
    cdf = p.cumsum()
    cdf /= cdf[-1]
    return cdf


#: Floor applied by ``jittered_int`` (all generators use the default).
_INT_FLOOR = 1000.0


class PhaseBlock:
    """A phase-def plan compiled into batched-jitter form.

    One :meth:`stamp` call draws a single ``standard_normal(n)`` block —
    bit-equal to the n scalar draws the reference materializer makes, in
    the same order — and applies the jitter chain vectorized:
    ``j = base·(1 + frac·z)`` then ``maximum(0.5·base, j)`` elementwise,
    each operation in the scalar chain's IEEE-754 order.  Instruction
    draws additionally get ``maximum(1000, rint(j))`` — ``rint`` matches
    Python's banker's rounding in ``int(round(...))``.
    """

    __slots__ = (
        "n",
        "_ndraws",
        "_base",
        "_half",
        "_frac",
        "_ins_at",
        "_cpi_at",
        "_refs_at",
        "_names",
        "_refs_const",
        "_refs_jittered",
        "_miss",
        "_footprint",
        "_entry",
        "_rate",
        "_pool",
        "_intern",
    )

    def __init__(self, defs, intern: BehaviorInterner):
        base, frac = [], []
        ins_at, cpi_at, refs_at = [], [], []
        refs_const, refs_jittered = [], []
        for d in defs:
            # Validation probe: run the nominal values through the
            # reference constructor so bad constants fail at template
            # build with the phase name attached, and stamped values
            # (floored at half-nominal) inherit a validated domain.
            phase_probe(
                d.name,
                max(1, int(round(d.instructions))),
                cpi=d.cpi,
                refs=d.refs.base if type(d.refs) is Jit else d.refs,
                miss=d.miss,
                footprint=d.footprint,
                entry=d.entry,
                rate=d.rate,
                pool=d.pool,
            )
            ins_at.append(len(base))
            base.append(float(d.instructions))
            frac.append(d.ins_frac)
            cpi_at.append(len(base))
            base.append(d.cpi)
            frac.append(d.cpi_frac)
            if type(d.refs) is Jit:
                refs_at.append(len(base))
                base.append(d.refs.base)
                frac.append(d.refs.frac)
                refs_jittered.append(True)
                refs_const.append(0.0)
            else:
                refs_jittered.append(False)
                refs_const.append(d.refs)
        self.n = len(refs_const)
        self._ndraws = len(base)
        self._base = np.asarray(base, dtype=np.float64)
        self._half = 0.5 * self._base
        self._frac = np.asarray(frac, dtype=np.float64)
        self._ins_at = np.asarray(ins_at, dtype=np.intp)
        self._cpi_at = np.asarray(cpi_at, dtype=np.intp)
        self._refs_at = np.asarray(refs_at, dtype=np.intp)
        self._names = tuple(d.name for d in defs)
        self._refs_const = tuple(refs_const)
        self._refs_jittered = tuple(refs_jittered)
        self._miss = tuple(d.miss for d in defs)
        self._footprint = tuple(d.footprint for d in defs)
        self._entry = tuple(d.entry for d in defs)
        self._rate = tuple(d.rate for d in defs)
        self._pool = tuple(d.pool for d in defs)
        self._intern = intern

    def stamp(self, rng: np.random.Generator) -> list:
        """Materialize one request's phases from a single block draw."""
        z = rng.standard_normal(self._ndraws)
        j = self._base * (1.0 + self._frac * z)
        np.maximum(self._half, j, out=j)
        ins = np.maximum(_INT_FLOOR, np.rint(j[self._ins_at]))
        ins_vals = ins.astype(np.int64).tolist()
        cpi_vals = j[self._cpi_at].tolist()
        refs_vals = j[self._refs_at].tolist()

        intern_get = self._intern.get
        phases = []
        append = phases.append
        refs_cursor = 0
        refs_const = self._refs_const
        refs_jittered = self._refs_jittered
        miss, footprint = self._miss, self._footprint
        names, entry, rate, pool = self._names, self._entry, self._rate, self._pool
        for k in range(self.n):
            if refs_jittered[k]:
                refs = refs_vals[refs_cursor]
                refs_cursor += 1
            else:
                refs = refs_const[k]
            behavior = intern_get(cpi_vals[k], refs, miss[k], footprint[k])
            append(
                FastPhase(names[k], ins_vals[k], behavior, entry[k], rate[k], pool[k])
            )
        return phases


#: Shared interner + compiled-template store.  Templates are pure
#: functions of their key (the def tables are deterministic constants,
#: and the webserver key includes the catalog seed), so instances share
#: them: repeated workload constructions in one process — experiment
#: sweeps, benchmarks — skip recompilation entirely.
_SHARED_INTERN = BehaviorInterner()
_TEMPLATE_CACHE: dict = {}


def _cached(key, build):
    """Fetch a compiled template by key, building it on first use."""
    template = _TEMPLATE_CACHE.get(key)
    if template is None:
        template = build()
        _TEMPLATE_CACHE[key] = template
    return template


class _BlockAheadMixin:
    """Deque-fed ``sample_request`` with an optional block-ahead fill.

    ``prepare_block`` synthesizes specs for a contiguous id range in one
    pass; ``sample_request`` pops them when ids line up and falls back to
    direct synthesis otherwise (clearing a stale block, e.g. after a
    caller re-samples the same id during rejection sampling).
    """

    def sample_request(self, rng: np.random.Generator, request_id: int):
        block = self._block
        if block:
            if block[0].request_id == request_id:
                return block.popleft()
            block.clear()
        return self._synthesize(rng, request_id)

    def prepare_block(self, rng: np.random.Generator, start_id: int, count: int):
        """Pre-synthesize specs for ids ``start_id .. start_id+count-1``.

        Draw-order safe only when the caller guarantees no other draw
        from ``rng`` lands between ``start_id``'s reference position and
        the last consumed spec's — the simulator checks this before
        calling (eager arrival schedules, no syscall-sampling draws).
        """
        block = self._block
        block.clear()
        synthesize = self._synthesize
        for request_id in range(start_id, start_id + count):
            block.append(synthesize(rng, request_id))


class FastWebServerWorkload(_BlockAheadMixin, WebServerWorkload):
    """Batched-generation webserver: per-file interned phase templates."""

    def __init__(self, catalog_seed: int = 909_009):
        super().__init__(catalog_seed)
        self._block = deque()
        self._catalog_seed = catalog_seed
        mix = np.array([c[3] for c in FILE_CLASSES])
        self._cls_cdf = _choice_cdf(mix / mix.sum())
        self._file_cdf = _choice_cdf(self._popularity)

    def _build_template(self, cls_idx, file_idx):
        cls_name = FILE_CLASSES[cls_idx][0]
        file_bytes, file_seed = self._catalog[cls_name][file_idx]
        block = PhaseBlock(
            request_phase_defs(file_bytes, file_fingerprint(file_seed)),
            _SHARED_INTERN,
        )
        return (block, cls_name, file_bytes, f"{cls_name}/{file_idx}")

    def _synthesize(self, rng, request_id):
        cls_idx = int(self._cls_cdf.searchsorted(rng.random(), side="right"))
        file_idx = int(self._file_cdf.searchsorted(rng.random(), side="right"))
        block, cls_name, file_bytes, file_id = _cached(
            ("webserver", self._catalog_seed, cls_idx, file_idx),
            lambda: self._build_template(cls_idx, file_idx),
        )
        return FastRequestSpec(
            request_id,
            self.name,
            cls_name,
            (FastStage("apache", block.stamp(rng)),),
            {"file_bytes": file_bytes, "file_id": file_id},
        )


class FastTpccWorkload(_BlockAheadMixin, TpccWorkload):
    """Batched-generation TPC-C: per-kind blocks, new-order head/body split."""

    def __init__(self):
        self._block = deque()
        self._mix_cdf = _choice_cdf(np.array([t[1] for t in TRANSACTION_MIX]))
        self._fixed = {
            kind: _cached(
                ("tpcc", kind),
                lambda k=kind: PhaseBlock(transaction_phase_defs(k), _SHARED_INTERN),
            )
            for kind in ("payment", "order_status", "delivery", "stock_level")
        }
        self._new_order_head = _cached(
            ("tpcc", "new_order_head"),
            lambda: PhaseBlock(NEW_ORDER_HEAD, _SHARED_INTERN),
        )

    def _synthesize(self, rng, request_id):
        idx = int(self._mix_cdf.searchsorted(rng.random(), side="right"))
        kind = TRANSACTION_MIX[idx][0]
        if kind == "new_order":
            phases = self._new_order_head.stamp(rng)
            n_items = int(rng.integers(8, 13))
            body = _cached(
                ("tpcc", "new_order_body", n_items),
                lambda: PhaseBlock(new_order_body_defs(n_items), _SHARED_INTERN),
            )
            phases += body.stamp(rng)
        else:
            phases = self._fixed[kind].stamp(rng)
        return FastRequestSpec(
            request_id, self.name, kind, (FastStage("mysql", phases),), {}
        )


class FastTpchWorkload(_BlockAheadMixin, TpchWorkload):
    """Batched-generation TPC-H: one interned block per query kind."""

    def __init__(self):
        self._block = deque()

    def _synthesize(self, rng, request_id):
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        block = _cached(
            ("tpch", kind),
            lambda: PhaseBlock(query_phase_defs(kind), _SHARED_INTERN),
        )
        return FastRequestSpec(
            request_id, self.name, kind, (FastStage("mysql", block.stamp(rng)),), {}
        )


class FastRubisWorkload(_BlockAheadMixin, RubisWorkload):
    """Batched-generation RUBiS: segmented blocks around the GC coin flips."""

    def __init__(self):
        self._block = deque()
        mix = np.array([i[1] for i in INTERACTION_MIX])
        self._mix_cdf = _choice_cdf(mix / mix.sum())

    @staticmethod
    def _build_template(idx):
        head, comp_pairs, tail = interaction_segments(idx)
        return (
            PhaseBlock(head, _SHARED_INTERN),
            tuple(
                (PhaseBlock((c,), _SHARED_INTERN), PhaseBlock((g,), _SHARED_INTERN))
                for c, g in comp_pairs
            ),
            PhaseBlock(tail, _SHARED_INTERN),
        )

    def _synthesize(self, rng, request_id):
        idx = int(self._mix_cdf.searchsorted(rng.random(), side="right"))
        kind, _, components, _, _ = INTERACTION_MIX[idx]
        category = int(rng.integers(20))
        head_block, pair_blocks, tail_block = _cached(
            ("rubis", idx), lambda: self._build_template(idx)
        )

        web_in = head_block.stamp(rng)
        ejb_phases = []
        for comp_block, gc_block in pair_blocks:
            ejb_phases += comp_block.stamp(rng)
            if rng.random() < GC_PROBABILITY:
                ejb_phases += gc_block.stamp(rng)
        tail_phases = tail_block.stamp(rng)

        stages = (
            FastStage("tomcat", web_in),
            FastStage("jboss", ejb_phases),
            FastStage("mysql", tail_phases[:2]),
            FastStage("jboss_render", tail_phases[2:3]),
            FastStage("tomcat_out", tail_phases[3:4]),
        )
        return FastRequestSpec(
            request_id,
            self.name,
            kind,
            stages,
            {"category": category, "components": components},
        )


class FastWeBWorKWorkload(_BlockAheadMixin, WeBWorKWorkload):
    """Batched-generation WeBWorK: one interned block per problem id."""

    def __init__(self):
        self._block = deque()

    def _synthesize(self, rng, request_id):
        problem_id = int(rng.integers(NUM_PROBLEMS))
        block = _cached(
            ("webwork", problem_id),
            lambda: PhaseBlock(problem_phase_defs(problem_id), _SHARED_INTERN),
        )
        return FastRequestSpec(
            request_id,
            self.name,
            f"problem_{problem_id}",
            (FastStage("apache_modperl", block.stamp(rng)),),
            {"problem_id": problem_id},
        )


#: Fast factories, keyed like the registry's reference factories.
FAST_FACTORIES = {
    "webserver": FastWebServerWorkload,
    "tpcc": FastTpccWorkload,
    "tpch": FastTpchWorkload,
    "rubis": FastRubisWorkload,
    "webwork": FastWeBWorKWorkload,
}

