"""Memory-bus bandwidth model.

All four cores share the front-side bus and memory controller.  The paper
notes (Section 5.2) that for fine-grained requests without large working
sets, performance is constrained more by memory bandwidth than by L2 space.
We model this as an inflation of the effective L2 miss penalty that grows
with the *other* cores' aggregate miss traffic, so a core suffers from its
neighbors' bandwidth consumption even across L2 domains.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryBusModel:
    """Miss-penalty inflation as a function of co-runner miss traffic."""

    #: Bus-occupancy cycles consumed per L2 miss (line transfer + protocol).
    cycles_per_miss: float = 24.0
    #: How strongly bus occupancy by other cores inflates the miss penalty.
    contention_gamma: float = 1.2
    #: Queueing-style superlinear term: when several cores miss heavily at
    #: once, memory requests queue and the per-miss penalty grows faster
    #: than linearly.  This is what makes *coincidental* co-execution of
    #: peak-usage periods produce worst-case request outliers (Section 5).
    contention_beta: float = 0.8
    #: Occupancy is clamped to this value per co-running core to keep
    #: penalties finite.
    max_occupancy: float = 0.9
    #: Number of cores whose traffic can pile onto the bus (for clamping).
    machine_cores: int = 4

    def miss_traffic(
        self, l2_refs_per_ins: float, miss_ratio: float, approx_cpi: float
    ) -> float:
        """Bus occupancy fraction contributed by one core's miss stream."""
        if approx_cpi <= 0:
            raise ValueError("approx_cpi must be positive")
        misses_per_cycle = l2_refs_per_ins * miss_ratio / approx_cpi
        return min(self.max_occupancy, misses_per_cycle * self.cycles_per_miss)

    def effective_miss_penalty(
        self, base_penalty: float, others_occupancy: float
    ) -> float:
        """Effective per-miss penalty given other cores' bus occupancy."""
        occupancy = max(0.0, others_occupancy)
        occupancy = min(occupancy, (self.machine_cores - 1) * self.max_occupancy)
        return base_penalty * (
            1.0
            + self.contention_gamma * occupancy
            + self.contention_beta * occupancy**2
        )
