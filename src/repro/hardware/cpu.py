"""Core execution state and the effective-rate computation.

The simulator is a piecewise-constant-rate model: between OS-visible events,
each core executes with fixed effective rates (cycles per instruction, L2
references per instruction, L2 miss ratio) derived from the running phase's
base behavior plus the contention exerted by co-runners.  At every event the
affected cores lazily accumulate counters for the elapsed interval and the
rates are recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hardware.cache import SharedL2Model, phase_pressure
from repro.hardware.counters import CounterSnapshot
from repro.hardware.memory import MemoryBusModel
from repro.hardware.platform import MachineConfig


@dataclass(frozen=True)
class PhaseBehavior:
    """Solo (uncontended) hardware behavior of one execution phase."""

    #: Cycles per instruction with all L2 misses excluded (hits included).
    base_cpi: float
    #: L2 cache references per retired instruction.
    l2_refs_per_ins: float
    #: Solo L2 miss ratio (misses per reference).
    l2_miss_ratio: float
    #: Fraction of the shared L2 this phase wants to occupy, in [0, 1].
    cache_footprint: float

    def __post_init__(self):
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.l2_refs_per_ins < 0:
            raise ValueError("l2_refs_per_ins must be non-negative")
        if not 0.0 <= self.l2_miss_ratio <= 1.0:
            raise ValueError("l2_miss_ratio must be in [0, 1]")
        if not 0.0 <= self.cache_footprint <= 1.0:
            raise ValueError("cache_footprint must be in [0, 1]")

    def solo_cpi(self, miss_penalty_cycles: float) -> float:
        """Overall CPI when running alone on the machine."""
        return self.base_cpi + (
            miss_penalty_cycles * self.l2_refs_per_ins * self.l2_miss_ratio
        )


@dataclass(frozen=True)
class EffectiveRates:
    """Contention-adjusted execution rates for one core's current phase."""

    cpi: float
    l2_refs_per_ins: float
    l2_miss_ratio: float

    def counters_for_instructions(self, instructions: float) -> CounterSnapshot:
        refs = instructions * self.l2_refs_per_ins
        return CounterSnapshot(
            cycles=instructions * self.cpi,
            instructions=instructions,
            l2_refs=refs,
            l2_misses=refs * self.l2_miss_ratio,
        )

    def instructions_for_cycles(self, cycles: float) -> float:
        return cycles / self.cpi


def compute_effective_rates(
    machine: MachineConfig,
    cache: SharedL2Model,
    bus: MemoryBusModel,
    behaviors: Dict[int, PhaseBehavior],
) -> Dict[int, EffectiveRates]:
    """Compute every running core's effective rates under contention.

    ``behaviors`` maps core id -> the phase currently running there (idle
    cores are simply absent).  The computation is a single pass:

    1. each running phase exerts cache pressure on its L2-domain peers,
       inflating their miss ratio and reference rate;
    2. each core's approximate miss traffic then contributes bus occupancy,
       inflating the *other* cores' effective miss penalty;
    3. the final CPI combines the base CPI with the inflated miss costs.
    """
    pressures = {
        core: phase_pressure(b.l2_refs_per_ins, b.base_cpi, b.cache_footprint)
        for core, b in behaviors.items()
    }

    miss_ratios: Dict[int, float] = {}
    ref_rates: Dict[int, float] = {}
    for core, behavior in behaviors.items():
        co_pressure = sum(
            pressures[peer]
            for peer in machine.l2_peers_of(core)
            if peer in behaviors
        )
        miss_ratios[core] = cache.effective_miss_ratio(
            behavior.l2_miss_ratio, behavior.cache_footprint, co_pressure
        )
        ref_rates[core] = cache.effective_ref_rate(
            behavior.l2_refs_per_ins, co_pressure
        )

    traffic = {
        core: bus.miss_traffic(
            ref_rates[core],
            miss_ratios[core],
            behaviors[core].solo_cpi(machine.l2_miss_penalty_cycles),
        )
        for core in behaviors
    }
    # Bus occupancy accumulates per machine: cores on different machines
    # (bus domains) do not contend for each other's memory bandwidth.
    bus_totals: Dict[int, float] = {}
    for core, value in traffic.items():
        domain = machine.bus_domain_of(core)
        bus_totals[domain] = bus_totals.get(domain, 0.0) + value

    rates: Dict[int, EffectiveRates] = {}
    for core, behavior in behaviors.items():
        others = bus_totals[machine.bus_domain_of(core)] - traffic[core]
        penalty = bus.effective_miss_penalty(
            machine.l2_miss_penalty_cycles, others
        )
        cpi = behavior.base_cpi + penalty * ref_rates[core] * miss_ratios[core]
        rates[core] = EffectiveRates(
            cpi=cpi,
            l2_refs_per_ins=ref_rates[core],
            l2_miss_ratio=miss_ratios[core],
        )
    return rates


#: Shared zero delta for no-progress advances (frozen, so safe to reuse).
_EMPTY_SNAPSHOT = CounterSnapshot()


@dataclass
class CoreState:
    """Mutable per-core execution state with lazy counter accumulation."""

    core_id: int
    rates: Optional[EffectiveRates] = None
    last_advance_cycle: float = 0.0
    #: Cumulative counters for everything this core ever executed
    #: (used by microbenchmark measurement in Table 1).
    total: CounterSnapshot = field(default_factory=CounterSnapshot)
    busy_cycles: float = 0.0

    @property
    def is_busy(self) -> bool:
        return self.rates is not None

    def advance(self, now_cycle: float) -> CounterSnapshot:
        """Accumulate counters for [last_advance, now] and return the delta.

        Idle cores accumulate nothing but still move their clock forward.
        """
        # ``inject`` pushes last_advance_cycle past "now" to model a stall:
        # events on other cores may fall inside that window, in which case
        # this core simply makes no progress (do not rewind the clock).
        elapsed = now_cycle - self.last_advance_cycle
        if elapsed <= 0.0:
            return _EMPTY_SNAPSHOT
        self.last_advance_cycle = now_cycle
        rates = self.rates
        if rates is None:
            return _EMPTY_SNAPSHOT
        # One direct snapshot: cycles re-anchored on wall time to avoid
        # float drift, refs/misses with the exact operation order of
        # EffectiveRates.counters_for_instructions.
        instructions = elapsed / rates.cpi
        refs = instructions * rates.l2_refs_per_ins
        delta = CounterSnapshot(
            cycles=elapsed,
            instructions=instructions,
            l2_refs=refs,
            l2_misses=refs * rates.l2_miss_ratio,
        )
        self.total = self.total + delta
        self.busy_cycles += elapsed
        return delta

    def inject(self, cost: CounterSnapshot) -> None:
        """Inject sampling-cost events and stall the core for their cycles.

        The injected cycles consume wall-clock time without phase progress:
        moving ``last_advance_cycle`` forward means the stalled interval
        produces no instructions from :meth:`advance`.
        """
        self.total = self.total + cost
        self.busy_cycles += cost.cycles
        self.last_advance_cycle += cost.cycles

    def set_rates(self, rates: Optional[EffectiveRates]) -> None:
        self.rates = rates
