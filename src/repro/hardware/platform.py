"""Machine topology and clock configuration.

Defaults mirror the paper's testbed: two dual-core Intel Xeon 5160 3.0 GHz
"Woodcrest" processors, a shared 4 MB L2 per die (16-way, 64-byte lines,
14-cycle latency), 2 GB of memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineConfig:
    """Static description of the simulated machine."""

    num_cores: int = 4
    frequency_ghz: float = 3.0
    #: Groups of core ids sharing one L2 cache (one tuple per die).
    l2_domains: tuple = ((0, 1), (2, 3))
    l2_size_kb: int = 4096
    l2_line_bytes: int = 64
    l2_hit_latency_cycles: int = 14
    #: Average uncontended cycles to service an L2 miss from memory.
    l2_miss_penalty_cycles: float = 220.0
    memory_mb: int = 2048
    #: Groups of core ids sharing one memory bus (one tuple per machine).
    #: None means a single machine: all cores share one bus.  Distinct bus
    #: domains model a distributed deployment (the paper's future work):
    #: cores on different machines contend neither for L2 nor for the bus.
    bus_domains: tuple = None

    _domain_of: dict = field(init=False, repr=False, compare=False, default=None)
    _bus_domain_of: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        domain_of = {}
        for domain_id, cores in enumerate(self.l2_domains):
            for core in cores:
                if core in domain_of:
                    raise ValueError(f"core {core} listed in two L2 domains")
                domain_of[core] = domain_id
        if sorted(domain_of) != list(range(self.num_cores)):
            raise ValueError("l2_domains must cover exactly cores 0..num_cores-1")
        object.__setattr__(self, "_domain_of", domain_of)

        if self.bus_domains is None:
            object.__setattr__(
                self, "bus_domains", (tuple(range(self.num_cores)),)
            )
        bus_domain_of = {}
        for domain_id, cores in enumerate(self.bus_domains):
            for core in cores:
                if core in bus_domain_of:
                    raise ValueError(f"core {core} listed in two bus domains")
                bus_domain_of[core] = domain_id
        if sorted(bus_domain_of) != list(range(self.num_cores)):
            raise ValueError("bus_domains must cover exactly cores 0..num_cores-1")
        for l2_cores in self.l2_domains:
            buses = {bus_domain_of[c] for c in l2_cores}
            if len(buses) != 1:
                raise ValueError("an L2 domain cannot span machines")
        object.__setattr__(self, "_bus_domain_of", bus_domain_of)

    @property
    def cycles_per_us(self) -> float:
        return self.frequency_ghz * 1000.0

    def us_to_cycles(self, us: float) -> float:
        return us * self.cycles_per_us

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.cycles_per_us

    def ms_to_cycles(self, ms: float) -> float:
        return self.us_to_cycles(ms * 1000.0)

    def l2_domain_of(self, core: int) -> int:
        """Return the L2 domain (die) id for ``core``."""
        return self._domain_of[core]

    def l2_peers_of(self, core: int) -> tuple:
        """Cores sharing an L2 cache with ``core`` (excluding itself)."""
        domain = self.l2_domains[self.l2_domain_of(core)]
        return tuple(c for c in domain if c != core)

    def bus_domain_of(self, core: int) -> int:
        """Return the bus domain (machine) id for ``core``."""
        return self._bus_domain_of[core]

    def bus_peers_of(self, core: int) -> tuple:
        """Cores sharing a memory bus with ``core`` (excluding itself)."""
        domain = self.bus_domains[self.bus_domain_of(core)]
        return tuple(c for c in domain if c != core)

    @property
    def num_machines(self) -> int:
        return len(self.bus_domains)

    def machine_cores(self, machine: int) -> tuple:
        """Core ids belonging to one machine (bus domain)."""
        return self.bus_domains[machine]


#: The paper's experimental platform.
WOODCREST = MachineConfig()


def serial_machine() -> MachineConfig:
    """A 1-core machine used for the paper's serial-execution baseline."""
    return MachineConfig(num_cores=1, l2_domains=((0,),))


def cluster_machine(
    num_machines: int = 2, cores_per_machine: int = 4
) -> MachineConfig:
    """Several Woodcrest-like machines as one distributed platform.

    Each machine gets its own L2 dies and its own memory bus; requests
    contend only with co-located requests (the paper's future-work
    distributed setting).
    """
    if num_machines < 1 or cores_per_machine < 1:
        raise ValueError("need at least one machine with one core")
    if cores_per_machine % 2:
        l2_domains = tuple(
            (c,) for c in range(num_machines * cores_per_machine)
        )
    else:
        l2_domains = tuple(
            (base + k, base + k + 1)
            for machine in range(num_machines)
            for k in range(0, cores_per_machine, 2)
            for base in (machine * cores_per_machine,)
        )
    bus_domains = tuple(
        tuple(
            machine * cores_per_machine + k for k in range(cores_per_machine)
        )
        for machine in range(num_machines)
    )
    return MachineConfig(
        num_cores=num_machines * cores_per_machine,
        l2_domains=l2_domains,
        bus_domains=bus_domains,
    )
