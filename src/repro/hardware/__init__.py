"""Simulated multicore hardware substrate.

The paper measured a 2-socket, 4-core Intel Xeon 5160 ("Woodcrest") machine
where each pair of cores shares one 4 MB L2 cache, using per-core hardware
performance counters.  This package substitutes a behavioral model that
exposes the same four counters the paper samples (CPU cycles, retired
instructions, L2 references, L2 misses) and couples co-running cores through
shared-L2 miss-ratio inflation and memory-bus bandwidth stalls.
"""

from repro.hardware.cache import SharedL2Model
from repro.hardware.counters import CounterSnapshot, SamplingContext, SamplingCostModel
from repro.hardware.cpu import (
    CoreState,
    EffectiveRates,
    PhaseBehavior,
    compute_effective_rates,
)
from repro.hardware.memory import MemoryBusModel
from repro.hardware.platform import WOODCREST, MachineConfig

__all__ = [
    "CoreState",
    "CounterSnapshot",
    "EffectiveRates",
    "MachineConfig",
    "MemoryBusModel",
    "PhaseBehavior",
    "SamplingContext",
    "SamplingCostModel",
    "SharedL2Model",
    "WOODCREST",
    "compute_effective_rates",
]
