"""Shared-L2 contention model.

Two cores per die share one L2 cache on the paper's platform.  When a
co-runner exerts cache *pressure* (it touches the L2 often and wants a large
footprint), the victim's effective miss ratio rises above its solo value —
this is the "multicore performance obfuscation" the paper characterizes in
Figure 1.  The model is intentionally simple and monotone:

  pressure_of(phase)   = (l2 refs per cycle) x footprint
  m_eff = m_base + (m_cap - m_base) * (1 - exp(-k * co_pressure)) * sensitivity

where ``sensitivity`` is the victim's own footprint (a phase that barely
uses the cache cannot be hurt much — this is why WeBWorK sees almost no
multicore impact while TPCH's 90-percentile CPI roughly doubles), and
``m_cap`` bounds the inflated miss ratio.

The paper's anomaly analysis (Section 4.3) also observed that co-running can
raise the L2 *reference* rate slightly (L1 coherence misses, extra
software-contention instructions); :meth:`SharedL2Model.effective_ref_rate`
models the hardware part of that as a small multiplicative inflation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def phase_pressure(l2_refs_per_ins: float, base_cpi: float, footprint: float) -> float:
    """Cache pressure a running phase exerts on its L2 peers.

    References per *cycle* (refs/ins divided by CPI) capture how often the
    phase touches the shared cache per unit time; the footprint factor
    captures how much of the cache it wants to occupy.
    """
    if base_cpi <= 0:
        raise ValueError("base_cpi must be positive")
    return (l2_refs_per_ins / base_cpi) * footprint


@dataclass(frozen=True)
class SharedL2Model:
    """Miss-ratio and reference-rate inflation under co-run pressure."""

    #: Saturation constant: how quickly co-runner pressure inflates misses.
    #: Pressure is refs/cycle-scaled, typically in [0, ~0.03].
    pressure_scale: float = 45.0
    #: Upper bound on any inflated miss ratio.
    miss_ratio_cap: float = 0.85
    #: Maximum fractional increase in L2 reference rate from coherence
    #: effects under full pressure.
    ref_inflation: float = 0.08

    def effective_miss_ratio(
        self, base_miss_ratio: float, footprint: float, co_pressure: float
    ) -> float:
        """Effective L2 miss ratio given the sum of peers' pressure."""
        if not 0.0 <= base_miss_ratio <= 1.0:
            raise ValueError(f"base_miss_ratio out of range: {base_miss_ratio}")
        if co_pressure < 0:
            raise ValueError("co_pressure must be non-negative")
        sensitivity = min(1.0, max(0.0, footprint))
        saturation = 1.0 - math.exp(-self.pressure_scale * co_pressure)
        inflated = base_miss_ratio + (
            (self.miss_ratio_cap - base_miss_ratio) * saturation * sensitivity
        )
        # A base ratio already above the cap is left alone (never reduced).
        return max(base_miss_ratio, inflated)

    def effective_ref_rate(
        self, base_refs_per_ins: float, co_pressure: float
    ) -> float:
        """Effective L2 references per instruction under co-run pressure."""
        saturation = 1.0 - math.exp(-self.pressure_scale * co_pressure)
        return base_refs_per_ins * (1.0 + self.ref_inflation * saturation)
