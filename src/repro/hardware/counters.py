"""Hardware performance counters and the sampling observer-effect model.

Each core exposes the four counters the paper samples: elapsed CPU cycles,
retired instructions, L2 cache references, and L2 misses.  Reading the
counters is not free — the act of sampling consumes CPU time and produces
additional counter events that get attributed to the running request (the
"observer effect", Section 3.1 / Table 1).  :class:`SamplingCostModel` holds
the ground-truth per-sample costs that the simulator injects; Table 1 of the
reproduction *measures* these back by differencing sampled vs. unsampled
microbenchmark runs, and the compensation logic subtracts the Mbench-Spin
minimum ("do no harm").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class SamplingContext(Enum):
    """Where a counter sample is taken from (cost differs, Table 1)."""

    #: Sampling while already in the kernel (context switch, syscall entry).
    IN_KERNEL = "in_kernel"
    #: Sampling from an APIC interrupt (extra user/kernel domain switch).
    INTERRUPT = "interrupt"


class CounterSnapshot:
    """Cumulative counter values at one instant for one core.

    Hand-written rather than a frozen dataclass: snapshots are allocated
    on the simulator's per-sample flush path, where the frozen-dataclass
    ``object.__setattr__`` init is measurable.  Value semantics (equality,
    hashing, repr) match the previous dataclass exactly.
    """

    __slots__ = ("cycles", "instructions", "l2_refs", "l2_misses")

    def __init__(
        self,
        cycles: float = 0.0,
        instructions: float = 0.0,
        l2_refs: float = 0.0,
        l2_misses: float = 0.0,
    ):
        self.cycles = cycles
        self.instructions = instructions
        self.l2_refs = l2_refs
        self.l2_misses = l2_misses

    def __repr__(self) -> str:
        return (
            f"CounterSnapshot(cycles={self.cycles!r}, "
            f"instructions={self.instructions!r}, "
            f"l2_refs={self.l2_refs!r}, l2_misses={self.l2_misses!r})"
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CounterSnapshot):
            return NotImplemented
        return (
            self.cycles == other.cycles
            and self.instructions == other.instructions
            and self.l2_refs == other.l2_refs
            and self.l2_misses == other.l2_misses
        )

    def __hash__(self) -> int:
        return hash((self.cycles, self.instructions, self.l2_refs, self.l2_misses))

    def __sub__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            cycles=self.cycles - other.cycles,
            instructions=self.instructions - other.instructions,
            l2_refs=self.l2_refs - other.l2_refs,
            l2_misses=self.l2_misses - other.l2_misses,
        )

    def __add__(self, other: "CounterSnapshot") -> "CounterSnapshot":
        return CounterSnapshot(
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            l2_refs=self.l2_refs + other.l2_refs,
            l2_misses=self.l2_misses + other.l2_misses,
        )

    def cpi(self) -> float:
        """Cycles per retired instruction over the snapshot interval."""
        if self.instructions <= 0:
            raise ValueError("no retired instructions in interval")
        return self.cycles / self.instructions


@dataclass(frozen=True)
class SamplingCostModel:
    """Ground-truth per-sample cost injected by the simulator.

    The fixed components correspond to the Mbench-Spin column of Table 1
    (no cache pollution); the ``*_pollution`` components are the additional
    cost observed when the running workload has polluted the cache state
    (the Mbench-Data column).  Pollution is scaled by the running phase's
    cache footprint in [0, 1].
    """

    in_kernel_cycles: float = 1270.0
    in_kernel_cycles_pollution: float = 104.0
    in_kernel_instructions: float = 649.0
    in_kernel_instructions_pollution: float = 0.0
    in_kernel_l2_refs_pollution: float = 13.0

    interrupt_cycles: float = 2276.0
    interrupt_cycles_pollution: float = 112.0
    interrupt_instructions: float = 724.0
    interrupt_instructions_pollution: float = 10.0
    interrupt_l2_refs_pollution: float = 12.0

    def cost(self, context: SamplingContext, pollution: float) -> CounterSnapshot:
        """Counter events one sample injects under ``pollution`` in [0, 1]."""
        pollution = min(1.0, max(0.0, pollution))
        if context is SamplingContext.IN_KERNEL:
            return CounterSnapshot(
                cycles=self.in_kernel_cycles
                + self.in_kernel_cycles_pollution * pollution,
                instructions=self.in_kernel_instructions
                + self.in_kernel_instructions_pollution * pollution,
                l2_refs=self.in_kernel_l2_refs_pollution * pollution,
                l2_misses=0.0,
            )
        return CounterSnapshot(
            cycles=self.interrupt_cycles + self.interrupt_cycles_pollution * pollution,
            instructions=self.interrupt_instructions
            + self.interrupt_instructions_pollution * pollution,
            l2_refs=self.interrupt_l2_refs_pollution * pollution,
            l2_misses=0.0,
        )

    def minimum_cost(self, context: SamplingContext) -> CounterSnapshot:
        """The smallest possible per-sample cost (zero pollution).

        This is what "do no harm" compensation subtracts: the observer
        effect is workload-dependent and unknowable online, so the system
        subtracts the minimum measured effect (Mbench-Spin) which never
        over-compensates (Section 3.1).
        """
        return self.cost(context, pollution=0.0)

    def time_cost_us(self, context: SamplingContext, frequency_ghz: float) -> float:
        """Wall-clock cost of one sample at zero pollution, in microseconds."""
        cycles = (
            self.in_kernel_cycles
            if context is SamplingContext.IN_KERNEL
            else self.interrupt_cycles
        )
        return cycles / (frequency_ghz * 1000.0)
