"""repro — reproduction of "Request Behavior Variations" (ASPLOS 2010).

A simulated multicore server system with OS-level online tracking of
per-request hardware-counter behavior variations, variation-driven request
modeling (differencing, classification, anomaly detection, online
signatures, prediction), and contention-easing CPU scheduling.

Quick start::

    from repro import run_workload, SamplingPolicy
    result = run_workload("tpcc", num_requests=50,
                          sampling=SamplingPolicy.interrupt(100.0))
    for trace in result.traces[:3]:
        print(trace.spec.kind, trace.overall_cpi())
"""

from repro.core import (
    Ewma,
    LastValue,
    MetricSeries,
    RunningAverage,
    VaEwma,
    captured_variation,
    dtw_distance,
    inter_request_variation,
    k_medoids,
    l1_distance,
    levenshtein_distance,
)
from repro.analysis.projection import project_population, project_trace
from repro.core.anomaly import detect_by_centroid_distance, detect_multi_metric_pairs
from repro.core.signatures import RecentPastPredictor, SignatureBank
from repro.core.stagedetect import identify_stages
from repro.core.transitions import TransitionSignalTrainer
from repro.kernel.trace_io import load_traces, save_traces
from repro.hardware import MachineConfig, SamplingCostModel, WOODCREST
from repro.kernel import (
    ContentionEasingScheduler,
    RequestTrace,
    RoundRobinScheduler,
    SamplingMode,
    SamplingPolicy,
    ServerSimulator,
    SimConfig,
    SimResult,
    run_workload,
)
from repro.workloads import available_workloads, make_workload

__version__ = "1.0.0"

__all__ = [
    "ContentionEasingScheduler",
    "Ewma",
    "LastValue",
    "MachineConfig",
    "MetricSeries",
    "RecentPastPredictor",
    "RequestTrace",
    "RoundRobinScheduler",
    "RunningAverage",
    "SamplingCostModel",
    "SamplingMode",
    "SamplingPolicy",
    "ServerSimulator",
    "SignatureBank",
    "SimConfig",
    "SimResult",
    "TransitionSignalTrainer",
    "VaEwma",
    "WOODCREST",
    "available_workloads",
    "captured_variation",
    "detect_by_centroid_distance",
    "detect_multi_metric_pairs",
    "dtw_distance",
    "identify_stages",
    "inter_request_variation",
    "k_medoids",
    "l1_distance",
    "levenshtein_distance",
    "load_traces",
    "make_workload",
    "project_population",
    "project_trace",
    "run_workload",
    "save_traces",
]
