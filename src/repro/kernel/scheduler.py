"""CPU scheduler policy interface and the baseline round-robin scheduler.

The simulator keeps one runqueue per core (the paper's implementation does
not migrate requests between core runqueues).  Policies are consulted at
three points: when a core needs a new task (dispatch), when a quantum
expires, and — for adaptive policies — at periodic rescheduling
opportunities (at most every 5 ms in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.task import Task


class SchedulerPolicy:
    """Base policy: FIFO runqueues, fixed quantum, no adaptive resched."""

    #: CPU scheduling quantum.  General-purpose OSes use large quanta to
    #: avoid frequent cache pollution across context switches; Linux goes
    #: up to 100 ms (Section 5.2).
    quantum_us: float = 100_000.0
    #: Adaptive rescheduling interval (None = only quantum expiries).
    resched_interval_us: Optional[float] = None

    def describe(self) -> dict:
        """Identity + parameters of the policy, for trace/metric metadata.

        Values must be JSON-serializable and deterministic for a given
        configuration (run_start events carry them, and determinism tests
        hash the exported stream).
        """
        return {
            "policy": type(self).__name__,
            "quantum_us": self.quantum_us,
            "resched_interval_us": self.resched_interval_us,
        }

    def on_sample(
        self, task: Task, instructions: float, l2_misses: float, cycles: float
    ) -> None:
        """Counter-sample hook: adaptive policies update predictors here."""

    def pick(
        self,
        core_id: int,
        runqueue: List[Task],
        running: Dict[int, Optional[Task]],
    ) -> Optional[int]:
        """Index into ``runqueue`` of the task to dispatch (None = idle)."""
        return 0 if runqueue else None

    def should_preempt(
        self,
        core_id: int,
        current: Task,
        runqueue: List[Task],
        running: Dict[int, Optional[Task]],
    ) -> Optional[int]:
        """At a resched opportunity: runqueue index to switch to, or None.

        The simulator keeps the current request at the head of the local
        runqueue before each attempt, so returning None resumes the current
        task without paying any context-switch cache pollution.
        """
        return None


@dataclass
class RoundRobinScheduler(SchedulerPolicy):
    """The baseline ("original") scheduler: FIFO + quantum round-robin."""

    quantum_us: float = 100_000.0
    resched_interval_us: Optional[float] = None
    stats: dict = field(default_factory=lambda: {"dispatches": 0})

    def pick(self, core_id, runqueue, running):
        if runqueue:
            self.stats["dispatches"] += 1
            return 0
        return None
