"""Request-context tracking and per-request timeline serialization.

A request does not execute continuously on one CPU: it is context-switched,
and it propagates across server tiers through socket operations.  The
tracker attributes every execution period (the counter deltas between two
samples) to the owning request and, at completion, serializes the periods
into a continuous request timeline (the paper's Section 2.1 mechanism,
detailed in their prior work [27]).

Traces carry both raw measured counters (including sampling observer-effect
perturbation) and compensated counters where the known minimum per-sample
cost has been subtracted ("do no harm", Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.timeseries import MetricSeries
from repro.hardware.counters import CounterSnapshot, SamplingContext, SamplingCostModel
from repro.workloads.base import RequestSpec

#: Metric names resolvable by :meth:`RequestTrace.series` and friends.
METRICS = ("cpi", "l2_refs_per_ins", "l2_miss_per_ins", "l2_miss_ratio")


class PeriodRecord:
    """One execution period: counter deltas between consecutive samples.

    A hand-written ``__slots__`` class (not a dataclass): the simulator
    allocates one per flushed period on its hot path, and slotted
    attribute storage is measurably cheaper than dict-backed instances.
    The constructor signature is unchanged.
    """

    __slots__ = (
        "start_cycle",
        "end_cycle",
        "core",
        "counters",
        "injected_in_kernel",
        "injected_interrupt",
        "closing_context",
    )

    def __init__(
        self,
        start_cycle: float,
        end_cycle: float,
        core: int,
        counters: CounterSnapshot,
        injected_in_kernel: int = 0,
        injected_interrupt: int = 0,
        closing_context: Optional[SamplingContext] = None,
    ):
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.core = core
        self.counters = counters
        #: Number of compensatable samples whose cost was injected into
        #: this period, by sampling context.
        self.injected_in_kernel = injected_in_kernel
        self.injected_interrupt = injected_interrupt
        #: What closed the period (None for the final flush at completion).
        self.closing_context = closing_context

    def __repr__(self) -> str:
        return (
            f"PeriodRecord(start_cycle={self.start_cycle!r}, "
            f"end_cycle={self.end_cycle!r}, core={self.core!r}, "
            f"counters={self.counters!r}, "
            f"injected_in_kernel={self.injected_in_kernel!r}, "
            f"injected_interrupt={self.injected_interrupt!r}, "
            f"closing_context={self.closing_context!r})"
        )


class RequestTrace:
    """Serialized per-request counter timeline."""

    def __init__(
        self,
        spec: RequestSpec,
        arrival_cycle: float,
        completion_cycle: float,
        periods: List[PeriodRecord],
        syscall_events: List[Tuple[float, str]],
        cost_model: Optional[SamplingCostModel],
        frequency_ghz: float,
    ):
        if not periods:
            raise ValueError(f"request {spec.request_id} produced no periods")
        self.spec = spec
        self.arrival_cycle = arrival_cycle
        self.completion_cycle = completion_cycle
        self.syscall_events = list(syscall_events)
        self.frequency_ghz = frequency_ghz

        order = np.argsort([p.start_cycle for p in periods], kind="stable")
        periods = [periods[i] for i in order]
        self.start = np.array([p.start_cycle for p in periods])
        self.end = np.array([p.end_cycle for p in periods])
        self.core = np.array([p.core for p in periods], dtype=int)
        self.raw_instructions = np.array([p.counters.instructions for p in periods])
        self.raw_cycles = np.array([p.counters.cycles for p in periods])
        self.raw_l2_refs = np.array([p.counters.l2_refs for p in periods])
        self.raw_l2_misses = np.array([p.counters.l2_misses for p in periods])
        n_ik = np.array([p.injected_in_kernel for p in periods], dtype=float)
        n_int = np.array([p.injected_interrupt for p in periods], dtype=float)

        if cost_model is None:
            self.instructions = self.raw_instructions.copy()
            self.cycles = self.raw_cycles.copy()
            self.l2_refs = self.raw_l2_refs.copy()
            self.l2_misses = self.raw_l2_misses.copy()
        else:
            ik = cost_model.minimum_cost(SamplingContext.IN_KERNEL)
            it = cost_model.minimum_cost(SamplingContext.INTERRUPT)
            self.instructions = np.maximum(
                1.0, self.raw_instructions - n_ik * ik.instructions - n_int * it.instructions
            )
            self.cycles = np.maximum(
                1.0, self.raw_cycles - n_ik * ik.cycles - n_int * it.cycles
            )
            self.l2_refs = np.maximum(
                0.0, self.raw_l2_refs - n_ik * ik.l2_refs - n_int * it.l2_refs
            )
            self.l2_misses = np.maximum(
                0.0, self.raw_l2_misses - n_ik * ik.l2_misses - n_int * it.l2_misses
            )

    # -- whole-request aggregates ------------------------------------------

    @property
    def num_periods(self) -> int:
        return int(self.instructions.size)

    @property
    def total_instructions(self) -> float:
        return float(self.instructions.sum())

    @property
    def total_cycles(self) -> float:
        return float(self.cycles.sum())

    def cpu_time_us(self) -> float:
        """Total CPU execution time consumed by the request."""
        return self.total_cycles / (self.frequency_ghz * 1000.0)

    def overall(self, metric: str) -> float:
        """Whole-execution value of a metric (total numerator / denominator)."""
        num, den = self._metric_sums(metric)
        return num / den

    def overall_cpi(self) -> float:
        return self.overall("cpi")

    # -- per-period views ---------------------------------------------------

    def _metric_arrays(self, metric: str):
        if metric == "cpi":
            return self.cycles, self.instructions
        if metric == "l2_refs_per_ins":
            return self.l2_refs, self.instructions
        if metric == "l2_miss_per_ins":
            return self.l2_misses, self.instructions
        if metric == "l2_miss_ratio":
            return self.l2_misses, self.l2_refs
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")

    def _metric_sums(self, metric: str):
        num, den = self._metric_arrays(metric)
        total_den = float(den.sum())
        if total_den <= 0:
            raise ValueError(f"metric {metric!r} denominator is zero for request")
        return float(num.sum()), total_den

    def period_values(self, metric: str):
        """Per-period metric values and instruction weights.

        Periods whose denominator is zero are dropped (e.g. miss ratio in a
        period without L2 references).
        """
        num, den = self._metric_arrays(metric)
        keep = den > 0
        return num[keep] / den[keep], self.instructions[keep]

    def series(self, metric: str, window_instructions: float) -> MetricSeries:
        """Metric series resampled on fixed instruction-count windows."""
        win = self.window_counters(window_instructions)
        num, den = self._window_metric(win, metric)
        safe_den = np.where(den > 0, den, 1.0)
        values = np.where(den > 0, num / safe_den, 0.0)
        return MetricSeries(values=values, lengths=np.full(values.shape, float(window_instructions)))

    def window_counters(self, window_instructions: float) -> Dict[str, np.ndarray]:
        """Counters aggregated over fixed instruction-count windows."""
        if window_instructions <= 0:
            raise ValueError("window_instructions must be positive")
        boundaries = np.concatenate([[0.0], np.cumsum(self.instructions)])
        total = boundaries[-1]
        n_windows = max(1, int(total // window_instructions))
        edges = window_instructions * np.arange(n_windows + 1)
        edges[-1] = min(edges[-1], total)
        out = {}
        for name, arr in (
            ("instructions", self.instructions),
            ("cycles", self.cycles),
            ("l2_refs", self.l2_refs),
            ("l2_misses", self.l2_misses),
        ):
            cum = np.concatenate([[0.0], np.cumsum(arr)])
            at_edges = np.interp(edges, boundaries, cum)
            out[name] = np.diff(at_edges)
        return out

    @staticmethod
    def _window_metric(win: Dict[str, np.ndarray], metric: str):
        if metric == "cpi":
            return win["cycles"], win["instructions"]
        if metric == "l2_refs_per_ins":
            return win["l2_refs"], win["instructions"]
        if metric == "l2_miss_per_ins":
            return win["l2_misses"], win["instructions"]
        if metric == "l2_miss_ratio":
            return win["l2_misses"], win["l2_refs"]
        raise ValueError(f"unknown metric {metric!r}; choose from {METRICS}")

    # -- execution-time views (for transition-signal training) --------------

    def exec_offset_of_cycle(self, cycle: float) -> float:
        """Map a wall-clock cycle to the request's busy-cycle offset.

        The request's execution timeline is the concatenation of its
        periods with scheduling gaps removed.
        """
        busy_before = 0.0
        for start, end, cyc in zip(self.start, self.end, self.cycles):
            if cycle < start:
                return busy_before
            if cycle <= end:
                wall = max(end - start, 1e-9)
                return busy_before + (cycle - start) / wall * cyc
            busy_before += cyc
        return busy_before

    def counters_in_exec_window(self, b0: float, b1: float) -> CounterSnapshot:
        """Counters accumulated between two busy-cycle offsets."""
        if b1 < b0:
            raise ValueError("window end before start")
        boundaries = np.concatenate([[0.0], np.cumsum(self.cycles)])
        b0 = min(max(b0, 0.0), boundaries[-1])
        b1 = min(max(b1, 0.0), boundaries[-1])
        values = {}
        for name, arr in (
            ("cycles", self.cycles),
            ("instructions", self.instructions),
            ("l2_refs", self.l2_refs),
            ("l2_misses", self.l2_misses),
        ):
            cum = np.concatenate([[0.0], np.cumsum(arr)])
            values[name] = float(
                np.interp(b1, boundaries, cum) - np.interp(b0, boundaries, cum)
            )
        return CounterSnapshot(**values)


class _OpenRequest:
    __slots__ = ("spec", "arrival_cycle", "periods", "syscalls")

    def __init__(self, spec: RequestSpec, arrival_cycle: float):
        self.spec = spec
        self.arrival_cycle = arrival_cycle
        self.periods: List[PeriodRecord] = []
        self.syscalls: List[Tuple[float, str]] = []


class RequestTracker:
    """Attributes execution periods and syscalls to request contexts."""

    def __init__(
        self,
        cost_model: Optional[SamplingCostModel],
        frequency_ghz: float,
        compensate: bool = True,
        collector=None,
    ):
        from repro.obs.trace import NULL_COLLECTOR

        self._cost_model = cost_model if compensate else None
        self._frequency_ghz = frequency_ghz
        self._open: Dict[int, _OpenRequest] = {}
        self._obs = collector if collector is not None else NULL_COLLECTOR
        # Precomputed per-kind guards: a kind-filtered collector skips
        # even the keyword packing on the dense emission sites.
        self._emit_syscall = self._obs.enabled and self._obs.wants("syscall")
        self._emit_period = self._obs.enabled and self._obs.wants("period_sample")

    def start_request(self, spec: RequestSpec, arrival_cycle: float) -> None:
        if spec.request_id in self._open:
            raise ValueError(f"request {spec.request_id} already tracked")
        self._open[spec.request_id] = _OpenRequest(spec, arrival_cycle)

    def record_syscall(self, request_id: int, cycle: float, name: str) -> None:
        self._open[request_id].syscalls.append((cycle, name))
        if self._emit_syscall:
            self._obs.emit("syscall", cycle, request_id=request_id, name=name)

    @property
    def emits_period_samples(self) -> bool:
        """Whether :meth:`close_period` emits ``period_sample`` events."""
        return self._emit_period

    def period_sink(self, request_id: int) -> list:
        """The open request's period list, for direct appends.

        The simulator fast path appends pre-filtered records here to skip
        the per-sample dict lookup in :meth:`close_period`; only valid
        while no ``period_sample`` observer is attached (see
        :attr:`emits_period_samples`).
        """
        return self._open[request_id].periods

    def close_period(self, request_id: int, period: PeriodRecord) -> None:
        """Attribute a finished execution period to its request.

        Periods with no measurable activity are dropped.  Kept periods are
        also emitted as ``period_sample`` events carrying the raw counter
        deltas plus injected-sample counts — the per-request sample stream
        the online pipeline (:mod:`repro.online`) consumes.
        """
        if period.counters.cycles <= 0 and period.counters.instructions <= 0:
            return
        self._open[request_id].periods.append(period)
        if self._emit_period:
            counters = period.counters
            self._obs.emit(
                "period_sample",
                period.end_cycle,
                request_id=request_id,
                core=period.core,
                start_cycle=period.start_cycle,
                instructions=counters.instructions,
                cycles=counters.cycles,
                l2_refs=counters.l2_refs,
                l2_misses=counters.l2_misses,
                injected_in_kernel=period.injected_in_kernel,
                injected_interrupt=period.injected_interrupt,
            )

    def finish_request(self, request_id: int, completion_cycle: float) -> RequestTrace:
        open_req = self._open.pop(request_id)
        return RequestTrace(
            spec=open_req.spec,
            arrival_cycle=open_req.arrival_cycle,
            completion_cycle=completion_cycle,
            periods=open_req.periods,
            syscall_events=open_req.syscalls,
            cost_model=self._cost_model,
            frequency_ghz=self._frequency_ghz,
        )

    @property
    def open_requests(self) -> int:
        return len(self._open)
