"""JSON export/import of request traces.

Captured request timelines are the interface between the online OS
tracking and offline modeling; persisting them lets analyses run on
recorded workloads (the paper's offline case studies) without re-running
the server.  The format is a plain JSON document, one object per request.
"""

from __future__ import annotations

import json
from typing import List

from repro.hardware.counters import CounterSnapshot
from repro.kernel.tracker import PeriodRecord, RequestTrace
from repro.workloads.base import RequestSpec, Stage
from repro.workloads.util import phase as make_phase

FORMAT_VERSION = 1


def trace_to_dict(trace: RequestTrace) -> dict:
    """Serialize one trace (measured timeline + minimal spec identity)."""
    spec = trace.spec
    return {
        "request_id": spec.request_id,
        "app": spec.app,
        "kind": spec.kind,
        "metadata": {k: _jsonable(v) for k, v in spec.metadata.items()},
        "arrival_cycle": trace.arrival_cycle,
        "completion_cycle": trace.completion_cycle,
        "frequency_ghz": trace.frequency_ghz,
        "total_spec_instructions": spec.total_instructions,
        "periods": {
            "start": trace.start.tolist(),
            "end": trace.end.tolist(),
            "core": trace.core.tolist(),
            "instructions": trace.instructions.tolist(),
            "cycles": trace.cycles.tolist(),
            "l2_refs": trace.l2_refs.tolist(),
            "l2_misses": trace.l2_misses.tolist(),
        },
        "syscalls": [[cycle, name] for cycle, name in trace.syscall_events],
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def trace_from_dict(data: dict) -> RequestTrace:
    """Reconstruct a trace.  The spec is rebuilt as a single opaque phase
    (the measured timeline, not the generative model, is what offline
    analyses consume)."""
    if not isinstance(data, dict) or "periods" not in data:
        raise ValueError("not a serialized request trace")
    p = data["periods"]
    total_ins = max(1, int(data.get("total_spec_instructions", 1)))
    spec = RequestSpec(
        request_id=data["request_id"],
        app=data["app"],
        kind=data["kind"],
        stages=(
            Stage(
                tier="recorded",
                phases=(
                    make_phase(
                        "recorded", total_ins, cpi=1.0, refs=0.0, miss=0.0,
                        footprint=0.0,
                    ),
                ),
            ),
        ),
        metadata=dict(data.get("metadata", {})),
    )
    periods = [
        PeriodRecord(
            start_cycle=start,
            end_cycle=end,
            core=core,
            counters=CounterSnapshot(cycles, instructions, refs, misses),
        )
        for start, end, core, instructions, cycles, refs, misses in zip(
            p["start"], p["end"], p["core"], p["instructions"],
            p["cycles"], p["l2_refs"], p["l2_misses"],
        )
    ]
    return RequestTrace(
        spec=spec,
        arrival_cycle=data["arrival_cycle"],
        completion_cycle=data["completion_cycle"],
        periods=periods,
        syscall_events=[(c, n) for c, n in data.get("syscalls", [])],
        cost_model=None,  # counters were stored already-compensated
        frequency_ghz=data.get("frequency_ghz", 3.0),
    )


def save_traces(traces: List[RequestTrace], path: str) -> None:
    """Write traces to a JSON file."""
    document = {
        "format": "repro-request-traces",
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    with open(path, "w") as fh:
        json.dump(document, fh)


def load_traces(path: str) -> List[RequestTrace]:
    """Read traces back from a JSON file."""
    with open(path) as fh:
        document = json.load(fh)
    if document.get("format") != "repro-request-traces":
        raise ValueError(f"{path}: not a repro trace file")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {document.get('version')}"
        )
    return [trace_from_dict(d) for d in document["traces"]]
