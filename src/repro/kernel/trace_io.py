"""JSON / JSONL export and import of request traces.

Captured request timelines are the interface between the online OS
tracking and offline modeling; persisting them lets analyses run on
recorded workloads (the paper's offline case studies) without re-running
the server.  Two encodings of the same per-request record:

* a plain JSON document holding every trace (the original format);
* JSONL — a header line followed by one trace object per line, written
  canonically (sorted keys, no whitespace) so identical runs export
  byte-identical files.  Streams and diffs better at fig12 scale, and
  matches the ``repro.obs`` event-export convention.

``save_traces``/``load_traces`` dispatch on a ``.jsonl`` path suffix.
"""

from __future__ import annotations

import json
from typing import List

from repro.hardware.counters import CounterSnapshot
from repro.kernel.tracker import PeriodRecord, RequestTrace
from repro.workloads.base import RequestSpec, Stage
from repro.workloads.util import phase as make_phase

FORMAT_VERSION = 1


def trace_to_dict(trace: RequestTrace) -> dict:
    """Serialize one trace (measured timeline + minimal spec identity)."""
    spec = trace.spec
    return {
        "request_id": spec.request_id,
        "app": spec.app,
        "kind": spec.kind,
        "metadata": {k: _jsonable(v) for k, v in spec.metadata.items()},
        "arrival_cycle": trace.arrival_cycle,
        "completion_cycle": trace.completion_cycle,
        "frequency_ghz": trace.frequency_ghz,
        # Coerced to int so export -> import -> re-export is byte-stable
        # (the reconstructed spec stores integral phase instructions).
        "total_spec_instructions": int(round(spec.total_instructions)),
        "periods": {
            "start": trace.start.tolist(),
            "end": trace.end.tolist(),
            "core": trace.core.tolist(),
            "instructions": trace.instructions.tolist(),
            "cycles": trace.cycles.tolist(),
            "l2_refs": trace.l2_refs.tolist(),
            "l2_misses": trace.l2_misses.tolist(),
        },
        "syscalls": [[cycle, name] for cycle, name in trace.syscall_events],
    }


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def trace_from_dict(data: dict) -> RequestTrace:
    """Reconstruct a trace.  The spec is rebuilt as a single opaque phase
    (the measured timeline, not the generative model, is what offline
    analyses consume)."""
    if not isinstance(data, dict) or "periods" not in data:
        raise ValueError("not a serialized request trace")
    p = data["periods"]
    total_ins = max(1, int(data.get("total_spec_instructions", 1)))
    spec = RequestSpec(
        request_id=data["request_id"],
        app=data["app"],
        kind=data["kind"],
        stages=(
            Stage(
                tier="recorded",
                phases=(
                    make_phase(
                        "recorded", total_ins, cpi=1.0, refs=0.0, miss=0.0,
                        footprint=0.0,
                    ),
                ),
            ),
        ),
        metadata=dict(data.get("metadata", {})),
    )
    periods = [
        PeriodRecord(
            start_cycle=start,
            end_cycle=end,
            core=core,
            counters=CounterSnapshot(cycles, instructions, refs, misses),
        )
        for start, end, core, instructions, cycles, refs, misses in zip(
            p["start"], p["end"], p["core"], p["instructions"],
            p["cycles"], p["l2_refs"], p["l2_misses"],
        )
    ]
    return RequestTrace(
        spec=spec,
        arrival_cycle=data["arrival_cycle"],
        completion_cycle=data["completion_cycle"],
        periods=periods,
        syscall_events=[(c, n) for c, n in data.get("syscalls", [])],
        cost_model=None,  # counters were stored already-compensated
        frequency_ghz=data.get("frequency_ghz", 3.0),
    )


def save_traces(traces: List[RequestTrace], path: str) -> None:
    """Write traces to ``path`` (JSONL when it ends in ``.jsonl``)."""
    if path.endswith(".jsonl"):
        save_traces_jsonl(traces, path)
        return
    document = {
        "format": "repro-request-traces",
        "version": FORMAT_VERSION,
        "traces": [trace_to_dict(t) for t in traces],
    }
    with open(path, "w") as fh:
        json.dump(document, fh)


def load_traces(path: str) -> List[RequestTrace]:
    """Read traces back from a JSON (or ``.jsonl``) file."""
    if path.endswith(".jsonl"):
        return load_traces_jsonl(path)
    with open(path) as fh:
        document = json.load(fh)
    if document.get("format") != "repro-request-traces":
        raise ValueError(f"{path}: not a repro trace file")
    if document.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported version {document.get('version')}"
        )
    return [trace_from_dict(d) for d in document["traces"]]


def traces_to_jsonl(traces: List[RequestTrace]) -> str:
    """Canonical JSONL text: header line, then one trace per line.

    Canonical serialization (sorted keys, compact separators) makes the
    export a pure function of the trace contents — the property the
    determinism golden tests hash-compare.
    """
    lines = [
        json.dumps(
            {
                "format": "repro-request-traces",
                "version": FORMAT_VERSION,
                "traces": len(traces),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    lines.extend(
        json.dumps(trace_to_dict(t), sort_keys=True, separators=(",", ":"))
        for t in traces
    )
    return "\n".join(lines) + "\n"


def parse_traces_jsonl(text: str) -> List[RequestTrace]:
    """Parse JSONL text produced by :func:`traces_to_jsonl`.

    Raises :class:`ValueError` (with the offending line number) on a
    foreign header, unsupported version, malformed lines, or a count
    mismatch.
    """
    # Number lines before blank filtering so errors point at the real
    # file position (blank separators must not renumber what follows).
    numbered = [
        (number, line)
        for number, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    if not numbered:
        raise ValueError("empty trace stream")
    header_number, header_line = numbered[0]
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"line {header_number}: malformed trace header: {error}"
        ) from None
    if not isinstance(header, dict) or header.get("format") != "repro-request-traces":
        raise ValueError("not a repro trace stream")
    if header.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported version {header.get('version')}")
    traces = []
    for number, line in numbered[1:]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {number}: malformed trace: {error}") from None
        try:
            traces.append(trace_from_dict(payload))
        except (ValueError, KeyError, TypeError) as error:
            raise ValueError(f"line {number}: {error}") from None
    declared = header.get("traces")
    if declared is not None and declared != len(traces):
        raise ValueError(
            f"header declares {declared} traces, stream has {len(traces)}"
        )
    return traces


def save_traces_jsonl(traces: List[RequestTrace], path: str) -> None:
    with open(path, "w") as fh:
        fh.write(traces_to_jsonl(traces))


def load_traces_jsonl(path: str) -> List[RequestTrace]:
    with open(path) as fh:
        return parse_traces_jsonl(fh.read())
