"""Schedulable tasks bound to request contexts.

A request may propagate over multiple server modules (tiers); within one
tier it is hosted by one task.  The tracker stitches the per-task execution
periods back into one continuous request timeline, exactly as the paper's
kernel instrumentation does for context switches and socket propagations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.workloads.base import Phase, RequestSpec, Stage


class TaskState(Enum):
    READY = "ready"
    RUNNING = "running"
    DONE = "done"


@dataclass
class Task:
    """One tier's worth of a request's execution."""

    task_id: int
    request: RequestSpec
    stage_index: int
    home_core: int
    state: TaskState = TaskState.READY
    phase_index: int = 0
    instructions_done_in_phase: float = 0.0
    enqueue_cycle: float = 0.0
    #: Whether the task has executed before (a resuming task whose cached
    #: state was evicted pays context-switch cache pollution; a fresh task's
    #: compulsory misses are already part of its phase miss ratios).
    has_started: bool = False
    #: Online prediction state attached by adaptive schedulers.
    predictor_state: dict = field(default_factory=dict)

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def stage(self) -> Stage:
        return self.request.stages[self.stage_index]

    @property
    def current_phase(self) -> Phase:
        return self.stage.phases[self.phase_index]

    @property
    def remaining_in_phase(self) -> float:
        return max(
            0.0, self.current_phase.instructions - self.instructions_done_in_phase
        )

    @property
    def remaining_in_stage(self) -> float:
        """Instructions left in this task's whole stage (dispatch load view).

        O(1) via the stage's cached cumulative-instruction table; the
        integer prefix sum is exact, so the float result is identical to
        summing the prior phases on every call.
        """
        stage = self.stage
        done_prior = stage.cumulative_instructions[self.phase_index]
        return max(
            0.0,
            stage.instructions - done_prior - self.instructions_done_in_phase,
        )

    @property
    def on_last_phase(self) -> bool:
        return self.phase_index == len(self.stage.phases) - 1

    @property
    def on_last_stage(self) -> bool:
        return self.stage_index == len(self.request.stages) - 1

    def advance_instructions(self, instructions: float) -> None:
        """Record phase progress; phase transitions are explicit events."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        self.instructions_done_in_phase += instructions

    def enter_next_phase(self) -> Optional[str]:
        """Move to the next phase in the stage; return its entry syscall.

        Raises if already on the stage's last phase — stage/request
        completion is handled by the simulator, not here.
        """
        if self.on_last_phase:
            raise RuntimeError("enter_next_phase called on last phase of stage")
        self.phase_index += 1
        self.instructions_done_in_phase = 0.0
        return self.current_phase.entry_syscall
