"""Counter-sampling policies and accounting (Sections 3.1 and 3.2).

Four techniques from the paper:

* **context-switch sampling** is always on — it is required to attribute
  counter events to the right request across switches;
* **interrupt-based sampling** (Section 3.1) fires an APIC-style interrupt
  every ``interrupt_period_us`` — each sample pays the expensive
  user/kernel domain-switch cost;
* **system-call-triggered sampling** (Section 3.2) samples at the kernel
  entrance of a system call if at least ``t_syscall_min_us`` elapsed since
  the last sample, with a backup interrupt at ``t_backup_int_us`` covering
  long syscall-free stretches — in-kernel samples are ~45% cheaper;
* **transition-signal sampling** restricts the syscall triggers to a subset
  of syscall names learned to precede behavior transitions (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional

from repro.hardware.counters import SamplingContext, SamplingCostModel


class SamplingMode(Enum):
    """The counter-sampling technique in force (Sections 3.1-3.2)."""

    #: Context-switch samples only (the mandatory minimum).
    CONTEXT_SWITCH_ONLY = "context_switch_only"
    INTERRUPT = "interrupt"
    SYSCALL_TRIGGERED = "syscall_triggered"
    TRANSITION_SIGNAL = "transition_signal"


@dataclass(frozen=True)
class SamplingPolicy:
    """Configuration of the online counter-sampling technique."""

    mode: SamplingMode = SamplingMode.INTERRUPT
    #: Period of interrupt-based sampling (INTERRUPT mode).
    interrupt_period_us: float = 100.0
    #: Minimum elapsed time before a syscall entry triggers a new sample.
    t_syscall_min_us: float = 80.0
    #: Backup interrupt delay covering syscall-free stretches; substantially
    #: larger than t_syscall_min so no interrupts fire when syscalls are
    #: frequent.
    t_backup_int_us: float = 400.0
    #: Syscall names acting as triggers in TRANSITION_SIGNAL mode.
    trigger_syscalls: Optional[FrozenSet[str]] = None

    def __post_init__(self):
        if self.mode is SamplingMode.INTERRUPT and self.interrupt_period_us <= 0:
            raise ValueError("interrupt_period_us must be positive")
        if self.mode in (SamplingMode.SYSCALL_TRIGGERED, SamplingMode.TRANSITION_SIGNAL):
            if self.t_syscall_min_us <= 0 or self.t_backup_int_us <= 0:
                raise ValueError("syscall-triggered timings must be positive")
            if self.t_backup_int_us < self.t_syscall_min_us:
                raise ValueError("t_backup_int_us must be >= t_syscall_min_us")
        if self.mode is SamplingMode.TRANSITION_SIGNAL and not self.trigger_syscalls:
            raise ValueError("TRANSITION_SIGNAL mode needs trigger_syscalls")

    @classmethod
    def interrupt(cls, period_us: float) -> "SamplingPolicy":
        return cls(mode=SamplingMode.INTERRUPT, interrupt_period_us=period_us)

    @classmethod
    def syscall_triggered(
        cls, t_syscall_min_us: float, t_backup_int_us: float
    ) -> "SamplingPolicy":
        return cls(
            mode=SamplingMode.SYSCALL_TRIGGERED,
            t_syscall_min_us=t_syscall_min_us,
            t_backup_int_us=t_backup_int_us,
        )

    @classmethod
    def transition_signal(
        cls, t_syscall_min_us: float, t_backup_int_us: float, triggers
    ) -> "SamplingPolicy":
        return cls(
            mode=SamplingMode.TRANSITION_SIGNAL,
            t_syscall_min_us=t_syscall_min_us,
            t_backup_int_us=t_backup_int_us,
            trigger_syscalls=frozenset(triggers),
        )

    def wants_syscall_events(self) -> bool:
        return self.mode in (
            SamplingMode.SYSCALL_TRIGGERED,
            SamplingMode.TRANSITION_SIGNAL,
        )

    def accepts_trigger(self, name: str) -> bool:
        """Whether a syscall of this name may trigger a sample."""
        if self.mode is SamplingMode.SYSCALL_TRIGGERED:
            return True
        if self.mode is SamplingMode.TRANSITION_SIGNAL:
            return name in self.trigger_syscalls
        return False

    def trigger_acceptor(self):
        """A ``name -> bool`` callable equivalent to :meth:`accepts_trigger`.

        The policy is frozen, so the mode dispatch can be resolved once
        per run instead of per syscall: the returned callable is a
        constant predicate or a bare frozenset membership test.
        """
        if self.mode is SamplingMode.SYSCALL_TRIGGERED:
            return lambda name: True
        if self.mode is SamplingMode.TRANSITION_SIGNAL:
            return self.trigger_syscalls.__contains__
        return lambda name: False


@dataclass
class SamplerStats:
    """Sample counts and overhead accounting for one simulation run."""

    in_kernel_samples: int = 0
    interrupt_samples: int = 0
    #: Context-switch samples, tallied separately: they are mandatory for
    #: request attribution under every policy, so overhead comparisons
    #: (Figure 5) count only the samples a policy *adds*.
    context_switch_samples: int = 0

    def record(self, context: SamplingContext, mandatory: bool) -> None:
        if mandatory:
            self.context_switch_samples += 1
        elif context is SamplingContext.IN_KERNEL:
            self.in_kernel_samples += 1
        else:
            self.interrupt_samples += 1

    @property
    def total_samples(self) -> int:
        return (
            self.in_kernel_samples
            + self.interrupt_samples
            + self.context_switch_samples
        )

    def as_dict(self) -> dict:
        return {
            "in_kernel_samples": self.in_kernel_samples,
            "interrupt_samples": self.interrupt_samples,
            "context_switch_samples": self.context_switch_samples,
        }

    def register_metrics(self, registry) -> None:
        """Surface the sample tallies as counters in a metrics registry."""
        for name, value in self.as_dict().items():
            registry.counter(name).inc(value)

    def overhead_cycles(self, cost_model: SamplingCostModel) -> float:
        """Policy-added overhead using the measured minimum per-sample cost.

        This mirrors the paper's overhead estimation: count the samples,
        multiply by the measured Mbench-Spin per-sample cost of Table 1.
        """
        in_kernel = cost_model.minimum_cost(SamplingContext.IN_KERNEL).cycles
        interrupt = cost_model.minimum_cost(SamplingContext.INTERRUPT).cycles
        return (
            self.in_kernel_samples * in_kernel
            + self.interrupt_samples * interrupt
        )
