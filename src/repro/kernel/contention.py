"""Contention-easing CPU scheduling (Section 5.2).

Policy: requests in their high-resource-usage periods should avoid
co-execution.  At each scheduling opportunity the scheduler

1. checks whether any *other* core is currently executing a request in a
   high resource usage period — if not, schedule normally;
2. otherwise searches the local runqueue for a request that is *not* in a
   high-usage period and picks the one closest to the head; if none exists
   it gives up and schedules normally.  Requests are never migrated across
   core runqueues.

"High resource usage" is judged online from a per-request vaEWMA prediction
of L2 cache misses per instruction (the metric the paper selects: it
reflects both shared-L2 performance and memory bandwidth pressure, and the
anomaly analysis showed it tracks worst-case CPI).  The threshold is the
80-percentile of the application's miss-per-instruction distribution.
Rescheduling is attempted at most every 5 ms, and the current task is kept
at the head of its runqueue so that a failed attempt resumes it without
paying context-switch cache pollution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.prediction import VaEwma
from repro.core.quantile import OnlineQuantile
from repro.kernel.scheduler import SchedulerPolicy
from repro.kernel.task import Task


@dataclass
class ContentionEasingScheduler(SchedulerPolicy):
    """Variation-driven scheduler avoiding co-execution of high-usage periods."""

    #: Threshold on predicted L2 misses per instruction between low and
    #: high resource usage (the 80-percentile of the workload distribution).
    high_usage_threshold: float = 0.004
    #: Learn the threshold online instead: a P-square estimator tracks the
    #: 80-percentile of observed misses-per-instruction samples, removing
    #: the need for an offline profiling run (an extension beyond the
    #: paper's setup; ``high_usage_threshold`` serves as the warm-up value).
    adaptive_threshold: bool = False
    threshold_percentile: float = 0.8
    #: Warm-up observations before the online estimate takes over.
    adaptive_warmup: int = 200
    #: vaEWMA gain (the paper settles on alpha = 0.6 for its case study).
    alpha: float = 0.6
    #: vaEWMA unit observation length in cycles (1 ms at 3 GHz by default).
    unit_length_cycles: float = 3_000_000.0
    quantum_us: float = 100_000.0
    #: Rescheduling attempted at no more than 5 ms intervals.
    resched_interval_us: Optional[float] = 5_000.0
    stats: dict = field(
        default_factory=lambda: {
            "dispatches": 0,
            "avoidance_picks": 0,
            "gave_up": 0,
            "preemptions": 0,
        }
    )

    _quantile: OnlineQuantile = field(init=False, repr=False, default=None)

    def __post_init__(self):
        self._quantile = OnlineQuantile(q=self.threshold_percentile)

    def _predictor(self, task: Task) -> VaEwma:
        predictor = task.predictor_state.get("mpi")
        if predictor is None:
            predictor = VaEwma(alpha=self.alpha, unit_length=self.unit_length_cycles)
            task.predictor_state["mpi"] = predictor
        return predictor

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            adaptive_threshold=self.adaptive_threshold,
            high_usage_threshold=self.high_usage_threshold,
            threshold_percentile=self.threshold_percentile,
            alpha=self.alpha,
        )
        return description

    def current_threshold(self) -> float:
        """The high/low usage threshold currently in force."""
        if self.adaptive_threshold and self._quantile.count >= self.adaptive_warmup:
            estimate = self._quantile.estimate()
            # An empty estimator (warm-up of zero before any sample) has no
            # estimate yet; fall back to the configured warm-up threshold
            # instead of returning None into a float comparison.
            if estimate is not None:
                return estimate
        return self.high_usage_threshold

    def on_sample(self, task, instructions, l2_misses, cycles):
        if instructions <= 0 or cycles <= 0:
            return
        mpi = l2_misses / instructions
        if self.adaptive_threshold:
            self._quantile.observe(mpi)
        self._predictor(task).observe(mpi, length=cycles)

    def predicted_high(self, task: Task) -> bool:
        """Whether the request is predicted to be in a high-usage period."""
        estimate = self._predictor(task).predict()
        if estimate is None:
            return False  # no observation yet: assume low
        return estimate > self.current_threshold()

    def _others_high(self, core_id: int, running: Dict[int, Optional[Task]]) -> bool:
        return any(
            task is not None and self.predicted_high(task)
            for core, task in running.items()
            if core != core_id
        )

    def pick(self, core_id, runqueue: List[Task], running):
        if not runqueue:
            return None
        self.stats["dispatches"] += 1
        if not self._others_high(core_id, running):
            return 0
        for idx, task in enumerate(runqueue):
            if not self.predicted_high(task):
                if idx > 0:
                    self.stats["avoidance_picks"] += 1
                return idx
        self.stats["gave_up"] += 1
        return 0

    def should_preempt(self, core_id, current, runqueue, running):
        if not runqueue:
            return None
        if not self._others_high(core_id, running):
            return None
        if not self.predicted_high(current):
            return None  # current already eases contention; keep it
        for idx, task in enumerate(runqueue):
            if not self.predicted_high(task):
                self.stats["preemptions"] += 1
                return idx
        self.stats["gave_up"] += 1
        return None
